//! The paper's §6.1 motivating scenario: a bus fleet whose velocity
//! patterns improve location prediction.
//!
//! Generates bus traces, mines velocity patterns by NM, and shows how much
//! the patterns reduce the mis-predictions of three prediction modules
//! (LM, LKF, RMF) on held-out buses — a small-scale Fig. 3.
//!
//! Run with: `cargo run --release --example bus_routes`

use datagen::{observe_via_reporting, BusConfig};
use mobility::{KalmanModel, LinearModel, MotionModel, RecursiveMotionModel, ReportingScheme};
use prediction::{evaluate_paths, PatternLibrary};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::{mine, MiningParams};

fn main() {
    // A reduced fleet: 5 routes x 10 buses x 2 days = 100 traces.
    let fleet = BusConfig {
        days: 2,
        ..BusConfig::default()
    };
    let paths = fleet.paths_interleaved(11);
    let (train, test) = paths.split_at(85);
    println!(
        "{} training traces, {} test traces",
        train.len(),
        test.len()
    );

    // Observe the training traces through the reporting protocol and move
    // to velocity space (two buses on different streets share velocity
    // motifs even though their locations never coincide — Section 3.2).
    let scheme = ReportingScheme::new(0.012, 2.0, 0.0).expect("valid scheme");
    let mut observer = LinearModel::new();
    let locations = observe_via_reporting(train, &mut observer, &scheme, 13);
    let velocities = locations.to_velocity().expect("traces are long enough");

    // Velocity grid: 9x9 cells of 0.01 centered on zero velocity.
    let grid = Grid::new(
        BBox::new(Point2::new(-0.045, -0.045), Point2::new(0.045, 0.045)).unwrap(),
        9,
        9,
    )
    .unwrap();

    let params = MiningParams::new(300, 0.005)
        .expect("valid params")
        .with_min_len(4)
        .expect("valid params")
        .with_max_len(8)
        .expect("valid params");
    let mined = mine(&velocities, &grid, &params).expect("mining succeeds");
    let avg_len: f64 = mined
        .patterns
        .iter()
        .map(|m| m.pattern.len())
        .sum::<usize>() as f64
        / mined.patterns.len().max(1) as f64;
    println!(
        "mined {} velocity patterns (avg length {:.2})",
        mined.patterns.len(),
        avg_len
    );

    let library =
        PatternLibrary::new(mined.patterns, grid, 0.005, 1e-12, 0.9).expect("valid library");

    println!("\nmis-prediction reduction on held-out buses:");
    let models: Vec<Box<dyn MotionModel>> = vec![
        Box::new(LinearModel::new()),
        Box::new(KalmanModel::with_defaults()),
        Box::new(RecursiveMotionModel::with_defaults()),
    ];
    for mut model in models {
        let r = evaluate_paths(test, model.as_mut(), &scheme, &library);
        println!(
            "  {:<4} base {:>4} -> assisted {:>4}  ({:+.1}% reduction)",
            model.name(),
            r.base_mispredictions,
            r.assisted_mispredictions,
            r.reduction() * 100.0
        );
    }
}
