//! Wildlife-tracking scenario (§1, §6.2): mining migration motifs of
//! zebra herds from lossy sensor data, comparing TrajPattern against the
//! projection-based baseline.
//!
//! Run with: `cargo run --release --example zebranet`

use baselines::pb::mine_pb_budgeted;
use datagen::{observe_via_reporting, ZebraConfig};
use mobility::{LinearModel, ReportingScheme};
use std::time::Instant;
use trajgeo::{BBox, Grid};
use trajpattern::{mine, MiningParams};

fn main() {
    // Three herds tracked by low-power collars; 10% of reports are lost in
    // transit (the paper's motivation for c = 2).
    let herds = ZebraConfig {
        num_groups: 3,
        zebras_per_group: 12,
        snapshots: 50,
        leave_prob: 0.003,
        ..ZebraConfig::default()
    };
    let paths = herds.paths(2024);

    let scheme = ReportingScheme::new(0.03, 2.0, 0.10).expect("valid scheme");
    let mut model = LinearModel::new();
    let data = observe_via_reporting(&paths, &mut model, &scheme, 99);
    println!(
        "{} zebras observed through a lossy collar network",
        data.len()
    );

    let grid = Grid::new(BBox::unit(), 10, 10).expect("valid grid");
    let params = MiningParams::new(8, 0.05)
        .expect("valid params")
        .with_max_len(5)
        .expect("valid params")
        .with_gamma(3.0 * scheme.sigma())
        .expect("valid params");

    // TrajPattern.
    let t0 = Instant::now();
    let ours = mine(&data, &grid, &params).expect("mining succeeds");
    let t_ours = t0.elapsed();

    // Projection-based baseline (same exact answer, much more work).
    let t1 = Instant::now();
    let pb = mine_pb_budgeted(&data, &grid, &params, Some(2_000_000)).expect("mining succeeds");
    let t_pb = t1.elapsed();

    println!("\ntop migration motifs (pattern groups):");
    for (i, g) in ours.groups.iter().enumerate() {
        let rep = g.representative();
        let cells: Vec<String> = rep
            .pattern
            .centers(&grid)
            .iter()
            .map(|p| format!("({:.1},{:.1})", p.x, p.y))
            .collect();
        println!(
            "  group {} ({} variants): NM {:.1}  {}",
            i + 1,
            g.len(),
            rep.nm,
            cells.join(" -> ")
        );
    }

    println!(
        "\nTrajPattern: {:?} ({} candidates scored)",
        t_ours, ours.stats.candidates_scored
    );
    println!(
        "PB baseline: {:?} ({} prefixes scored{})",
        t_pb,
        pb.stats.prefixes_scored,
        if pb.stats.truncated {
            ", truncated at budget"
        } else {
            ""
        }
    );
    if !pb.stats.truncated {
        let same = ours
            .patterns
            .iter()
            .zip(&pb.patterns)
            .all(|(a, b)| (a.nm - b.nm).abs() < 1e-9);
        println!("both miners agree on the top-k: {same}");
    }
}
