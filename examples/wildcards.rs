//! §5 extension: wildcard positions and flexible gaps.
//!
//! Posture sequences dwell a variable number of snapshots at each posture,
//! so contiguous patterns struggle to bridge two postures. Gapped patterns
//! `(stand, *{0,3}, walk)` absorb the variable dwell.
//!
//! Run with: `cargo run --release --example wildcards`

use datagen::{observe_directly, PostureConfig};
use trajgeo::Grid;
use trajpattern::gapped::{refine_with_gaps, GappedPattern};
use trajpattern::{mine, MiningParams};

fn main() {
    let cfg = PostureConfig {
        num_subjects: 30,
        snapshots: 60,
        num_postures: 5,
        dwell_mean: 3,
        noise: 0.015,
    };
    let paths = cfg.paths(5);
    let data = observe_directly(&paths, 0.01, 55);
    println!(
        "{} posture sequences cycling through {} archetypes",
        data.len(),
        cfg.num_postures
    );

    let bbox = data.bounding_box().expect("non-empty dataset");
    let grid = Grid::new(bbox, 12, 12).expect("valid grid");
    let params = MiningParams::new(12, 0.05)
        .expect("valid params")
        .with_min_len(2)
        .expect("valid params")
        .with_max_len(4)
        .expect("valid params");

    // Contiguous mining first…
    let base = mine(&data, &grid, &params).expect("mining succeeds");
    println!("\ntop contiguous patterns:");
    for m in base.patterns.iter().take(5) {
        println!("  NM {:>8.2}  {}", m.nm, m.pattern);
    }

    // …then refine with up to 3 wildcards between mined fragments (§5).
    let refined = refine_with_gaps(&base.patterns, &data, &grid, 0.05, 1e-12, 3, 8);
    println!("\ntop gapped patterns after wildcard refinement:");
    for g in &refined {
        println!("  NM {:>8.2}  {}", g.nm, g.pattern);
    }

    // Flexible gaps: let the dwell between two fragments vary 0..=3.
    let a = &base.patterns[0].pattern;
    let b = &base.patterns[1].pattern;
    let flexible = GappedPattern::new(
        a.cells()
            .iter()
            .chain(b.cells())
            .copied()
            .collect::<Vec<_>>(),
        {
            let mut gaps = vec![(0u8, 0u8); a.len() - 1];
            gaps.push((0, 3)); // variable dwell between the fragments
            gaps.extend(vec![(0, 0); b.len() - 1]);
            gaps
        },
    )
    .expect("valid gapped pattern");
    let nm_flex = flexible.nm(&data, &grid, 0.05, 1e-12);
    println!(
        "\nflexible-gap join of the top two fragments: NM {:.2}  {}",
        nm_flex, flexible
    );
}
