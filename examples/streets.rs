//! Location-based commerce scenario (§1 of the paper): pedestrians on a
//! street grid, where commuter-route motifs tell an advertiser where a
//! device is heading.
//!
//! Run with: `cargo run --release --example streets`

use datagen::{observe_directly, StreetConfig};
use trajgeo::Grid;
use trajpattern::{mine, MiningParams};

fn main() {
    let city = StreetConfig {
        blocks: 8,
        num_walkers: 60,
        snapshots: 60,
        commuter_fraction: 0.7,
        num_routes: 3,
        ..StreetConfig::default()
    };
    let paths = city.paths(77);
    let data = observe_directly(&paths, 0.01, 78);
    println!(
        "{} pedestrians in an {}x{} block city ({}% commuters on {} routes)",
        data.len(),
        city.blocks,
        city.blocks,
        (city.commuter_fraction * 100.0) as u32,
        city.num_routes
    );

    // One grid cell per street block.
    let grid =
        Grid::new(trajgeo::BBox::unit(), city.blocks * 2, city.blocks * 2).expect("valid grid");
    let params = MiningParams::new(9, 0.04)
        .expect("valid params")
        .with_min_len(3)
        .expect("valid params")
        .with_max_len(6)
        .expect("valid params")
        .with_gamma(0.08)
        .expect("valid params");
    let out = mine(&data, &grid, &params).expect("mining succeeds");

    println!(
        "\ntop street motifs ({} candidates scored, {} bound-pruned):",
        out.stats.candidates_scored, out.stats.candidates_bound_pruned
    );
    for g in &out.groups {
        let rep = g.representative();
        let hops: Vec<String> = rep
            .pattern
            .centers(&grid)
            .iter()
            .map(|p| format!("({:.2},{:.2})", p.x, p.y))
            .collect();
        println!(
            "  NM {:>8.1}  x{:<2}  {}",
            rep.nm,
            g.len(),
            hops.join(" -> ")
        );
    }
    println!(
        "\nan advertiser watching a device confirm one of these prefixes can \
         pre-position an e-flyer at the pattern's next block"
    );
}
