//! Quickstart: the full TrajPattern pipeline in ~80 lines.
//!
//! 1. Simulate mobile objects (a small zebra herd).
//! 2. Observe them through the dead-reckoning reporting protocol — the
//!    server only ever sees *imprecise* trajectories.
//! 3. Mine the top-k normalized-match patterns and their pattern groups.
//!
//! Run with: `cargo run --release --example quickstart`

use datagen::{observe_via_reporting, ZebraConfig};
use mobility::{LinearModel, ReportingScheme};
use trajgeo::{BBox, Grid};
use trajpattern::{mine, MiningParams};

fn main() {
    // --- 1. Ground truth: two herds of zebras roaming the unit square.
    let herd = ZebraConfig {
        num_groups: 2,
        zebras_per_group: 15,
        snapshots: 60,
        ..ZebraConfig::default()
    };
    let paths = herd.paths(42);
    println!("simulated {} zebras for {} snapshots", paths.len(), 60);

    // --- 2. The server tracks each zebra with a linear dead-reckoning
    // model: a zebra reports only when it drifts more than U = 0.03 from
    // the prediction; in between, the server knows its position only as a
    // normal distribution with sigma = U/c.
    let scheme = ReportingScheme::new(0.03, 2.0, 0.0).expect("valid scheme");
    let mut model = LinearModel::new();
    let data = observe_via_reporting(&paths, &mut model, &scheme, 7);
    let stats = data.stats().expect("non-empty dataset");
    println!(
        "server reconstructed {} imprecise trajectories (avg sigma {:.4})",
        stats.num_trajectories, stats.avg_sigma
    );

    // --- 3. Mine the top-10 patterns over a 12x12 grid, grouping similar
    // patterns within gamma = 3*sigma (the paper's suggestion, Section 5).
    let grid = Grid::new(BBox::unit(), 12, 12).expect("valid grid");
    let params = MiningParams::new(10, 0.04)
        .expect("valid params")
        .with_max_len(5)
        .expect("valid params")
        .with_gamma(3.0 * scheme.sigma())
        .expect("valid params");
    let outcome = mine(&data, &grid, &params).expect("mining succeeds");

    println!(
        "\nmined {} patterns in {} iterations ({} candidates scored, {} bound-pruned):",
        outcome.patterns.len(),
        outcome.stats.iterations,
        outcome.stats.candidates_scored,
        outcome.stats.candidates_bound_pruned,
    );
    for m in &outcome.patterns {
        let cells: Vec<String> = m
            .pattern
            .centers(&grid)
            .iter()
            .map(|p| format!("({:.2},{:.2})", p.x, p.y))
            .collect();
        println!("  NM {:>9.2}  {}", m.nm, cells.join(" -> "));
    }

    println!("\npattern groups ({}):", outcome.groups.len());
    for (i, g) in outcome.groups.iter().enumerate() {
        println!(
            "  group {}: {} pattern(s), representative NM {:.2}",
            i + 1,
            g.len(),
            g.representative().nm
        );
    }
}
