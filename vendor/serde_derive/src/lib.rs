//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the simplified data model in the vendored `serde` stub, with no
//! dependency on `syn`/`quote`: the item is parsed directly from the
//! `proc_macro::TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes (everything this workspace derives):
//! - named-field structs,
//! - single-field tuple structs (serialized transparently, matching
//!   serde's JSON behaviour for newtypes),
//! - externally-tagged enums with unit and named-field variants.
//!
//! All `#[serde(...)]` and other attributes are accepted and ignored —
//! the only ones present in this workspace (`transparent`, `#[default]`)
//! are no-ops under this data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    NewtypeStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

#[derive(Debug)]
struct Variant {
    name: String,
    // None = unit variant; Some(fields) = named-field variant.
    fields: Option<Vec<String>>,
}

/// Derives `serde::Serialize` for the annotated item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let body: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{body}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let body: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{body}]))]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let body: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::get_field(fields, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let fields = v.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for `{name}`\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {body} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    let fields = v.fields.as_ref()?;
                    let body: String = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::__private::get_field(inner_fields, \"{f}\")?,")
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             let inner_fields = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(\
                                 \"expected object body for variant `{vn}`\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {body} }})\n\
                         }}\n"
                    ))
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                             match s {{\n\
                                 {unit_arms}\
                                 other => return ::std::result::Result::Err(\
                                     ::serde::DeError::custom(::std::format!(\
                                     \"unknown variant `{{other}}` of `{name}`\"))),\n\
                             }}\n\
                         }}\n\
                         let fields = v.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for `{name}`\"))?;\n\
                         if fields.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"expected single-key object for `{name}`\"));\n\
                         }}\n\
                         let (tag, inner) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-level parsing of the derive input
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (item `{name}`)");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n != 1 {
                    panic!(
                        "serde_derive stub: tuple struct `{name}` has {n} fields; \
                         only single-field newtypes are supported"
                    );
                }
                Item::NewtypeStruct { name }
            }
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Field names, in declaration order, from a named-field body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
    }
    fields
}

/// Skips one type, stopping after the top-level `,` (or at end of input).
/// Tracks `<`/`>` nesting so commas inside generics don't split fields.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount; none of the workspace newtypes
    // have one, and a miscount still fails loudly at the call site.
    count
}

/// Variants (name + optional named fields) from an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let mut fields = None;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_named_fields(g.stream()));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive stub: tuple enum variant `{name}` is not supported; \
                     use named fields"
                );
            }
            _ => {}
        }
        variants.push(Variant { name, fields });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}
