//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable in the build environment, so the workspace
//! vendors a minimal serialization framework with the same *spelling* as
//! serde (`serde::Serialize`, `serde::Deserialize`, `#[derive(...)]`) but
//! a radically simplified data model: every value serializes to a JSON-ish
//! [`Value`] tree and deserializes back from one. The `serde_json` stub
//! in `vendor/serde_json` supplies the text format on top of this tree.
//!
//! Supported surface (exactly what this workspace uses):
//! - `#[derive(Serialize, Deserialize)]` on named-field structs,
//!   single-field tuple structs (serialized transparently, matching
//!   serde's JSON behaviour for newtypes), and externally-tagged enums
//!   with unit or named-field variants.
//! - Primitive impls for integers, floats, `bool`, `String`, `Option`,
//!   `Vec`, slices and references.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An ordered JSON-like value tree — the entire data model of this stub.
///
/// Object fields keep insertion order so serialized output is stable and
/// matches declaration order of derived structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool` if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error with the given message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the data-model tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Fallback when a struct field is absent: `Option` fields become
    /// `None` (matching serde's missing-field behaviour for `Option`),
    /// everything else errors.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom("expected boolean"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::custom("expected number"))? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Option<T>, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::custom("expected array"))?;
        if arr.len() != 2 {
            return Err(DeError::custom("expected 2-element array"));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

/// Helpers the derive macro expands to; not part of the public API.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Looks up `name` among object fields and deserializes it, routing
    /// absent fields through [`Deserialize::from_missing`].
    pub fn get_field<T: Deserialize>(
        fields: &[(String, Value)],
        name: &str,
    ) -> Result<T, DeError> {
        match fields.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
            None => T::from_missing(name),
        }
    }
}
