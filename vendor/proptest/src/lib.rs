//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable in the build environment, so the workspace
//! vendors a minimal property-testing harness with proptest's spelling:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! numeric range strategies, tuple strategies, `prop::collection::vec`,
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the assertion message directly) and a fixed deterministic seed per
//! test derived from the test's module path, so failures reproduce
//! exactly across runs.

#![forbid(unsafe_code)]

/// Runner configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG handed to strategies (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one test case, derived from the test path and index so
    /// every run of the suite sees the same sequence.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Strategies: how random values of each type are generated.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from a random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 strategy range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A length specification: a fixed count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `elem` values with lengths drawn
    /// from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span <= 1 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestRng};

    /// Mirror of upstream's `prelude::prop` module shortcuts.
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::collection::{vec, SizeRange, VecStrategy};
        }
    }
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, n in 3u32..9, i in 1usize..4) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!((1..4).contains(&i));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u8..3, 0.0f64..1.0), 2..6).prop_map(|pairs| {
                pairs.into_iter().map(|(a, _)| a).collect::<Vec<u8>>()
            }),
            w in prop::collection::vec(0u32..5, 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
            prop_assert!(v.iter().all(|&b| b < 3));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
