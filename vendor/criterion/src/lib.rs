//! Offline stand-in for `criterion`.
//!
//! Supports the subset of the criterion 0.5 API this workspace's bench
//! harnesses use: `Criterion::default().sample_size(n)`, `bench_function`,
//! `benchmark_group` with `bench_with_input`/`finish`, `BenchmarkId`,
//! `Bencher::iter`/`iter_batched`, `BatchSize`, and both forms of
//! `criterion_group!` plus `criterion_main!`.
//!
//! Measurement is deliberately simple — median of `sample_size` timed
//! iterations after one warm-up — printed as `name ... median time`.
//! There are no HTML reports, no statistics, and no baseline storage.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Controls how a batched benchmark amortizes setup cost. The stub times
/// one routine invocation per sample regardless of variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    fn report(mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        println!("{name:<40} median {}", fmt_secs(median));
    }
}

fn fmt_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Compatibility no-op (upstream prints summary statistics here).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export used by some benches; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, with or without a custom
/// `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
