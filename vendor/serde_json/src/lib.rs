//! Offline stand-in for `serde_json`.
//!
//! Provides JSON text on top of the vendored `serde` stub's [`Value`]
//! tree: `to_value` / `to_string` / `to_string_pretty` / `from_str`, the
//! [`json!`] object macro, and an [`Error`] type.
//!
//! Floats are printed with Rust's shortest-round-trip `Display` and parsed
//! with `str::parse::<f64>` (correctly rounded), so `f64` round-trips are
//! exact — the property the workspace opts into upstream via the
//! `float_roundtrip` feature.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Number, Value};

/// A JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v).map_err(Error::from)
}

/// Builds a [`Value`] from an object literal of serializable expressions.
#[macro_export]
macro_rules! json {
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((
                ::std::string::String::from($key),
                $crate::to_value(&$val).expect("json! value serializes"),
            )),*
        ])
    };
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![
            $($crate::to_value(&$elem).expect("json! value serializes")),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                // Shortest round-trip formatting; parse::<f64> restores bits.
                let _ = write!(out, "{v}");
            } else {
                // JSON has no non-finite literals; upstream errors here, but
                // a lossy `null` keeps best-effort report writers working.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this stub's
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v) {
                        return Ok(Value::Number(Number::NegInt(-neg)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        for v in [0.1, 1.0 / 3.0, 6.02e23, -0.0625, 1e-300, 123456789.123456789] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "round-trip of {v} via {s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"backslash\\tab\tunicode\u{1F600}control\u{01}end";
        let j = to_string(&String::from(s)).unwrap();
        let back: String = from_str(&j).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn object_order_and_lookup() {
        let v = json!({"b": 1u32, "a": 2u32});
        assert_eq!(to_string(&v).unwrap(), "{\"b\":1,\"a\":2}");
        assert_eq!(v["a"].as_u64(), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = json!({"xs": vec![1u32, 2u32]});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"xs\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn parses_nested_documents() {
        let v: Value = from_str("{\"a\": [1, -2, 3.5, null, true], \"b\": {\"c\": \"d\"}}")
            .unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 5);
        assert_eq!(v["b"]["c"].as_str(), Some("d"));
    }
}
