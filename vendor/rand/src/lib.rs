//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the exact API
//! surface it uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension trait with `gen::<f64>()` and `gen_range` over
//! half-open and inclusive integer/float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace treats the RNG as an opaque deterministic stream, so only
//! determinism-per-seed matters, not the exact values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like upstream rand does for small seeds.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the unit interval / full range.
pub trait StandardSample: Sized {
    /// Draws one value from the "standard" distribution of the type.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard(rng);
        self.start + u * (self.end - self.start)
    }
}

// Uniform integer sampling via multiply-shift on the 64-bit stream; the
// modulo bias over spans this workspace uses (tiny spans) is negligible,
// but widening rejection keeps it exact anyway.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the top zone to remove modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the type's standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over the full range).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws one value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..50 {
            let v = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
