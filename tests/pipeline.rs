//! End-to-end integration: generators → reporting protocol → miner →
//! prediction, across crate boundaries.

use datagen::{observe_via_reporting, BusConfig, ZebraConfig};
use mobility::{KalmanModel, LinearModel, MotionModel, RecursiveMotionModel, ReportingScheme};
use prediction::{evaluate_paths, PatternLibrary};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::{mine, MiningParams};

#[test]
fn zebranet_to_patterns_pipeline() {
    let herd = ZebraConfig {
        num_groups: 2,
        zebras_per_group: 8,
        snapshots: 40,
        ..ZebraConfig::default()
    };
    let paths = herd.paths(1);
    let scheme = ReportingScheme::new(0.03, 2.0, 0.05).unwrap();
    let mut model = LinearModel::new();
    let data = observe_via_reporting(&paths, &mut model, &scheme, 2);
    assert_eq!(data.len(), 16);

    let grid = Grid::new(BBox::unit(), 10, 10).unwrap();
    let params = MiningParams::new(6, 0.05)
        .unwrap()
        .with_max_len(4)
        .unwrap()
        .with_gamma(0.12)
        .unwrap();
    let out = mine(&data, &grid, &params).unwrap();
    assert_eq!(out.patterns.len(), 6);
    // Results sorted, finite, non-positive (log-probability means).
    for w in out.patterns.windows(2) {
        assert!(w[0].nm >= w[1].nm);
    }
    for m in &out.patterns {
        assert!(m.nm.is_finite() && m.nm <= 0.0);
    }
    // Groups partition the answer.
    let grouped: usize = out.groups.iter().map(|g| g.len()).sum();
    assert_eq!(grouped, out.patterns.len());
}

#[test]
fn bus_velocity_patterns_assist_all_three_models() {
    let fleet = BusConfig {
        days: 1,
        buses_per_route: 6,
        ..BusConfig::default()
    };
    let paths = fleet.paths_interleaved(11);
    let (train, test) = paths.split_at(25);
    let scheme = ReportingScheme::new(0.012, 2.0, 0.0).unwrap();
    let mut observer = LinearModel::new();
    let locations = observe_via_reporting(train, &mut observer, &scheme, 3);
    let velocities = locations.to_velocity().unwrap();

    let grid = Grid::new(
        BBox::new(Point2::new(-0.045, -0.045), Point2::new(0.045, 0.045)).unwrap(),
        9,
        9,
    )
    .unwrap();
    let params = MiningParams::new(60, 0.005)
        .unwrap()
        .with_min_len(4)
        .unwrap()
        .with_max_len(6)
        .unwrap();
    let mined = mine(&velocities, &grid, &params).unwrap();
    assert!(!mined.patterns.is_empty());
    let lib = PatternLibrary::new(mined.patterns, grid, 0.005, 1e-12, 0.9).unwrap();

    let models: Vec<Box<dyn MotionModel>> = vec![
        Box::new(LinearModel::new()),
        Box::new(KalmanModel::with_defaults()),
        Box::new(RecursiveMotionModel::with_defaults()),
    ];
    for mut model in models {
        let r = evaluate_paths(test, model.as_mut(), &scheme, &lib);
        assert!(
            r.base_mispredictions > 0,
            "{} never mispredicts?",
            model.name()
        );
        // Patterns must not make prediction catastrophically worse.
        assert!(
            (r.assisted_mispredictions as f64) <= r.base_mispredictions as f64 * 1.3 + 5.0,
            "{}: assisted {} vs base {}",
            model.name(),
            r.assisted_mispredictions,
            r.base_mispredictions
        );
    }
}

#[test]
fn message_loss_degrades_gracefully() {
    // The same herd observed with and without message loss: loss increases
    // the average uncertainty of the reconstructed data but mining still
    // succeeds and returns the full k.
    let herd = ZebraConfig {
        num_groups: 1,
        zebras_per_group: 10,
        snapshots: 30,
        ..ZebraConfig::default()
    };
    let paths = herd.paths(9);
    let grid = Grid::new(BBox::unit(), 8, 8).unwrap();
    let params = MiningParams::new(5, 0.06).unwrap().with_max_len(3).unwrap();

    let mut sigmas = Vec::new();
    for loss in [0.0, 0.3] {
        let scheme = ReportingScheme::new(0.03, 2.0, loss).unwrap();
        let mut model = LinearModel::new();
        let data = observe_via_reporting(&paths, &mut model, &scheme, 5);
        sigmas.push(data.stats().unwrap().avg_sigma);
        let out = mine(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 5, "loss {loss}");
    }
    assert!(
        sigmas[1] >= sigmas[0],
        "loss should not reduce uncertainty: {sigmas:?}"
    );
}

#[test]
fn velocity_and_location_mining_find_different_structure() {
    // Two buses on parallel streets never share locations but share
    // velocities — the paper's §3.2 motivation for velocity trajectories.
    let make_line = |y: f64| -> Vec<Point2> {
        (0..30)
            .map(|i| Point2::new(0.05 + i as f64 * 0.03, y))
            .collect()
    };
    let paths = vec![make_line(0.2), make_line(0.8)];
    let scheme = ReportingScheme::new(0.02, 2.0, 0.0).unwrap();
    let mut model = LinearModel::new();
    let locations = observe_via_reporting(&paths, &mut model, &scheme, 8);

    // Location mining: top pattern matches at most one of the two lines.
    let grid = Grid::new(BBox::unit(), 10, 10).unwrap();
    let params = MiningParams::new(1, 0.05)
        .unwrap()
        .with_min_len(2)
        .unwrap()
        .with_max_len(2)
        .unwrap();
    let loc_out = mine(&locations, &grid, &params).unwrap();

    // Velocity mining: both objects share velocity (0.03, 0) exactly, so
    // the top velocity pattern scores (near-)perfectly on both.
    let velocities = locations.to_velocity().unwrap();
    let vgrid = Grid::new(
        BBox::new(Point2::new(-0.05, -0.05), Point2::new(0.05, 0.05)).unwrap(),
        5,
        5,
    )
    .unwrap();
    let vel_out = mine(&velocities, &vgrid, &params).unwrap();

    // Per-trajectory NM: the location pattern can fit one line only, so
    // its total carries one floored trajectory; the velocity pattern fits
    // both.
    let floor = (1e-12f64).ln();
    assert!(
        loc_out.patterns[0].nm < floor / 2.0,
        "location pattern should miss one line: {}",
        loc_out.patterns[0].nm
    );
    assert!(
        vel_out.patterns[0].nm > floor / 2.0,
        "velocity pattern should fit both lines: {}",
        vel_out.patterns[0].nm
    );
}
