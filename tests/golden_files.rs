//! Golden-file tests pinning the on-disk formats byte-for-byte.
//!
//! The fixtures under `tests/golden/` were written by the pre-refactor
//! codecs (before the shared `trajio` primitives existed). Every test here
//! asserts two directions:
//!
//! 1. **Writer stability** — today's writers reproduce the committed
//!    fixture byte-for-byte from the same deterministic inputs.
//! 2. **Reader compatibility** — today's readers load the committed
//!    (pre-refactor) files and reconstruct bit-identical state.
//!
//! Regenerate deliberately with `TRAJ_GOLDEN_REGEN=1 cargo test --test
//! golden_files` — a byte diff without a format-version bump is a bug, not
//! a reason to regenerate.

use std::path::{Path, PathBuf};
use trajdata::eventlog::{parse_event_log, write_event_log};
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::{Miner, MiningParams};
use trajserve::Snapshot;
use trajstream::StreamMiner;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `produced` against the named fixture, or rewrites the fixture
/// when `TRAJ_GOLDEN_REGEN=1` is set.
fn check_golden(name: &str, produced: &str) {
    let path = golden_dir().join(name);
    if std::env::var("TRAJ_GOLDEN_REGEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, produced).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", path.display()));
    if produced != expected {
        let diff_at = produced
            .bytes()
            .zip(expected.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(produced.len().min(expected.len()));
        let ctx = |s: &str| {
            let start = diff_at.saturating_sub(60);
            s.get(start..(diff_at + 60).min(s.len())).map(String::from)
        };
        panic!(
            "writer output diverged from fixture {name} at byte {diff_at}\n\
             produced …{:?}…\nexpected …{:?}…",
            ctx(produced),
            ctx(&expected)
        );
    }
}

fn read_golden(name: &str) -> String {
    let path = golden_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); see module docs", path.display()))
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("trajgolden-{}-{name}", std::process::id()))
}

/// The deterministic batch-mining configuration every fixture derives
/// from: no RNG, fixed analytic trajectories, fixed parameters.
fn batch_fixture() -> (Dataset, Grid, MiningParams) {
    let data: Dataset = (0..6)
        .map(|j| {
            Trajectory::new(
                (0..4)
                    .map(|i| {
                        SnapshotPoint::new(
                            Point2::new(
                                0.125 + i as f64 * 0.25,
                                0.375 + (j % 2) as f64 * 0.25 + i as f64 * 0.003,
                            ),
                            0.02 + 0.005 * j as f64,
                        )
                        .unwrap()
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect();
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(4, 0.1)
        .unwrap()
        .with_max_len(3)
        .unwrap()
        .with_gamma(0.25)
        .unwrap();
    (data, grid, params)
}

/// The deterministic stream the v2 fixture derives from: sliding window of
/// 4 over 8 arrivals with slowly drifting rows (forces both certified
/// passes and repairs).
fn stream_fixture() -> StreamMiner {
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(3, 0.1)
        .unwrap()
        .with_max_len(3)
        .unwrap()
        .with_gamma(0.25)
        .unwrap();
    let mut m = StreamMiner::new(grid, params).unwrap();
    for j in 0..8 {
        m.slide(
            Trajectory::new(
                (0..4)
                    .map(|i| {
                        SnapshotPoint::new(
                            Point2::new(0.125 + i as f64 * 0.25, 0.3 + j as f64 * 0.04),
                            0.03,
                        )
                        .unwrap()
                    })
                    .collect(),
            )
            .unwrap(),
            4,
        );
    }
    m
}

/// Dataset with deliberately awkward floats for the `.events` fixture
/// (shortest-round-trip formatting must stay stable).
fn events_fixture() -> Dataset {
    vec![
        Trajectory::new(vec![
            SnapshotPoint::new(Point2::new(1.0 / 3.0, 2.0f64.sqrt() / 2.0), 0.1 + 0.2).unwrap(),
            SnapshotPoint::new(Point2::new(f64::MIN_POSITIVE, 0.625), 1e-300).unwrap(),
        ])
        .unwrap(),
        Trajectory::new(vec![
            SnapshotPoint::new(Point2::new(0.1, 0.2), 0.0).unwrap(),
            SnapshotPoint::new(Point2::new(0.30000000000000004, 1e300), 3.0).unwrap(),
        ])
        .unwrap(),
    ]
    .into_iter()
    .collect()
}

#[test]
fn checkpoint_v1_writer_matches_golden() {
    let (data, grid, params) = batch_fixture();
    let path = tmp_path("v1.ckpt");
    Miner::new(&data, &grid)
        .params(params)
        .checkpoint(&path)
        .mine()
        .unwrap();
    let produced = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    check_golden("checkpoint_v1.txt", &produced);
}

#[test]
fn checkpoint_v1_reader_loads_prerefactor_file() {
    let (data, grid, params) = batch_fixture();
    let path = tmp_path("v1-resume.ckpt");
    std::fs::write(&path, read_golden("checkpoint_v1.txt")).unwrap();
    let resumed = Miner::new(&data, &grid)
        .params(params.clone())
        .resume(&path)
        .mine()
        .unwrap();
    std::fs::remove_file(&path).ok();
    let fresh = Miner::new(&data, &grid).params(params).mine().unwrap();
    assert_eq!(resumed.patterns.len(), fresh.patterns.len());
    for (a, b) in resumed.patterns.iter().zip(&fresh.patterns) {
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(a.nm.to_bits(), b.nm.to_bits());
    }
    assert_eq!(resumed.groups, fresh.groups);
}

#[test]
fn checkpoint_v2_writer_matches_golden() {
    let m = stream_fixture();
    let path = tmp_path("v2.ckpt");
    m.checkpoint(&path).unwrap();
    let produced = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    check_golden("checkpoint_v2.txt", &produced);
}

#[test]
fn checkpoint_v2_reader_loads_prerefactor_file() {
    let m = stream_fixture();
    let path = tmp_path("v2-resume.ckpt");
    std::fs::write(&path, read_golden("checkpoint_v2.txt")).unwrap();
    let restored = StreamMiner::resume(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.next_seq(), m.next_seq());
    assert_eq!(restored.stats(), m.stats());
    assert_eq!(restored.topk().len(), m.topk().len());
    for (a, b) in restored.topk().iter().zip(m.topk()) {
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(a.nm.to_bits(), b.nm.to_bits());
    }
    assert_eq!(restored.groups(), m.groups());
    // And a restored miner re-checkpoints byte-identically.
    let path2 = tmp_path("v2-rewrite.ckpt");
    restored.checkpoint(&path2).unwrap();
    let rewritten = std::fs::read_to_string(&path2).unwrap();
    std::fs::remove_file(&path2).ok();
    assert_eq!(rewritten, read_golden("checkpoint_v2.txt"));
}

#[test]
fn snapshot_v1_writer_matches_golden() {
    let (data, grid, params) = batch_fixture();
    let out = Miner::new(&data, &grid)
        .params(params.clone())
        .mine()
        .unwrap();
    let produced = Snapshot::from_outcome(&out, &grid, &params).to_json_pretty();
    check_golden("snapshot_v1.json", &produced);
}

#[test]
fn snapshot_v1_reader_loads_prerefactor_file() {
    let (data, grid, params) = batch_fixture();
    let out = Miner::new(&data, &grid)
        .params(params.clone())
        .mine()
        .unwrap();
    let snap = Snapshot::parse(&read_golden("snapshot_v1.json")).unwrap();
    assert_eq!(snap.patterns.len(), out.patterns.len());
    for (a, b) in snap.patterns.iter().zip(&out.patterns) {
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(a.nm.to_bits(), b.nm.to_bits());
    }
    assert_eq!(snap.params.delta.to_bits(), params.delta.to_bits());
    assert_eq!(snap.stats, out.stats);
    assert_eq!(snap.scorer, out.scorer);
    // The sniffing loader also accepts a v2 checkpoint fixture.
    let via_sniff = Snapshot::parse_any(&read_golden("checkpoint_v2.txt")).unwrap();
    assert!(via_sniff.stream.is_some());
}

/// Builds the deterministic trajdb store the segment/manifest fixtures
/// derive from: the awkward-float events dataset appended as three
/// batches, then sealed — one sealed segment, one (empty) active.
fn trajdb_fixture(dir: &std::path::Path) -> trajdb::Store {
    let _ = std::fs::remove_dir_all(dir);
    let data = events_fixture();
    let trajs = data.trajectories();
    let mut store = trajdb::Store::open(
        dir,
        trajdb::StoreOptions {
            fsync: trajdb::FsyncPolicy::Never,
            segment_max_bytes: u64::MAX,
        },
    )
    .unwrap();
    store.append_batch(0, trajs).unwrap();
    store.append_batch(1, &trajs[..1]).unwrap();
    store.append_batch(3, &trajs[1..]).unwrap();
    store.seal_active().unwrap();
    store
}

#[test]
fn trajdb_segment_writer_matches_golden() {
    let dir = tmp_path("trajdb-golden");
    let store = trajdb_fixture(&dir);
    let produced = std::fs::read_to_string(dir.join("seg-000001.log")).unwrap();
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).unwrap();
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    check_golden("trajdb_segment.log", &produced);
    check_golden("trajdb_manifest.txt", &manifest);
}

#[test]
fn trajdb_reader_loads_prerefactor_store() {
    use trajdb::store::ReadFilter;
    let dir = tmp_path("trajdb-golden-read");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("MANIFEST"), read_golden("trajdb_manifest.txt")).unwrap();
    std::fs::write(
        dir.join("seg-000001.log"),
        read_golden("trajdb_segment.log"),
    )
    .unwrap();
    let store = trajdb::Store::open(&dir, trajdb::StoreOptions::default()).unwrap();
    let records = store.read(&ReadFilter::all()).unwrap();
    // Batches were (both, first, second): ids 0..4 map back onto the
    // fixture dataset in that order, bit-exactly.
    let data = events_fixture();
    let expected = [
        data.trajectories()[0].clone(),
        data.trajectories()[1].clone(),
        data.trajectories()[0].clone(),
        data.trajectories()[1].clone(),
    ];
    assert_eq!(records.len(), expected.len());
    assert_eq!(
        records.iter().map(|r| r.t).collect::<Vec<_>>(),
        vec![0, 0, 1, 3]
    );
    for (r, want) in records.iter().zip(&expected) {
        for (a, b) in r.trajectory.points().iter().zip(want.points()) {
            assert_eq!(a.mean.x.to_bits(), b.mean.x.to_bits());
            assert_eq!(a.mean.y.to_bits(), b.mean.y.to_bits());
            assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The deterministic dead-reckoning fleet the `trajfeed-dr v1` fixtures
/// derive from (seeded `datagen dr-feed`, planar and geodetic variants).
fn dr_fixture_config() -> datagen::DrFeedConfig {
    datagen::DrFeedConfig {
        routes: 2,
        vehicles_per_route: 2,
        reports_per_vehicle: 6,
        ..datagen::DrFeedConfig::default()
    }
}

#[test]
fn dr_log_writer_matches_golden() {
    check_golden("fleet.drlog", &datagen::dr_log(&dr_fixture_config(), 17));
    let geo = datagen::DrFeedConfig {
        extent: 2000.0,
        geo_origin: Some((47.6062, -122.3321)),
        ..dr_fixture_config()
    };
    check_golden("fleet_geo.drlog", &datagen::dr_log(&geo, 17));
}

#[test]
fn dr_log_reader_reconstructs_prerefactor_file_bit_exactly() {
    use std::sync::atomic::AtomicBool;
    use trajfeed::{FeedOptions, SourceSpec};

    // The committed fixture decodes to the same §3.1/§3.2 reconstruction
    // as a freshly generated log, bit for bit.
    let decode = |name: &str, text: &str| {
        let path = tmp_path(name);
        std::fs::write(&path, text).unwrap();
        let mut feed =
            trajfeed::open(&SourceSpec::Dr(path.clone()), &FeedOptions::default()).unwrap();
        let out = trajfeed::drain(feed.as_mut(), &AtomicBool::new(false)).unwrap();
        std::fs::remove_file(&path).ok();
        out
    };
    for (fixture, cfg) in [
        ("fleet.drlog", dr_fixture_config()),
        (
            "fleet_geo.drlog",
            datagen::DrFeedConfig {
                extent: 2000.0,
                geo_origin: Some((47.6062, -122.3321)),
                ..dr_fixture_config()
            },
        ),
    ] {
        let committed = decode(&format!("read-{fixture}"), &read_golden(fixture));
        let fresh = decode(&format!("fresh-{fixture}"), &datagen::dr_log(&cfg, 17));
        assert_eq!(committed.len(), fresh.len(), "{fixture}");
        assert_eq!(committed.len(), 4, "{fixture}: 2 routes x 2 vehicles");
        for (a, b) in committed.iter().zip(&fresh) {
            for (pa, pb) in a.points().iter().zip(b.points()) {
                assert_eq!(pa.mean.x.to_bits(), pb.mean.x.to_bits(), "{fixture}");
                assert_eq!(pa.mean.y.to_bits(), pb.mean.y.to_bits(), "{fixture}");
                assert_eq!(pa.sigma.to_bits(), pb.sigma.to_bits(), "{fixture}");
            }
        }
    }
}

#[test]
fn events_writer_matches_golden() {
    let produced = write_event_log(&events_fixture());
    check_golden("stream.events", &produced);
}

#[test]
fn events_reader_loads_prerefactor_file() {
    let data = events_fixture();
    let events = parse_event_log(&read_golden("stream.events")).unwrap();
    assert_eq!(events.len(), data.len());
    for (orig, parsed) in data.iter().zip(&events) {
        for (a, b) in orig.points().iter().zip(parsed.points()) {
            assert_eq!(a.mean.x.to_bits(), b.mean.x.to_bits());
            assert_eq!(a.mean.y.to_bits(), b.mean.y.to_bits());
            assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
        }
    }
}
