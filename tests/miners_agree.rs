//! Cross-miner consistency on realistic workloads: TrajPattern, the PB
//! baseline and brute force must rank the same top-k NM values.

use datagen::{observe_directly, UniformConfig, ZebraConfig};
use trajgeo::{BBox, Grid};
use trajpattern::bruteforce::brute_force_top_k;
use trajpattern::{mine, MiningParams};

fn assert_same_nms(a: &[f64], b: &[f64], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: cardinality");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < 1e-9, "{label}: rank {i}: {x} vs {y}");
    }
}

#[test]
fn trajpattern_equals_pb_on_multi_herd_zebranet() {
    let cfg = ZebraConfig {
        num_groups: 2,
        zebras_per_group: 6,
        snapshots: 20,
        ..ZebraConfig::default()
    };
    let data = observe_directly(&cfg.paths(3), 0.02, 4);
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let params = MiningParams::new(8, 0.06).unwrap().with_max_len(3).unwrap();

    let ours: Vec<f64> = mine(&data, &grid, &params)
        .unwrap()
        .patterns
        .iter()
        .map(|m| m.nm)
        .collect();
    let pb: Vec<f64> = baselines::mine_pb(&data, &grid, &params)
        .unwrap()
        .patterns
        .iter()
        .map(|m| m.nm)
        .collect();
    assert_same_nms(&ours, &pb, "zebranet");
}

#[test]
fn trajpattern_equals_brute_force_on_uniform_objects() {
    let cfg = UniformConfig {
        num_objects: 8,
        snapshots: 15,
        ..UniformConfig::default()
    };
    let data = observe_directly(&cfg.paths(7), 0.02, 8);
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(10, 0.1).unwrap().with_max_len(3).unwrap();

    let ours: Vec<f64> = mine(&data, &grid, &params)
        .unwrap()
        .patterns
        .iter()
        .map(|m| m.nm)
        .collect();
    let brute: Vec<f64> = brute_force_top_k(&data, &grid, &params)
        .expect("small enough")
        .iter()
        .map(|m| m.nm)
        .collect();
    assert_same_nms(&ours, &brute, "uniform");
}

#[test]
fn all_three_agree_with_min_len_constraint() {
    let cfg = ZebraConfig {
        num_groups: 1,
        zebras_per_group: 8,
        snapshots: 18,
        ..ZebraConfig::default()
    };
    let data = observe_directly(&cfg.paths(12), 0.02, 13);
    let grid = Grid::new(BBox::unit(), 5, 5).unwrap();
    let params = MiningParams::new(6, 0.08)
        .unwrap()
        .with_min_len(2)
        .unwrap()
        .with_max_len(3)
        .unwrap();

    let ours: Vec<f64> = mine(&data, &grid, &params)
        .unwrap()
        .patterns
        .iter()
        .map(|m| m.nm)
        .collect();
    let pb: Vec<f64> = baselines::mine_pb(&data, &grid, &params)
        .unwrap()
        .patterns
        .iter()
        .map(|m| m.nm)
        .collect();
    let brute: Vec<f64> = brute_force_top_k(&data, &grid, &params)
        .expect("small enough")
        .iter()
        .map(|m| m.nm)
        .collect();
    assert_same_nms(&ours, &brute, "vs brute");
    assert_same_nms(&pb, &brute, "pb vs brute");
}

#[test]
fn match_miner_top_patterns_have_nonincreasing_match_under_extension() {
    // Apriori sanity on a real workload: every mined pattern's match is
    // bounded by the match of its length-1-shorter sub-patterns.
    let cfg = ZebraConfig {
        num_groups: 2,
        zebras_per_group: 5,
        snapshots: 20,
        ..ZebraConfig::default()
    };
    let data = observe_directly(&cfg.paths(21), 0.02, 22);
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let params = MiningParams::new(12, 0.06)
        .unwrap()
        .with_max_len(3)
        .unwrap();
    let out = baselines::mine_match(&data, &grid, &params).unwrap();
    assert!(!out.patterns.is_empty());

    let scorer = trajpattern::Scorer::new(&data, &grid, 0.06, 1e-12);
    for m in &out.patterns {
        for sub in [m.pattern.drop_first(), m.pattern.drop_last()]
            .into_iter()
            .flatten()
        {
            let sub_match = scorer.match_score(&sub);
            assert!(
                sub_match >= m.match_value - 1e-9,
                "Apriori violated: {} ({}) ⊃ {} ({})",
                m.pattern,
                m.match_value,
                sub,
                sub_match
            );
        }
    }
}
