//! Serialization stability of the public data types: JSON round-trips
//! must be lossless, and the shapes must stay stable enough for external
//! tooling to consume (spot-checked field names).

use datagen::{observe_directly, UniformConfig};
use trajdata::Dataset;
use trajgeo::{BBox, CellId, Grid};
use trajpattern::{mine, MiningParams, Pattern};

fn small_dataset() -> Dataset {
    let cfg = UniformConfig {
        num_objects: 4,
        snapshots: 10,
        ..UniformConfig::default()
    };
    observe_directly(&cfg.paths(5), 0.02, 6)
}

#[test]
fn dataset_json_round_trip_is_lossless() {
    let d = small_dataset();
    let j = d.to_json();
    let back = Dataset::from_json(&j).unwrap();
    assert_eq!(d, back);
}

#[test]
fn dataset_csv_round_trip_is_lossless() {
    let d = small_dataset();
    let back = trajdata::csv::from_csv(&trajdata::csv::to_csv(&d)).unwrap();
    assert_eq!(d, back);
}

#[test]
fn mined_patterns_serialize_with_stable_shape() {
    let d = small_dataset();
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(3, 0.1)
        .unwrap()
        .with_max_len(2)
        .unwrap()
        .with_gamma(0.3)
        .unwrap();
    let out = mine(&d, &grid, &params).unwrap();

    let patterns_json = serde_json::to_value(&out.patterns).unwrap();
    let arr = patterns_json.as_array().unwrap();
    assert_eq!(arr.len(), 3);
    assert!(arr[0].get("pattern").is_some());
    assert!(arr[0].get("nm").is_some());

    let stats_json = serde_json::to_value(&out.stats).unwrap();
    for field in [
        "iterations",
        "candidates_generated",
        "candidates_scored",
        "candidates_bound_pruned",
        "final_queue_size",
        "nm_evaluations",
    ] {
        assert!(
            stats_json.get(field).is_some(),
            "missing stats field {field}"
        );
    }

    let groups_json = serde_json::to_value(&out.groups).unwrap();
    assert!(groups_json.as_array().unwrap().len() <= 3);
}

#[test]
fn pattern_serde_round_trip() {
    let p = Pattern::new(vec![CellId(3), CellId(1), CellId(4)]).unwrap();
    let j = serde_json::to_string(&p).unwrap();
    let back: Pattern = serde_json::from_str(&j).unwrap();
    assert_eq!(p, back);
}

#[test]
fn mining_params_serde_round_trip() {
    let params = MiningParams::new(7, 0.02)
        .unwrap()
        .with_min_len(3)
        .unwrap()
        .with_gamma(0.1)
        .unwrap();
    let j = serde_json::to_string(&params).unwrap();
    let back: MiningParams = serde_json::from_str(&j).unwrap();
    assert_eq!(params, back);
    assert!(back.validate().is_ok());
}

#[test]
fn reporting_scheme_serde_round_trip() {
    let scheme = mobility::ReportingScheme::new(0.05, 2.0, 0.1)
        .unwrap()
        .with_uncertainty_model(mobility::UncertaintyModel::GrowingWithTime { rate: 0.2 })
        .unwrap();
    let j = serde_json::to_string(&scheme).unwrap();
    let back: mobility::ReportingScheme = serde_json::from_str(&j).unwrap();
    assert_eq!(scheme, back);
}
