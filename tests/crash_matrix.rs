//! The power-cut crash matrix: for **every byte-level prefix** of the
//! store's write stream (and for mutated tails — garbage bytes, a
//! replayed batch), recovery must yield exactly the committed-batch
//! prefix, and re-mining the recovered store must be bit-identical to a
//! run that never crashed. The same sweep is applied to the `.events`
//! log, and the checkpoint writers' atomic-replace protocol is
//! crash-simulated too.

use std::path::PathBuf;
use trajdata::eventlog::{recover_event_log, write_event_log};
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajdb::store::ReadFilter;
use trajdb::{CrashFs, FsyncPolicy, Store, StoreOptions, TailMutation};
use trajgeo::{BBox, Grid, Point2};
use trajio::tail::TailVerdict;
use trajpattern::{Miner, MiningParams};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crash-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic trajectories inside the unit square with non-trivial
/// mantissas, 3 snapshots each — small enough that a full byte sweep of
/// the write stream stays fast.
fn traj(seed: u64) -> Trajectory {
    Trajectory::new(
        (0..3)
            .map(|i| {
                let k = seed.wrapping_mul(37).wrapping_add(i);
                SnapshotPoint {
                    mean: Point2::new(0.1 + (k % 7) as f64 / 9.0, 0.1 + (k % 5) as f64 / 7.0),
                    sigma: 0.02 + (k % 3) as f64 / 97.0,
                }
            })
            .collect(),
    )
    .unwrap()
}

fn opts() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::Never,
        // No auto-roll: the test controls sealing explicitly so the
        // recorded active-segment stream has a known batch structure.
        segment_max_bytes: u64::MAX,
    }
}

/// Builds the reference store: 2 batches sealed into one segment, then
/// 4 more batches in the active segment. Returns the directory and the
/// full trajectory list in id order, with the record count committed by
/// each sealed-plus-active prefix.
fn build_reference(tag: &str) -> (PathBuf, Vec<Trajectory>, Vec<usize>) {
    let dir = tmp_dir(tag);
    let mut store = Store::open(&dir, opts()).unwrap();
    let mut all = Vec::new();
    let mut next = 0u64;
    let mut sizes = Vec::new();
    let mut push_batch = |store: &mut Store, t: u64, n: usize| {
        let batch: Vec<Trajectory> = (0..n)
            .map(|_| {
                next += 1;
                traj(next)
            })
            .collect();
        store.append_batch(t, &batch).unwrap();
        all.extend(batch.iter().cloned());
        sizes.push(n);
    };
    push_batch(&mut store, 0, 2);
    push_batch(&mut store, 1, 1);
    store.seal_active().unwrap();
    for (i, n) in [2usize, 1, 3, 1].into_iter().enumerate() {
        push_batch(&mut store, 2 + i as u64, n);
    }
    store.sync().unwrap();
    let sealed: usize = sizes[..2].iter().sum();
    let mut committed_after = Vec::new();
    let mut acc = sealed;
    committed_after.push(acc);
    for n in &sizes[2..] {
        acc += n;
        committed_after.push(acc);
    }
    (dir, all, committed_after)
}

fn bits(t: &Trajectory) -> Vec<(u64, u64, u64)> {
    t.points()
        .iter()
        .map(|p| (p.mean.x.to_bits(), p.mean.y.to_bits(), p.sigma.to_bits()))
        .collect()
}

fn assert_prefix(records: &[trajdb::Record], originals: &[Trajectory], n: usize, ctx: &str) {
    assert_eq!(records.len(), n, "{ctx}");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.id, i as u64, "{ctx}");
        assert_eq!(
            bits(&r.trajectory),
            bits(&originals[i]),
            "{ctx}: record {i}"
        );
    }
}

#[test]
fn every_power_cut_recovers_the_committed_batch_prefix() {
    let (src, originals, committed_after) = build_reference("sweep");
    let fs = CrashFs::record(&src).unwrap();
    let commit_offsets: Vec<usize> = fs.commit_offsets().to_vec();

    for cut in 0..=fs.len() {
        let dst = tmp_dir("sweep-dst");
        fs.materialize(&src, &dst, cut, &TailMutation::None)
            .unwrap();
        let store = Store::open(&dst, opts()).unwrap();
        let rec = store.stats().recovery.clone();
        let expected = committed_after[fs.committed_batches(cut)];
        let records = store.read(&ReadFilter::all()).unwrap();
        assert_prefix(&records, &originals, expected, &format!("cut {cut}"));
        if fs.is_commit_boundary(cut) {
            assert_eq!(rec.verdict, TailVerdict::Clean, "cut {cut}");
            assert_eq!(rec.dropped_bytes, 0, "cut {cut}");
        } else {
            assert_ne!(rec.verdict, TailVerdict::Clean, "cut {cut}");
            assert!(rec.dropped_bytes > 0, "cut {cut}");
        }
        // Recovery is idempotent: a second open is clean and identical.
        drop(store);
        let store = Store::open(&dst, opts()).unwrap();
        assert_eq!(
            store.stats().recovery.verdict,
            TailVerdict::Clean,
            "cut {cut} reopen"
        );
        let again = store.read(&ReadFilter::all()).unwrap();
        assert_prefix(&again, &originals, expected, &format!("cut {cut} reopen"));
        std::fs::remove_dir_all(&dst).unwrap();
    }
    assert!(
        commit_offsets.len() >= 5,
        "the sweep must cover several batch boundaries: {commit_offsets:?}"
    );
    std::fs::remove_dir_all(&src).unwrap();
}

#[test]
fn garbage_tails_and_replayed_batches_never_corrupt_the_prefix() {
    let (src, originals, committed_after) = build_reference("mutate");
    let fs = CrashFs::record(&src).unwrap();
    let junk: &[&[u8]] = &[
        b"\x00\x00\x00\x00\x00\x00",
        b"b 999 999 1 10 deadbeef\r 9",
        b"trajdb-segment v1\n",
        b"\xff\xfe binary \x7f garbage",
    ];
    for &cut in fs.commit_offsets() {
        for (j, g) in junk.iter().enumerate() {
            let dst = tmp_dir("mutate-dst");
            fs.materialize(&src, &dst, cut, &TailMutation::Garbage(g.to_vec()))
                .unwrap();
            let store = Store::open(&dst, opts()).unwrap();
            let rec = store.stats().recovery.clone();
            assert_ne!(rec.verdict, TailVerdict::Clean, "cut {cut} junk {j}");
            let expected = committed_after[fs.committed_batches(cut)];
            let records = store.read(&ReadFilter::all()).unwrap();
            assert_prefix(
                &records,
                &originals,
                expected,
                &format!("cut {cut} junk {j}"),
            );
            std::fs::remove_dir_all(&dst).unwrap();
        }
    }
    // An at-least-once writer replaying the previous batch after a cut:
    // the duplicate's stale sequence number gets it dropped.
    for &cut in fs
        .commit_offsets()
        .iter()
        .filter(|&&c| fs.committed_batches(c) > 0)
    {
        let dst = tmp_dir("double-dst");
        fs.materialize(&src, &dst, cut, &TailMutation::DoubleLastBatch)
            .unwrap();
        let store = Store::open(&dst, opts()).unwrap();
        assert!(matches!(
            store.stats().recovery.verdict,
            TailVerdict::Garbage(_)
        ));
        let expected = committed_after[fs.committed_batches(cut)];
        let records = store.read(&ReadFilter::all()).unwrap();
        assert_prefix(&records, &originals, expected, &format!("double at {cut}"));
        std::fs::remove_dir_all(&dst).unwrap();
    }
    std::fs::remove_dir_all(&src).unwrap();
}

#[test]
fn remining_a_recovered_store_is_bit_identical_to_a_never_crashed_run() {
    let (src, originals, committed_after) = build_reference("remine");
    let fs = CrashFs::record(&src).unwrap();
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(3, 0.1).unwrap().with_max_len(3).unwrap();
    for &cut in fs.commit_offsets() {
        let dst = tmp_dir("remine-dst");
        fs.materialize(&src, &dst, cut, &TailMutation::None)
            .unwrap();
        let store = Store::open(&dst, opts()).unwrap();
        let recovered = store.read_dataset(&ReadFilter::all()).unwrap();
        // The never-crashed reference: a dataset holding exactly the
        // records committed before the cut.
        let expected = committed_after[fs.committed_batches(cut)];
        let reference = Dataset::from_trajectories(originals[..expected].to_vec());
        let a = Miner::new(&recovered, &grid)
            .params(params.clone())
            .mine()
            .unwrap();
        let b = Miner::new(&reference, &grid)
            .params(params.clone())
            .mine()
            .unwrap();
        assert_eq!(a.patterns.len(), b.patterns.len(), "cut {cut}");
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(x.pattern, y.pattern, "cut {cut}");
            assert_eq!(x.nm.to_bits(), y.nm.to_bits(), "cut {cut}");
        }
        std::fs::remove_dir_all(&dst).unwrap();
    }
    std::fs::remove_dir_all(&src).unwrap();
}

#[test]
fn event_log_survives_the_same_byte_sweep() {
    let data: Dataset = (0..4).map(|i| traj(100 + i)).collect();
    let text = write_event_log(&data);
    let header_len = text.find('\n').unwrap() + 1;
    let line_ends: Vec<usize> = text
        .char_indices()
        .filter(|&(_, c)| c == '\n')
        .map(|(i, _)| i + 1)
        .filter(|&e| e > header_len)
        .collect();
    for cut in header_len..=text.len() {
        let rec = recover_event_log(&text[..cut]).unwrap();
        let committed = line_ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(rec.events.len(), committed, "cut {cut}");
        for (a, b) in rec.events.iter().zip(data.iter()) {
            assert_eq!(bits(a), bits(b), "cut {cut}");
        }
        let clean = cut == header_len || line_ends.contains(&cut);
        assert_eq!(rec.scan.verdict == TailVerdict::Clean, clean, "cut {cut}");
    }
}

#[test]
fn checkpoint_crash_leaves_either_old_or_new_state_never_a_hybrid() {
    use trajstream::StreamMiner;
    let dir = tmp_dir("ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(3, 0.1).unwrap().with_max_len(3).unwrap();
    let mut miner = StreamMiner::new(grid, params).unwrap();
    let path = dir.join("stream.ckpt");
    for i in 0..4 {
        miner.slide(traj(200 + i), 4);
    }
    miner.checkpoint(&path).unwrap();
    let state_a = std::fs::read_to_string(&path).unwrap();

    // A crash mid-write of the *next* checkpoint leaves the target file
    // untouched (the write goes to a temp file first) plus a stray tmp.
    for i in 4..6 {
        miner.slide(traj(200 + i), 4);
    }
    let next_state = {
        let probe = dir.join("probe.ckpt");
        miner.checkpoint(&probe).unwrap();
        let s = std::fs::read_to_string(&probe).unwrap();
        std::fs::remove_file(&probe).unwrap();
        s
    };
    let torn = &next_state[..next_state.len() / 2];
    std::fs::write(dir.join("stream.ckpt.473.tmp"), torn).unwrap();
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        state_a,
        "a torn replacement never reaches the live checkpoint path"
    );
    let resumed = StreamMiner::resume(&path).unwrap();
    assert_eq!(resumed.stats().arrivals, 4, "resume sees the old state");

    // Once the full write lands (the rename committed), resume sees the
    // new state — and re-checkpointing it is byte-identical.
    miner.checkpoint(&path).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), next_state);
    let resumed = StreamMiner::resume(&path).unwrap();
    assert_eq!(resumed.stats().arrivals, 6);
    let rewrite = dir.join("rewrite.ckpt");
    resumed.checkpoint(&rewrite).unwrap();
    assert_eq!(std::fs::read_to_string(&rewrite).unwrap(), next_state);
    std::fs::remove_dir_all(&dir).unwrap();
}
