//! Corruption-matrix integration suite (ISSUE 2): drive ingest + mining
//! through every `IngestPolicy` × structural-corruption combination and
//! assert graceful degradation end-to-end — no panic escapes, `Strict`
//! errors are precise, `Skip`/`Repair` always yield a mineable dataset
//! with an accurate report, and a panicking scorer worker degrades to a
//! bit-identical sequential rescore instead of aborting the process.

use datagen::{corrupt_csv_structurally, observe_directly, BusConfig, StructuralDefect};
use trajdata::csv::{to_csv, Defect};
use trajdata::{ingest, IngestPolicy};
use trajgeo::{BBox, Grid};
use trajpattern::algorithm::mine_with_scorer;
use trajpattern::{Miner, MiningParams, Scorer};

const SEED: u64 = 2006;

fn clean_csv() -> String {
    let cfg = BusConfig {
        snapshots: 10,
        ..BusConfig::default()
    };
    let mut paths = cfg.paths_interleaved(SEED);
    paths.truncate(8);
    to_csv(&observe_directly(&paths, 0.01, SEED))
}

fn mining_grid() -> Grid {
    Grid::new(BBox::unit(), 5, 5).unwrap()
}

fn mining_params() -> MiningParams {
    MiningParams::new(3, 0.06).unwrap().with_max_len(3).unwrap()
}

#[test]
fn every_policy_times_defect_combination_degrades_gracefully() {
    let clean = clean_csv();
    let policies = [
        IngestPolicy::Strict,
        IngestPolicy::Skip,
        IngestPolicy::Repair,
    ];
    for (d, defect) in StructuralDefect::ALL.into_iter().enumerate() {
        let corrupted = corrupt_csv_structurally(&clean, &[defect], SEED + d as u64);
        assert_ne!(corrupted, clean, "{defect:?} must actually damage the file");
        for policy in policies {
            let result = ingest(&corrupted, policy);
            if policy == IngestPolicy::Strict {
                // Every defect in ALL damages this file; Strict refuses it
                // with a precise, typed error rather than partial data.
                let err = result.expect_err(&format!("Strict must reject {defect:?}"));
                assert!(!err.to_string().is_empty());
                continue;
            }
            let (data, report) =
                result.unwrap_or_else(|e| panic!("{policy:?} must survive {defect:?}, got {e}"));
            assert!(
                report.rows_kept <= report.rows_read,
                "{policy:?}/{defect:?}: kept {} of {} rows",
                report.rows_kept,
                report.rows_read
            );
            assert_eq!(report.trajectories_kept, data.len());
            // The surviving dataset must mine without error (an empty
            // dataset yields an empty outcome, which is still graceful).
            let outcome = Miner::new(&data, &mining_grid())
                .params(mining_params())
                .mine()
                .unwrap_or_else(|e| panic!("{policy:?}/{defect:?}: mining failed: {e}"));
            assert!(outcome.patterns.iter().all(|m| m.nm.is_finite()));
        }
    }
}

#[test]
fn reports_attribute_defects_accurately() {
    let clean = clean_csv();

    let nan = corrupt_csv_structurally(&clean, &[StructuralDefect::NanInjection], SEED);
    let (_, report) = ingest(&nan, IngestPolicy::Skip).unwrap();
    assert!(report.count(Defect::InvalidValue) >= 1, "{report}");

    let garbage = corrupt_csv_structurally(&clean, &[StructuralDefect::GarbageFields], SEED);
    let (_, report) = ingest(&garbage, IngestPolicy::Skip).unwrap();
    assert!(report.total_defects() >= 1, "{report}");

    let headless = corrupt_csv_structurally(&clean, &[StructuralDefect::DropHeader], SEED);
    let (data, report) = ingest(&headless, IngestPolicy::Skip).unwrap();
    assert!(report.count(Defect::MissingHeader) == 1, "{report}");
    assert!(!data.is_empty(), "data rows must survive a lost header");

    // Repair fixes NaN coordinates instead of dropping those rows: it
    // keeps strictly more rows than Skip does.
    let (skipped, _) = ingest(&nan, IngestPolicy::Skip).unwrap();
    let (repaired, report) = ingest(&nan, IngestPolicy::Repair).unwrap();
    let rows = |d: &trajdata::Dataset| d.iter().map(|t| t.len()).sum::<usize>();
    assert!(rows(&repaired) > rows(&skipped));
    let fixes = report.sanitize.expect("repair attaches a sanitize report");
    assert!(fixes.coords_interpolated >= 1, "{fixes}");
}

#[test]
fn stacked_corruption_still_yields_a_result_under_repair() {
    let clean = clean_csv();
    let wrecked = corrupt_csv_structurally(&clean, &StructuralDefect::ALL, SEED);
    let (data, report) = ingest(&wrecked, IngestPolicy::Repair).unwrap();
    assert!(report.total_defects() >= 1);
    Miner::new(&data, &mining_grid())
        .params(mining_params())
        .mine()
        .expect("mining repaired wreckage must not fail");
}

#[test]
fn injected_worker_panic_degrades_to_bit_identical_rescore() {
    // Enough trajectories that the scorer actually splits into multiple
    // shards (it refuses to shard tiny datasets).
    let cfg = BusConfig {
        snapshots: 10,
        ..BusConfig::default()
    };
    let mut paths = cfg.paths_interleaved(SEED);
    paths.truncate(32);
    let data = observe_directly(&paths, 0.01, SEED);
    let grid = mining_grid();
    let params = mining_params();

    let reference = {
        let scorer = Scorer::with_threads(&data, &grid, params.delta, params.min_prob, 4);
        mine_with_scorer(&scorer, &params).unwrap()
    };
    assert_eq!(reference.stats.degraded_shard_rescores, 0);

    let degraded = {
        let scorer = Scorer::with_threads(&data, &grid, params.delta, params.min_prob, 4);
        assert!(scorer.num_shards() > 1, "dataset too small to shard");
        scorer.inject_panic_next_batch(0);
        mine_with_scorer(&scorer, &params).unwrap()
    };
    assert!(
        degraded.stats.degraded_shard_rescores >= 1,
        "injected panic must surface in the degraded counter"
    );

    // The process survived AND the answer is exactly the same.
    assert_eq!(reference.patterns, degraded.patterns);
    for (a, b) in reference.patterns.iter().zip(&degraded.patterns) {
        assert_eq!(a.nm.to_bits(), b.nm.to_bits());
    }
    assert_eq!(reference.groups, degraded.groups);
    assert_eq!(reference.stats.iterations, degraded.stats.iterations);
    assert_eq!(
        reference.stats.candidates_scored,
        degraded.stats.candidates_scored
    );
    assert_eq!(
        reference.stats.nm_evaluations,
        degraded.stats.nm_evaluations
    );
}
