//! Property-based tests of the paper's core invariants on random data.

use proptest::prelude::*;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::stats::{prob_within_delta, std_normal_interval};
use trajgeo::{BBox, CellId, Grid, Point2};
use trajpattern::minmax::{min_max_bound, weighted_mean_bound};
use trajpattern::{Pattern, Scorer};

/// Strategy: a random imprecise trajectory on the unit square.
fn arb_trajectory(len: std::ops::Range<usize>) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.005f64..0.2), len).prop_map(|pts| {
        Trajectory::new(
            pts.into_iter()
                .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                .collect(),
        )
        .unwrap()
    })
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(arb_trajectory(4..10), 1..6).prop_map(Dataset::from_trajectories)
}

/// Strategy: a random pattern over a `side × side` grid.
fn arb_pattern(side: u32, len: std::ops::Range<usize>) -> impl Strategy<Value = Pattern> {
    prop::collection::vec(0..side * side, len)
        .prop_map(|cells| Pattern::new(cells.into_iter().map(CellId).collect()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1 of the paper: NM(P'·P'') ≤ max(NM(P'), NM(P'')), and the
    /// tighter weighted-mean inequality from its proof.
    #[test]
    fn min_max_property_holds(
        data in arb_dataset(),
        p1 in arb_pattern(4, 1..4),
        p2 in arb_pattern(4, 1..4),
    ) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let scorer = Scorer::new(&data, &grid, 0.08, 1e-12);
        let nm1 = scorer.nm(&p1);
        let nm2 = scorer.nm(&p2);
        let joined = scorer.nm(&p1.concat(&p2));
        let wm = weighted_mean_bound(nm1, p1.len(), nm2, p2.len());
        prop_assert!(joined <= wm + 1e-9,
            "weighted-mean bound violated: NM(P1·P2)={joined} > {wm}");
        prop_assert!(joined <= min_max_bound(nm1, nm2) + 1e-9,
            "min-max violated: NM(P1·P2)={joined} > max({nm1},{nm2})");
    }

    /// The match measure is anti-monotone under extension on both sides
    /// (the Apriori property the paper contrasts NM against).
    #[test]
    fn match_is_antimonotone(
        data in arb_dataset(),
        p in arb_pattern(4, 1..4),
        cell in 0u32..16,
    ) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let scorer = Scorer::new(&data, &grid, 0.08, 1e-12);
        let base = scorer.match_score(&p);
        let single = Pattern::singular(CellId(cell));
        let right = scorer.match_score(&p.concat(&single));
        let left = scorer.match_score(&single.concat(&p));
        prop_assert!(right <= base + 1e-9, "right extension raised match");
        prop_assert!(left <= base + 1e-9, "left extension raised match");
    }

    /// NM values are always finite and non-positive (means of log
    /// probabilities, floored).
    #[test]
    fn nm_is_finite_and_nonpositive(
        data in arb_dataset(),
        p in arb_pattern(4, 1..5),
    ) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let scorer = Scorer::new(&data, &grid, 0.08, 1e-12);
        let nm = scorer.nm(&p);
        prop_assert!(nm.is_finite());
        prop_assert!(nm <= 1e-12);
        // Bounded below by the floor.
        let floor = (1e-12f64).ln() * data.len() as f64;
        prop_assert!(nm >= floor - 1e-9);
    }

    /// §3.2 velocity transformation: means difference, variances add.
    #[test]
    fn velocity_transform_is_exact(t in arb_trajectory(2..12)) {
        let v = t.to_velocity().unwrap();
        prop_assert_eq!(v.len(), t.len() - 1);
        for i in 0..v.len() {
            let expect = t[i + 1].mean - t[i].mean;
            prop_assert!((v[i].mean.x - expect.x).abs() < 1e-12);
            prop_assert!((v[i].mean.y - expect.y).abs() < 1e-12);
            let sig = (t[i].sigma.powi(2) + t[i + 1].sigma.powi(2)).sqrt();
            prop_assert!((v[i].sigma - sig).abs() < 1e-12);
        }
    }

    /// Grid locate/center round-trip for arbitrary points.
    #[test]
    fn grid_locate_contains_point(
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        nx in 1u32..40,
        ny in 1u32..40,
    ) {
        let grid = Grid::new(BBox::unit(), nx, ny).unwrap();
        let cell = grid.locate(Point2::new(x, y));
        let c = grid.center(cell);
        // The located cell's center is within half a cell of the point.
        prop_assert!((c.x - x).abs() <= grid.cell_width() / 2.0 + 1e-12);
        prop_assert!((c.y - y).abs() <= grid.cell_height() / 2.0 + 1e-12);
    }

    /// Prob(l, σ, p, δ) is a probability, symmetric in l and p, and
    /// monotone in δ.
    #[test]
    fn prob_kernel_properties(
        lx in 0.0f64..1.0, ly in 0.0f64..1.0,
        px in 0.0f64..1.0, py in 0.0f64..1.0,
        sigma in 0.001f64..0.5,
        delta in 0.001f64..0.3,
    ) {
        let l = Point2::new(lx, ly);
        let p = Point2::new(px, py);
        let v = prob_within_delta(l, sigma, p, delta);
        prop_assert!((0.0..=1.0).contains(&v));
        let sym = prob_within_delta(p, sigma, l, delta);
        prop_assert!((v - sym).abs() < 1e-9);
        let bigger = prob_within_delta(l, sigma, p, delta * 1.5);
        prop_assert!(bigger >= v - 1e-12);
    }

    /// The standard normal interval function is non-negative, bounded by
    /// one, and additive over adjacent intervals.
    #[test]
    fn normal_interval_additivity(
        a in -6.0f64..6.0,
        width1 in 0.001f64..3.0,
        width2 in 0.001f64..3.0,
    ) {
        let b = a + width1;
        let c = b + width2;
        let ab = std_normal_interval(a, b);
        let bc = std_normal_interval(b, c);
        let ac = std_normal_interval(a, c);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab + bc - ac).abs() < 1e-7,
            "additivity violated: {ab} + {bc} != {ac}");
    }

    /// Pattern super/sub relations are consistent with concatenation.
    #[test]
    fn concat_creates_super_patterns(
        p1 in arb_pattern(6, 1..4),
        p2 in arb_pattern(6, 1..4),
    ) {
        let joined = p1.concat(&p2);
        prop_assert!(joined.is_super_pattern_of(&p1));
        prop_assert!(joined.is_super_pattern_of(&p2));
        prop_assert!(joined.is_proper_super_pattern_of(&p1));
        prop_assert_eq!(joined.len(), p1.len() + p2.len());
    }
}
