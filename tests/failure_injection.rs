//! Failure injection: message loss and growing uncertainty through the
//! full pipeline. The miner must degrade gracefully — same cardinality,
//! weaker (more negative) NM values — never crash or return nonsense.

use datagen::{observe_via_reporting, ZebraConfig};
use mobility::{LinearModel, ReportingScheme, UncertaintyModel};
use trajgeo::{BBox, Grid};
use trajpattern::{mine, MiningParams};

fn herd_paths(seed: u64) -> Vec<Vec<trajgeo::Point2>> {
    ZebraConfig {
        num_groups: 1,
        zebras_per_group: 12,
        snapshots: 40,
        ..ZebraConfig::default()
    }
    .paths(seed)
}

fn mine_top_nm(data: &trajdata::Dataset) -> Vec<f64> {
    let grid = Grid::new(BBox::unit(), 8, 8).unwrap();
    let params = MiningParams::new(5, 0.06).unwrap().with_max_len(3).unwrap();
    mine(data, &grid, &params)
        .unwrap()
        .patterns
        .iter()
        .map(|m| m.nm)
        .collect()
}

#[test]
fn increasing_message_loss_monotonically_degrades_certainty() {
    let paths = herd_paths(31);
    let mut prev_sigma = -1.0;
    for loss in [0.0, 0.2, 0.5, 0.8] {
        let scheme = ReportingScheme::new(0.03, 2.0, loss).unwrap();
        let mut model = LinearModel::new();
        let data = observe_via_reporting(&paths, &mut model, &scheme, 32);
        let sigma = data.stats().unwrap().avg_sigma;
        assert!(
            sigma >= prev_sigma - 1e-12,
            "avg sigma decreased when loss rose to {loss}: {sigma} < {prev_sigma}"
        );
        prev_sigma = sigma;
        // Mining still returns the requested k with finite values.
        let nms = mine_top_nm(&data);
        assert_eq!(nms.len(), 5);
        assert!(nms.iter().all(|v| v.is_finite() && *v <= 0.0));
    }
}

#[test]
fn extreme_loss_still_produces_usable_data() {
    let paths = herd_paths(33);
    let scheme = ReportingScheme::new(0.03, 2.0, 0.95).unwrap();
    let mut model = LinearModel::new();
    let data = observe_via_reporting(&paths, &mut model, &scheme, 34);
    assert_eq!(data.len(), paths.len());
    // Almost everything is dead-reckoned…
    let stats = data.stats().unwrap();
    assert!(stats.avg_sigma > 0.01, "sigma {}", stats.avg_sigma);
    // …but mining still works.
    assert_eq!(mine_top_nm(&data).len(), 5);
}

#[test]
fn growing_uncertainty_models_flow_through_the_pipeline() {
    let paths = herd_paths(35);
    for model_kind in [
        UncertaintyModel::Constant,
        UncertaintyModel::GrowingWithTime { rate: 0.1 },
        UncertaintyModel::GrowingWithDistance { rate: 1.0 },
    ] {
        let scheme = ReportingScheme::new(0.03, 2.0, 0.0)
            .unwrap()
            .with_uncertainty_model(model_kind)
            .unwrap();
        let mut model = LinearModel::new();
        let data = observe_via_reporting(&paths, &mut model, &scheme, 36);
        let nms = mine_top_nm(&data);
        assert_eq!(nms.len(), 5, "{model_kind:?}");
        assert!(nms.iter().all(|v| v.is_finite()), "{model_kind:?}");
    }
}

#[test]
fn growing_tolerance_trades_reports_for_uncertainty() {
    let paths = herd_paths(37);
    let constant = ReportingScheme::new(0.02, 2.0, 0.0).unwrap();
    let growing = constant
        .with_uncertainty_model(UncertaintyModel::GrowingWithTime { rate: 0.5 })
        .unwrap();
    let count_reports = |scheme: &ReportingScheme| -> (usize, f64) {
        let mut model = LinearModel::new();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(38);
        let mut reports = 0;
        let mut sigma_sum = 0.0;
        let mut snaps = 0;
        for path in &paths {
            let out = mobility::simulate_reporting(path, &mut model, scheme, &mut rng);
            reports += out.reports.len();
            for sp in out.reconstructed.points() {
                sigma_sum += sp.sigma;
                snaps += 1;
            }
        }
        (reports, sigma_sum / snaps as f64)
    };
    let (r_const, s_const) = count_reports(&constant);
    let (r_grow, s_grow) = count_reports(&growing);
    assert!(
        r_grow <= r_const,
        "growing tolerance must not report more: {r_grow} vs {r_const}"
    );
    assert!(
        s_grow >= s_const,
        "fewer reports must cost uncertainty: {s_grow} vs {s_const}"
    );
}
