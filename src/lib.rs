//! # trajpattern-repro
//!
//! A full reproduction of **"TrajPattern: Mining Sequential Patterns from
//! Imprecise Trajectories of Mobile Objects"** (Yang & Hu, EDBT 2006) as a
//! Rust workspace. This facade crate re-exports every subsystem:
//!
//! - [`trajgeo`]: geometry, normal-distribution kernels, grids.
//! - [`trajdata`]: imprecise trajectories and datasets (§3.2).
//! - [`mobility`]: motion models (LM/LKF/RMF) and the dead-reckoning
//!   location-reporting protocol (§3.1).
//! - [`datagen`]: bus-fleet, ZebraNet-style, uniform and posture workload
//!   generators (§6).
//! - [`trajpattern`]: the TrajPattern miner — NM measure, min-max
//!   property, 1-extension pruning, pattern groups, wildcard extension
//!   (§3.3–§5).
//! - [`baselines`]: the match-measure miner \[14\] and the
//!   projection-based NM miner \[13\] used as §6 comparators.
//! - [`prediction`]: pattern-assisted location prediction and the
//!   mis-prediction evaluation harness (Fig. 3).
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and the `bench`
//! crate for the experiment harness regenerating every figure of the
//! paper.

#![forbid(unsafe_code)]

pub use baselines;
pub use datagen;
pub use mobility;
pub use prediction;
pub use trajdata;
pub use trajgeo;
pub use trajpattern;
