//! Serving throughput experiment (ours): request rate and tail latency of
//! the `trajserve` HTTP server over a mined snapshot.
//!
//! Mines the ZebraNet-style workload once, loads the snapshot into an
//! in-process [`trajserve::Server`] bound to an ephemeral port, and
//! drives it with keep-alive client threads alternating `GET /v1/topk`
//! (cached JSON, measures the connection/framing floor) and
//! `POST /v1/score` (runs the batch scorer per request, measures the
//! compute path). Every request's wall time is recorded; the report
//! gives per-endpoint request rate and p50/p99 latency plus whole-run
//! totals, in the same `axis`/`config`/`points` envelope as the other
//! experiments.

use crate::workloads::zebranet_workload;
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;
use trajpattern::{Miner, MiningParams};
use trajserve::{Server, ServerConfig, Snapshot};

/// Configuration of the serving throughput run.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchConfig {
    /// Trajectories mined into the snapshot.
    pub s: usize,
    /// Trajectory length `L`.
    pub l: usize,
    /// Grid side (G = side²).
    pub grid_side: u32,
    /// Top-k size.
    pub k: usize,
    /// Pattern length cap.
    pub max_len: usize,
    /// Indifference distance δ.
    pub delta: f64,
    /// Concurrent keep-alive client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Trajectories in every `POST /score` body.
    pub score_trajectories: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            s: 40,
            l: 30,
            grid_side: 10,
            k: 8,
            max_len: 5,
            delta: 0.03,
            clients: 4,
            requests_per_client: 200,
            score_trajectories: 4,
            workers: 2,
            seed: 11,
        }
    }
}

/// Per-endpoint measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ServePoint {
    /// Endpoint label (`topk` or `score`).
    pub endpoint: String,
    /// Requests issued against this endpoint.
    pub requests: u64,
    /// Requests per second, measured over the whole run's wall time and
    /// this endpoint's share of requests.
    pub req_per_sec: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Mean request latency in milliseconds.
    pub mean_ms: f64,
}

/// Whole-run aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct ServeTotals {
    /// Requests served (all endpoints, all clients).
    pub requests: u64,
    /// Wall time of the client phase.
    pub wall_secs: f64,
    /// Overall requests per second.
    pub req_per_sec: f64,
    /// Patterns in the served snapshot.
    pub snapshot_patterns: usize,
}

/// Result of the serving throughput experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ServeThroughputResult {
    /// Always "endpoint".
    pub axis: String,
    /// Configuration the run was based on.
    pub config: ServeBenchConfig,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// One point per endpoint.
    pub points: Vec<ServePoint>,
    /// Whole-run aggregates.
    pub totals: ServeTotals,
}

/// Issues one request on a kept-alive connection and reads the full
/// response, returning the status code. Panics on a torn response — the
/// bench asserts the server stays healthy.
fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    head: &str,
    body: &[u8],
) -> u16 {
    writer.write_all(head.as_bytes()).expect("request written");
    writer.write_all(body).expect("body written");
    writer.flush().expect("request flushed");

    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("numeric content-length");
        }
    }
    let mut payload = vec![0u8; content_length];
    reader.read_exact(&mut payload).expect("response body");
    status
}

/// Runs the serving throughput experiment.
pub fn run_serve(cfg: &ServeBenchConfig) -> ServeThroughputResult {
    let params = MiningParams::new(cfg.k, cfg.delta)
        .expect("valid params")
        .with_min_len(2)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");
    let w = zebranet_workload(cfg.s, cfg.l, cfg.grid_side, cfg.seed);
    let outcome = Miner::new(&w.data, &w.grid)
        .params(params.clone())
        .mine()
        .expect("mining the workload succeeds");
    let snapshot = Snapshot::from_outcome(&outcome, &w.grid, &params);
    let snapshot_patterns = snapshot.patterns.len();

    let server = Server::bind(
        snapshot,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: cfg.workers,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr().expect("ephemeral addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Every client alternates the two endpoints on one keep-alive
    // connection; the score body is the same small query dataset.
    let score_body: Vec<u8> = w
        .data
        .trajectories()
        .iter()
        .take(cfg.score_trajectories.max(1))
        .cloned()
        .collect::<trajdata::Dataset>()
        .to_json()
        .into_bytes();
    let topk_head = "GET /v1/topk HTTP/1.1\r\nHost: bench\r\n\r\n".to_string();
    let score_head = format!(
        "POST /v1/score HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        score_body.len()
    );

    let t0 = Instant::now();
    let clients: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let (topk_head, score_head, score_body) =
                (topk_head.clone(), score_head.clone(), score_body.clone());
            let n = cfg.requests_per_client;
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("client connects");
                // Without nodelay, Nagle on the two-write request path
                // interacts with delayed ACKs and inflates every POST
                // by ~40ms of pure socket stall.
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("client write half");
                let mut reader = BufReader::new(stream);
                let mut lat: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
                for i in 0..n {
                    let score = (c + i) % 2 == 1;
                    let (head, body) = if score {
                        (&score_head, &score_body[..])
                    } else {
                        (&topk_head, &[][..])
                    };
                    let t = Instant::now();
                    let status = roundtrip(&mut reader, &mut writer, head, body);
                    assert_eq!(status, 200, "request {i} of client {c} failed");
                    lat[score as usize].push(t.elapsed().as_secs_f64());
                }
                lat
            })
        })
        .collect();

    let mut latencies: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for client in clients {
        let lat = client.join().expect("client thread finishes");
        for (all, part) in latencies.iter_mut().zip(lat) {
            all.extend(part);
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();

    handle.shutdown();
    server_thread
        .join()
        .expect("server thread finishes")
        .expect("server drains cleanly");

    let total_requests: u64 = latencies.iter().map(|l| l.len() as u64).sum();
    let points = ["topk", "score"]
        .iter()
        .zip(&mut latencies)
        .map(|(endpoint, lat)| {
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let n = lat.len();
            let pct = |q: f64| {
                if n == 0 {
                    0.0
                } else {
                    lat[(((n - 1) as f64) * q).round() as usize] * 1e3
                }
            };
            ServePoint {
                endpoint: endpoint.to_string(),
                requests: n as u64,
                req_per_sec: if wall_secs > 0.0 {
                    n as f64 / wall_secs
                } else {
                    0.0
                },
                p50_ms: pct(0.5),
                p99_ms: pct(0.99),
                mean_ms: if n > 0 {
                    lat.iter().sum::<f64>() / n as f64 * 1e3
                } else {
                    0.0
                },
            }
        })
        .collect();

    ServeThroughputResult {
        axis: "endpoint".into(),
        config: cfg.clone(),
        available_parallelism: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
        points,
        totals: ServeTotals {
            requests: total_requests,
            wall_secs,
            req_per_sec: if wall_secs > 0.0 {
                total_requests as f64 / wall_secs
            } else {
                0.0
            },
            snapshot_patterns,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_runs_and_answers_every_request() {
        let cfg = ServeBenchConfig {
            s: 10,
            l: 12,
            grid_side: 6,
            k: 4,
            max_len: 4,
            clients: 2,
            requests_per_client: 6,
            score_trajectories: 2,
            workers: 2,
            ..ServeBenchConfig::default()
        };
        let r = run_serve(&cfg);
        assert_eq!(r.axis, "endpoint");
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.totals.requests, 12);
        assert_eq!(r.points.iter().map(|p| p.requests).sum::<u64>(), 12);
        assert!(r.totals.req_per_sec > 0.0);
        assert!(r.points.iter().all(|p| p.p99_ms >= p.p50_ms));
        assert!(r.totals.snapshot_patterns > 0);
    }
}
