//! The §6.1 pattern-length statistic.
//!
//! "The average length of top-1000 match patterns with length at least 3
//! is about 3.18, while the average length of top-1000 NM patterns with
//! length at least 3 is 4.2, which is much longer than that of match
//! patterns." This is the paper's core argument for normalization: the
//! raw match measure shrinks with length, so its top-k saturates at the
//! minimum allowed length, while NM surfaces longer (more informative)
//! patterns.

use crate::workloads::{bus_velocity_grid, bus_workload};
use baselines::mine_match;
use datagen::observe_via_reporting;
use mobility::{LinearModel, ReportingScheme};
use serde::Serialize;
use trajpattern::{mine, MiningParams};

/// Configuration of the length-statistic experiment.
#[derive(Debug, Clone, Serialize)]
pub struct LengthsConfig {
    /// Bus traces to generate.
    pub traces: usize,
    /// Patterns to mine per measure (paper: 1000).
    pub k: usize,
    /// Minimum pattern length (paper: 3).
    pub min_len: usize,
    /// Maximum pattern length considered.
    pub max_len: usize,
    /// Indifference distance in velocity space.
    pub delta: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for LengthsConfig {
    fn default() -> Self {
        LengthsConfig {
            traces: 300,
            k: 500,
            min_len: 3,
            max_len: 8,
            delta: 0.005,
            seed: 11,
        }
    }
}

/// Result of the experiment.
#[derive(Debug, Clone, Serialize)]
pub struct LengthsResult {
    /// Configuration used.
    pub config: LengthsConfig,
    /// Average length of the top-k NM patterns (paper: ≈ 4.2).
    pub nm_avg_len: f64,
    /// Average length of the top-k match patterns (paper: ≈ 3.18).
    pub match_avg_len: f64,
    /// NM patterns actually mined.
    pub nm_count: usize,
    /// Match patterns actually mined.
    pub match_count: usize,
}

/// Runs the experiment on the bus velocity data.
pub fn run(cfg: &LengthsConfig) -> LengthsResult {
    let w = bus_workload(cfg.traces, cfg.seed);
    let scheme = ReportingScheme::new(w.uncertainty, w.c, 0.0).expect("valid scheme");
    let mut model = LinearModel::new();
    let locations = observe_via_reporting(&w.paths, &mut model, &scheme, cfg.seed ^ 0xf16);
    let velocities = locations.to_velocity().expect("traces have ≥ 2 snapshots");
    let grid = bus_velocity_grid();

    let params = MiningParams::new(cfg.k, cfg.delta)
        .expect("valid params")
        .with_min_len(cfg.min_len)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");

    let nm_out = mine(&velocities, &grid, &params).expect("NM mining succeeds");
    let match_out = mine_match(&velocities, &grid, &params).expect("match mining succeeds");

    let avg = |lens: Vec<usize>| -> f64 {
        if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<usize>() as f64 / lens.len() as f64
        }
    };

    LengthsResult {
        config: cfg.clone(),
        nm_avg_len: avg(nm_out.patterns.iter().map(|m| m.pattern.len()).collect()),
        match_avg_len: avg(match_out.patterns.iter().map(|m| m.pattern.len()).collect()),
        nm_count: nm_out.patterns.len(),
        match_count: match_out.patterns.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nm_patterns_are_no_shorter_than_match_patterns() {
        // Deliberately tiny: this runs in debug CI; the real experiment
        // is `exp_lengths`.
        let cfg = LengthsConfig {
            traces: 20,
            k: 10,
            min_len: 3,
            max_len: 5,
            ..LengthsConfig::default()
        };
        let r = run(&cfg);
        assert!(r.nm_count > 0 && r.match_count > 0);
        assert!(r.nm_avg_len >= cfg.min_len as f64);
        assert!(r.match_avg_len >= cfg.min_len as f64);
        // The paper's headline (NM ≫ match) needs the full experiment's
        // k; at this tiny scale we only require NM not to be shorter by
        // more than a whisker.
        assert!(
            r.nm_avg_len >= r.match_avg_len - 0.5,
            "NM avg {} ≪ match avg {}",
            r.nm_avg_len,
            r.match_avg_len
        );
    }
}
