//! Streaming throughput experiment (ours): incremental sliding-window
//! maintenance vs re-mining the window from scratch on every event.
//!
//! Replays the ZebraNet-style workload as an arrival stream through
//! [`trajstream::StreamMiner`] with a fixed window, timing every event
//! (one `slide`: arrival + eviction + maintenance) and classifying it as
//! a *pure delta*
//! (the contribution ledger certified the top-k without scoring any
//! candidate against the data) or a *repair*. At sample points the full
//! batch miner is timed over the same window contents and the streamed
//! top-k is checked bit-identical to it — the delta path has to beat that
//! re-mine time by a wide margin for streaming to pay off.
//!
//! The result uses the same report envelope as the `fig4_threads` sweep
//! (`axis`/`config`/`available_parallelism`/`points`).

use crate::workloads::zebranet_workload;
use serde::Serialize;
use std::time::Instant;
use trajpattern::{Miner, MiningParams};
use trajstream::StreamMiner;

/// Configuration of the streaming throughput run.
#[derive(Debug, Clone, Serialize)]
pub struct StreamBenchConfig {
    /// Number of arrival events (trajectories streamed).
    pub events: usize,
    /// Trajectory length `L`.
    pub l: usize,
    /// Grid side (G = side²).
    pub grid_side: u32,
    /// Top-k size.
    pub k: usize,
    /// Pattern length cap.
    pub max_len: usize,
    /// Indifference distance δ.
    pub delta: f64,
    /// Sliding-window capacity (trajectories kept live).
    pub window: u64,
    /// Every `remine_every` events the window is also re-mined from
    /// scratch for the time + bit-identity comparison.
    pub remine_every: usize,
    /// Workload seeds; bucket measurements are averaged across them.
    pub seeds: Vec<u64>,
}

impl Default for StreamBenchConfig {
    fn default() -> Self {
        StreamBenchConfig {
            events: 120,
            l: 40,
            grid_side: 12,
            k: 10,
            max_len: 6,
            delta: 0.03,
            window: 30,
            remine_every: 10,
            seeds: vec![7, 8, 9],
        }
    }
}

/// One sample point (a `remine_every`-sized bucket of events).
#[derive(Debug, Clone, Serialize)]
pub struct StreamPoint {
    /// Event index at the end of the bucket.
    pub x: f64,
    /// Mean per-event wall time of pure-delta events in the bucket.
    pub delta_event_secs: f64,
    /// Mean per-event wall time of repair events (0 when none occurred).
    pub repair_event_secs: f64,
    /// Wall time of a from-scratch batch mine over the window here.
    pub remine_secs: f64,
    /// `remine_secs / delta_event_secs` — how much the delta path saves.
    pub speedup_vs_remine: f64,
    /// Pure-delta events in the bucket.
    pub deltas: u64,
    /// Repair events in the bucket.
    pub repairs: u64,
    /// Whether the streamed top-k was bit-identical to the batch mine
    /// (asserted; recorded as evidence).
    pub identical_to_batch: bool,
}

/// Aggregates over the whole run.
#[derive(Debug, Clone, Serialize)]
pub struct StreamTotals {
    /// Arrival events processed (per seed).
    pub events: u64,
    /// Repair maintenance passes (arrivals or evictions that scored).
    pub repairs: u64,
    /// `repairs / events`.
    pub repair_rate: f64,
    /// Mean per-event wall time over pure-delta events.
    pub mean_delta_event_secs: f64,
    /// Mean from-scratch re-mine wall time at the sample points.
    pub mean_remine_secs: f64,
    /// `mean_remine_secs / mean_delta_event_secs`.
    pub speedup_delta_vs_remine: f64,
    /// Overall events per second sustained by the stream miner.
    pub events_per_sec: f64,
}

/// Result of the streaming throughput experiment.
#[derive(Debug, Clone, Serialize)]
pub struct StreamThroughputResult {
    /// Always "events".
    pub axis: String,
    /// Configuration the run was based on.
    pub config: StreamBenchConfig,
    /// Cores the host reports (the run itself is single-threaded).
    pub available_parallelism: usize,
    /// The measured buckets.
    pub points: Vec<StreamPoint>,
    /// Whole-run aggregates.
    pub totals: StreamTotals,
}

struct Bucket {
    delta_secs: f64,
    deltas: u64,
    repair_secs: f64,
    repairs: u64,
    remine_secs: f64,
    identical: bool,
}

/// Runs the streaming throughput experiment.
pub fn run_stream(cfg: &StreamBenchConfig) -> StreamThroughputResult {
    let params = MiningParams::new(cfg.k, cfg.delta)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");

    let n_buckets = cfg.events.div_ceil(cfg.remine_every);
    let mut buckets: Vec<Bucket> = (0..n_buckets)
        .map(|_| Bucket {
            delta_secs: 0.0,
            deltas: 0,
            repair_secs: 0.0,
            repairs: 0,
            remine_secs: 0.0,
            identical: true,
        })
        .collect();
    let mut total_stream_secs = 0.0;
    let mut total_repairs = 0u64;
    let mut total_events = 0u64;

    for &seed in &cfg.seeds {
        let w = zebranet_workload(cfg.events, cfg.l, cfg.grid_side, seed);
        let mut miner =
            StreamMiner::new(w.grid.clone(), params.clone()).expect("valid stream params");
        for (i, traj) in w.data.trajectories().iter().cloned().enumerate() {
            let bucket = &mut buckets[i / cfg.remine_every];
            let repairs_before = miner.stats().repairs;
            let t0 = Instant::now();
            miner.slide(traj, cfg.window);
            let secs = t0.elapsed().as_secs_f64();
            total_stream_secs += secs;
            total_events += 1;
            // Event 0 is the bootstrap mine: neither a delta nor a repair.
            let repaired = miner.stats().repairs > repairs_before;
            if repaired {
                bucket.repair_secs += secs;
                bucket.repairs += 1;
                total_repairs += 1;
            } else if i > 0 {
                bucket.delta_secs += secs;
                bucket.deltas += 1;
            }

            if (i + 1) % cfg.remine_every == 0 || i + 1 == cfg.events {
                let window = miner.window_dataset();
                let t1 = Instant::now();
                let batch = Miner::new(&window, miner.grid())
                    .params(params.clone())
                    .mine()
                    .expect("batch mining the window succeeds");
                bucket.remine_secs += t1.elapsed().as_secs_f64();
                let identical =
                    miner.topk().len() == batch.patterns.len()
                        && miner.topk().iter().zip(&batch.patterns).all(|(a, b)| {
                            a.pattern == b.pattern && a.nm.to_bits() == b.nm.to_bits()
                        });
                assert!(identical, "stream diverged from batch at event {}", i + 1);
                bucket.identical &= identical;
            }
        }
    }

    let n_seeds = cfg.seeds.len().max(1) as f64;
    let points: Vec<StreamPoint> = buckets
        .iter()
        .enumerate()
        .map(|(b, bk)| {
            let delta_event_secs = if bk.deltas > 0 {
                bk.delta_secs / bk.deltas as f64
            } else {
                0.0
            };
            let remine_secs = bk.remine_secs / n_seeds;
            StreamPoint {
                x: (((b + 1) * cfg.remine_every).min(cfg.events)) as f64,
                delta_event_secs,
                repair_event_secs: if bk.repairs > 0 {
                    bk.repair_secs / bk.repairs as f64
                } else {
                    0.0
                },
                remine_secs,
                speedup_vs_remine: if delta_event_secs > 0.0 {
                    remine_secs / delta_event_secs
                } else {
                    0.0
                },
                deltas: bk.deltas,
                repairs: bk.repairs,
                identical_to_batch: bk.identical,
            }
        })
        .collect();

    let total_delta_secs: f64 = buckets.iter().map(|b| b.delta_secs).sum();
    let total_deltas: u64 = buckets.iter().map(|b| b.deltas).sum();
    let total_remine_secs: f64 = buckets.iter().map(|b| b.remine_secs).sum();
    let n_remines = cfg.seeds.len() * n_buckets;
    let mean_delta_event_secs = if total_deltas > 0 {
        total_delta_secs / total_deltas as f64
    } else {
        0.0
    };
    let mean_remine_secs = if n_remines > 0 {
        total_remine_secs / n_remines as f64
    } else {
        0.0
    };

    StreamThroughputResult {
        axis: "events".into(),
        config: cfg.clone(),
        available_parallelism: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
        points,
        totals: StreamTotals {
            events: total_events,
            repairs: total_repairs,
            repair_rate: if total_events > 0 {
                total_repairs as f64 / total_events as f64
            } else {
                0.0
            },
            mean_delta_event_secs,
            mean_remine_secs,
            speedup_delta_vs_remine: if mean_delta_event_secs > 0.0 {
                mean_remine_secs / mean_delta_event_secs
            } else {
                0.0
            },
            events_per_sec: if total_stream_secs > 0.0 {
                total_events as f64 / total_stream_secs
            } else {
                0.0
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_bench_runs_and_stays_identical() {
        let cfg = StreamBenchConfig {
            events: 18,
            l: 15,
            grid_side: 6,
            k: 4,
            max_len: 4,
            window: 8,
            remine_every: 6,
            seeds: vec![3],
            ..StreamBenchConfig::default()
        };
        let r = run_stream(&cfg);
        assert_eq!(r.axis, "events");
        assert_eq!(r.points.len(), 3);
        assert!(r.points.iter().all(|p| p.identical_to_batch));
        assert_eq!(r.totals.events, 18);
        assert!(r.totals.events_per_sec > 0.0);
        // Bootstrap is excluded from both classes.
        let classified: u64 = r.totals.repairs + r.points.iter().map(|p| p.deltas).sum::<u64>();
        assert_eq!(classified, 17);
    }
}
