//! Sharded live serving experiment (ours): latency of shard-scoped and
//! fan-out top-k reads against a live [`trajfleet::Fleet`], compared to
//! the static single-snapshot server's `/v1/topk` floor.
//!
//! The ZebraNet-style workload is split round-robin into per-shard event
//! logs; the fleet tails them (each shard's ingester drains to `# eof`
//! and publishes its final snapshot), then keep-alive client threads
//! alternate `GET /v1/topk?shard=NAME` (round-robin over shards) and
//! bare `GET /v1/topk` (deterministic cross-shard fan-out, which rebuilds
//! the merge once per epoch and serves the cached document after). A
//! separate phase drives the same request count against a plain
//! [`trajserve::Server`] over the whole dataset mined at once — the
//! static baseline. The headline number is `shard_p50 / static_p50`:
//! shard-scoped reads hit the same pre-serialized-JSON path as the
//! static server plus one `RwLock` read and `Arc` clone, so the ratio
//! should stay within ~2× on one core.

use crate::serve::ServePoint;
use crate::workloads::zebranet_workload;
use serde::Serialize;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};
use trajdata::{eventlog, Dataset, Trajectory};
use trajpattern::{Miner, MiningParams};
use trajserve::{Server, ServerConfig, Snapshot};

/// Configuration of the sharded live serving run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetBenchConfig {
    /// Trajectories in the workload (split across shards).
    pub s: usize,
    /// Trajectory length `L`.
    pub l: usize,
    /// Grid side (G = side²).
    pub grid_side: u32,
    /// Top-k size.
    pub k: usize,
    /// Pattern length cap.
    pub max_len: usize,
    /// Indifference distance δ.
    pub delta: f64,
    /// Shards the workload is split into.
    pub shards: usize,
    /// Sliding-window size per shard (large enough that nothing evicts).
    pub window: u64,
    /// Concurrent keep-alive client threads per phase.
    pub clients: usize,
    /// Requests each client issues per phase.
    pub requests_per_client: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for FleetBenchConfig {
    fn default() -> Self {
        FleetBenchConfig {
            s: 40,
            l: 30,
            grid_side: 10,
            k: 8,
            max_len: 5,
            delta: 0.03,
            shards: 4,
            window: 64,
            clients: 4,
            requests_per_client: 200,
            workers: 2,
            seed: 11,
        }
    }
}

/// Whole-run aggregates and the headline ratio.
#[derive(Debug, Clone, Serialize)]
pub struct FleetTotals {
    /// Requests served across all phases and endpoints.
    pub requests: u64,
    /// Wall time of the fleet client phase.
    pub fleet_wall_secs: f64,
    /// Wall time of the static baseline phase.
    pub static_wall_secs: f64,
    /// `?shard=` p50 divided by static `/v1/topk` p50 — the live shard
    /// router's read-path overhead.
    pub shard_p50_over_static_p50: f64,
    /// Patterns in the static baseline snapshot.
    pub static_snapshot_patterns: usize,
}

/// Result of the sharded live serving experiment.
#[derive(Debug, Clone, Serialize)]
pub struct FleetThroughputResult {
    /// Always "endpoint".
    pub axis: String,
    /// Configuration the run was based on.
    pub config: FleetBenchConfig,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// `static_topk`, `shard_topk`, `fanout_topk` measurements.
    pub points: Vec<ServePoint>,
    /// Whole-run aggregates.
    pub totals: FleetTotals,
}

/// Issues one GET on a kept-alive connection and reads the full response,
/// returning status and body.
fn get_roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    path: &str,
) -> (u16, String) {
    writer
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("request written");
    writer.flush().expect("request flushed");
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("numeric content-length");
        }
    }
    let mut payload = vec![0u8; content_length];
    reader.read_exact(&mut payload).expect("response body");
    (status, String::from_utf8_lossy(&payload).into_owned())
}

/// Drives `clients × requests_per_client` keep-alive GETs against `addr`,
/// picking each request's path with `route(client, request_index)` which
/// also labels which latency bucket (0 or 1) the sample lands in. Returns
/// the two latency vectors (seconds) and the phase wall time.
fn drive<F>(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: usize,
    route: F,
) -> ([Vec<f64>; 2], f64)
where
    F: Fn(usize, usize) -> (String, usize) + Send + Sync + 'static + Clone,
{
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients.max(1))
        .map(|c| {
            let route = route.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("client connects");
                stream.set_nodelay(true).expect("nodelay");
                let mut writer = stream.try_clone().expect("client write half");
                let mut reader = BufReader::new(stream);
                let mut lat: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
                for i in 0..requests_per_client {
                    let (path, bucket) = route(c, i);
                    let t = Instant::now();
                    let (status, _) = get_roundtrip(&mut reader, &mut writer, &path);
                    assert_eq!(status, 200, "request {i} of client {c} ({path}) failed");
                    lat[bucket].push(t.elapsed().as_secs_f64());
                }
                lat
            })
        })
        .collect();
    let mut latencies: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for h in handles {
        let lat = h.join().expect("client thread finishes");
        for (all, part) in latencies.iter_mut().zip(lat) {
            all.extend(part);
        }
    }
    (latencies, t0.elapsed().as_secs_f64())
}

fn summarize(endpoint: &str, lat: &mut [f64], wall_secs: f64) -> ServePoint {
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let n = lat.len();
    let pct = |q: f64| {
        if n == 0 {
            0.0
        } else {
            lat[(((n - 1) as f64) * q).round() as usize] * 1e3
        }
    };
    ServePoint {
        endpoint: endpoint.to_string(),
        requests: n as u64,
        req_per_sec: if wall_secs > 0.0 {
            n as f64 / wall_secs
        } else {
            0.0
        },
        p50_ms: pct(0.5),
        p99_ms: pct(0.99),
        mean_ms: if n > 0 {
            lat.iter().sum::<f64>() / n as f64 * 1e3
        } else {
            0.0
        },
    }
}

/// Polls `/v1/shards` until every shard's published `next_seq` reaches
/// its expected event count.
fn wait_absorbed(addr: SocketAddr, expected: &[(String, u64)]) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stream = TcpStream::connect(addr).expect("poll connects");
        stream.set_nodelay(true).expect("nodelay");
        let mut writer = stream.try_clone().expect("poll write half");
        let mut reader = BufReader::new(stream);
        let (status, body) = get_roundtrip(&mut reader, &mut writer, "/v1/shards");
        assert_eq!(status, 200);
        let doc: serde_json::Value = serde_json::from_str(&body).expect("shards JSON");
        let all = expected.iter().all(|(name, want)| {
            doc["shards"]
                .as_array()
                .expect("shards array")
                .iter()
                .any(|s| {
                    s["name"].as_str() == Some(name.as_str())
                        && s["next_seq"].as_u64() == Some(*want)
                })
        });
        if all {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never absorbed its event logs; last /v1/shards: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Writes one complete event log (version line, events, `# eof`) per
/// shard, splitting `trajs` round-robin, and returns `(name, path)` pairs.
fn write_shard_logs(dir: &Path, trajs: &[Trajectory], shards: usize) -> Vec<(String, String)> {
    (0..shards)
        .map(|s| {
            let slice: Dataset = trajs
                .iter()
                .skip(s)
                .step_by(shards)
                .cloned()
                .collect::<Vec<_>>()
                .into_iter()
                .collect();
            let mut text = eventlog::write_event_log(&slice);
            text.push_str("# eof\n");
            let name = format!("shard{s:02}");
            let path = dir.join(format!("{name}.events"));
            std::fs::write(&path, text).expect("shard log written");
            (name, path.display().to_string())
        })
        .collect()
}

/// Runs the sharded live serving experiment.
pub fn run_fleet(cfg: &FleetBenchConfig) -> FleetThroughputResult {
    assert!(cfg.shards >= 1, "need at least one shard");
    let params = MiningParams::new(cfg.k, cfg.delta)
        .expect("valid params")
        .with_min_len(2)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");
    let w = zebranet_workload(cfg.s, cfg.l, cfg.grid_side, cfg.seed);

    // ---- static baseline: the whole dataset mined once, plain server ----
    let outcome = Miner::new(&w.data, &w.grid)
        .params(params.clone())
        .mine()
        .expect("mining the workload succeeds");
    let snapshot = Snapshot::from_outcome(&outcome, &w.grid, &params);
    let static_snapshot_patterns = snapshot.patterns.len();
    let server = Server::bind(
        snapshot,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: cfg.workers,
            ..ServerConfig::default()
        },
    )
    .expect("static server binds");
    let static_addr = server.local_addr().expect("ephemeral addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());
    let (mut static_lat, static_wall_secs) =
        drive(static_addr, cfg.clients, cfg.requests_per_client, |_, _| {
            ("/v1/topk".to_string(), 0)
        });
    handle.shutdown();
    server_thread
        .join()
        .expect("static server thread finishes")
        .expect("static server drains cleanly");

    // ---- live fleet: per-shard event logs, tailed to eof ----
    let dir = std::env::temp_dir().join(format!(
        "trajfleet-bench-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let logs = write_shard_logs(&dir, w.data.trajectories(), cfg.shards);
    let raw: Vec<String> = logs
        .iter()
        .map(|(name, path)| format!("{name}={path}"))
        .collect();
    let specs = trajfleet::parse_shard_specs(&raw.join(","), None).expect("valid shard specs");
    let expected: Vec<(String, u64)> = logs
        .iter()
        .enumerate()
        .map(|(s, (name, _))| {
            let count = w
                .data
                .trajectories()
                .iter()
                .skip(s)
                .step_by(cfg.shards)
                .count();
            (name.clone(), count as u64)
        })
        .collect();
    let shard_names: Vec<String> = logs.iter().map(|(name, _)| name.clone()).collect();

    let fleet = trajfleet::Fleet::launch(
        specs,
        trajfleet::FleetConfig {
            grid: w.grid.clone(),
            params,
            window: cfg.window,
            poll: Duration::from_millis(2),
            growth_rate: 0.0,
            policy: trajdata::IngestPolicy::Strict,
            dr: Default::default(),
        },
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: cfg.workers,
            ..ServerConfig::default()
        },
    )
    .expect("fleet launches");
    let fleet_addr = fleet.local_addr().expect("ephemeral addr");
    let fleet_handle = fleet.handle();
    let fleet_thread = std::thread::spawn(move || fleet.run());
    wait_absorbed(fleet_addr, &expected);

    // Every client alternates shard-scoped reads (round-robin over the
    // shard set) and bare fan-out reads on one keep-alive connection.
    let names = shard_names.clone();
    let (mut fleet_lat, fleet_wall_secs) = drive(
        fleet_addr,
        cfg.clients,
        cfg.requests_per_client,
        move |c, i| {
            if (c + i) % 2 == 0 {
                let shard = &names[(c + i / 2) % names.len()];
                (format!("/v1/topk?shard={shard}"), 0)
            } else {
                ("/v1/topk".to_string(), 1)
            }
        },
    );
    fleet_handle.shutdown();
    fleet_thread
        .join()
        .expect("fleet thread finishes")
        .expect("fleet drains cleanly");
    std::fs::remove_dir_all(&dir).ok();

    let static_point = summarize("static_topk", &mut static_lat[0], static_wall_secs);
    let shard_point = summarize("shard_topk", &mut fleet_lat[0], fleet_wall_secs);
    let fanout_point = summarize("fanout_topk", &mut fleet_lat[1], fleet_wall_secs);
    let requests = static_point.requests + shard_point.requests + fanout_point.requests;
    let shard_p50_over_static_p50 = if static_point.p50_ms > 0.0 {
        shard_point.p50_ms / static_point.p50_ms
    } else {
        0.0
    };

    FleetThroughputResult {
        axis: "endpoint".into(),
        config: cfg.clone(),
        available_parallelism: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
        points: vec![static_point, shard_point, fanout_point],
        totals: FleetTotals {
            requests,
            fleet_wall_secs,
            static_wall_secs,
            shard_p50_over_static_p50,
            static_snapshot_patterns,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_bench_runs_and_answers_every_request() {
        let cfg = FleetBenchConfig {
            s: 12,
            l: 12,
            grid_side: 6,
            k: 4,
            max_len: 4,
            shards: 2,
            clients: 2,
            requests_per_client: 6,
            workers: 2,
            ..FleetBenchConfig::default()
        };
        let r = run_fleet(&cfg);
        assert_eq!(r.axis, "endpoint");
        assert_eq!(r.points.len(), 3);
        // Two phases of clients × requests each.
        assert_eq!(r.totals.requests, 24);
        assert!(r.points.iter().all(|p| p.p99_ms >= p.p50_ms));
        assert!(r.totals.static_snapshot_patterns > 0);
        assert!(r.totals.shard_p50_over_static_p50 > 0.0);
    }
}
