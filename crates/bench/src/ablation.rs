//! Ablation of the TrajPattern pruning machinery (not in the paper —
//! DESIGN.md calls this out as an extension).
//!
//! The miner has two exact prunings: the weighted-mean candidate bound
//! (derived from the min-max proof) and the 1-extension/τ retention rule
//! (Lemma 1). Both can be disabled independently; the mined top-k is
//! identical in all four configurations (asserted here), only the work
//! changes — which is the point of the paper's §4.1.

use crate::workloads::zebranet_workload;
use serde::Serialize;
use std::time::Instant;
use trajpattern::{mine, MiningParams, MiningStats};

/// One ablation configuration's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Configuration label.
    pub variant: String,
    /// Wall time in seconds.
    pub secs: f64,
    /// Candidates scored against the data.
    pub scored: u64,
    /// Candidates skipped by the bound.
    pub bound_pruned: u64,
    /// Final |Q|.
    pub queue: usize,
}

/// Full ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// Workload descriptor.
    pub workload: String,
    /// The four variants.
    pub rows: Vec<AblationRow>,
    /// Whether all variants returned identical NM sequences.
    pub identical_results: bool,
}

/// Runs the four pruning variants on a ZebraNet workload.
pub fn run(
    s: usize,
    l: usize,
    grid_side: u32,
    k: usize,
    max_len: usize,
    seed: u64,
) -> AblationResult {
    let w = zebranet_workload(s, l, grid_side, seed);
    let base = MiningParams::new(k, 0.03)
        .expect("valid params")
        .with_max_len(max_len)
        .expect("valid params");

    let variants: Vec<(String, bool, bool)> = vec![
        ("bound+1ext (full)".into(), true, true),
        ("bound only".into(), true, false),
        ("1ext only".into(), false, true),
        ("no pruning".into(), false, false),
    ];

    let mut rows = Vec::new();
    let mut reference: Option<Vec<f64>> = None;
    let mut identical = true;
    for (label, bound, one_ext) in variants {
        let mut p = base.clone();
        p.use_bound_prune = bound;
        p.use_one_extension_prune = one_ext;
        let t0 = Instant::now();
        let out = mine(&w.data, &w.grid, &p).expect("mining succeeds");
        let secs = t0.elapsed().as_secs_f64();
        let nms: Vec<f64> = out.patterns.iter().map(|m| m.nm).collect();
        match &reference {
            None => reference = Some(nms),
            Some(r) => {
                if r.len() != nms.len() || r.iter().zip(&nms).any(|(a, b)| (a - b).abs() > 1e-9) {
                    identical = false;
                }
            }
        }
        let MiningStats {
            candidates_scored,
            candidates_bound_pruned,
            final_queue_size,
            ..
        } = out.stats;
        rows.push(AblationRow {
            variant: label,
            secs,
            scored: candidates_scored,
            bound_pruned: candidates_bound_pruned,
            queue: final_queue_size,
        });
    }

    AblationResult {
        workload: format!("zebranet s={s} l={l} grid={grid_side}² k={k} max_len={max_len}"),
        rows,
        identical_results: identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_full_pruning_does_least_work() {
        let r = run(12, 15, 6, 5, 4, 3);
        assert!(r.identical_results, "pruning must not change results");
        assert_eq!(r.rows.len(), 4);
        let full = &r.rows[0];
        let none = &r.rows[3];
        assert!(
            full.scored <= none.scored,
            "full pruning scored {} > unpruned {}",
            full.scored,
            none.scored
        );
    }
}
