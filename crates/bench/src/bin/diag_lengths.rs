//! Diagnostic: inspect the NM/match ranking on the bus velocity workload.

use bench::workloads::{bus_velocity_grid, bus_workload};
use datagen::observe_via_reporting;
use mobility::{LinearModel, ReportingScheme};
use trajpattern::{mine, MiningParams, Scorer};

fn main() {
    let w = bus_workload(100, 11);
    let scheme = ReportingScheme::new(w.uncertainty, w.c, 0.0).unwrap();
    let mut model = LinearModel::new();
    let locations = observe_via_reporting(&w.paths, &mut model, &scheme, 11 ^ 0xf16);
    let velocities = locations.to_velocity().unwrap();
    let grid = bus_velocity_grid();
    let stats = velocities.stats().unwrap();
    println!(
        "velocity data: {} trajs, avg len {:.1}, avg sigma {:.4}",
        stats.num_trajectories, stats.avg_len, stats.avg_sigma
    );

    // Singular landscape.
    let scorer = Scorer::new(&velocities, &grid, 0.005, 1e-12);
    let mut singulars: Vec<(u32, f64)> = scorer
        .nm_all_singulars()
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v))
        .collect();
    singulars.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top singulars (cell center, nm):");
    for (c, v) in singulars.iter().take(8) {
        let p = grid.center(trajgeo::CellId(*c));
        println!("  c{c} ({:+.3},{:+.3})  nm={v:.1}", p.x, p.y);
    }

    let params = MiningParams::new(50, 0.005)
        .unwrap()
        .with_min_len(4)
        .unwrap()
        .with_max_len(8)
        .unwrap();
    let out = mine(&velocities, &grid, &params).unwrap();
    println!(
        "NM top-50 (iters {}, scored {}):",
        out.stats.iterations, out.stats.candidates_scored
    );
    let name = |c: trajgeo::CellId| -> String {
        let p = grid.center(c);
        let lab = |v: f64| -> &'static str {
            if v > 0.015 {
                "F+"
            } else if v > 0.0055 {
                "s+"
            } else if v < -0.015 {
                "F-"
            } else if v < -0.0055 {
                "s-"
            } else {
                "0"
            }
        };
        format!("({},{})", lab(p.x), lab(p.y))
    };
    let show = |cells: &[trajgeo::CellId]| -> String {
        cells.iter().map(|&c| name(c)).collect::<Vec<_>>().join(" ")
    };
    for m in out.patterns.iter().take(50) {
        println!(
            "  len {}  nm {:>7.1}  {}",
            m.pattern.len(),
            m.nm,
            show(m.pattern.cells())
        );
    }
    let mout = baselines::mine_match(&velocities, &grid, &params).unwrap();
    println!("match top-50:");
    for m in mout.patterns.iter().take(50) {
        println!(
            "  len {}  match {:>7.2}  {}",
            m.pattern.len(),
            m.match_value,
            show(m.pattern.cells())
        );
    }
}
