//! Streaming throughput experiment: incremental sliding-window top-k
//! maintenance vs re-mining the window on every event.
//!
//! Usage: `cargo run -p bench --release --bin exp_stream [--quick]`.
//! Writes `results/stream_throughput.json` (the `fig4_threads`-style
//! report envelope) and `results/stream_throughput.dat`.

use bench::report::{fmt_secs, row, write_dat, write_json};
use bench::stream::{run_stream, StreamBenchConfig, StreamThroughputResult};

fn print_result(r: &StreamThroughputResult) {
    println!(
        "=== streaming throughput: window {} over {} events (host reports {} core(s)) ===",
        r.config.window, r.config.events, r.available_parallelism
    );
    let widths = [8, 14, 14, 14, 10, 8, 8];
    println!(
        "{}",
        row(
            &[
                "event".into(),
                "delta/event".into(),
                "repair/event".into(),
                "re-mine".into(),
                "speedup".into(),
                "deltas".into(),
                "repairs".into(),
            ],
            &widths
        )
    );
    for p in &r.points {
        println!(
            "{}",
            row(
                &[
                    format!("{}", p.x),
                    fmt_secs(p.delta_event_secs),
                    if p.repairs > 0 {
                        fmt_secs(p.repair_event_secs)
                    } else {
                        "-".into()
                    },
                    fmt_secs(p.remine_secs),
                    format!("{:.1}x", p.speedup_vs_remine),
                    p.deltas.to_string(),
                    p.repairs.to_string(),
                ],
                &widths
            )
        );
    }
    let t = &r.totals;
    println!(
        "totals: {} events, {} repairs (rate {:.3}), {:.0} events/s",
        t.events, t.repairs, t.repair_rate, t.events_per_sec
    );
    println!(
        "delta path {} per event vs re-mine {} — {:.1}x faster",
        fmt_secs(t.mean_delta_event_secs),
        fmt_secs(t.mean_remine_secs),
        t.speedup_delta_vs_remine
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        StreamBenchConfig {
            events: 40,
            l: 20,
            grid_side: 8,
            k: 6,
            max_len: 4,
            window: 12,
            remine_every: 8,
            seeds: vec![7],
            ..StreamBenchConfig::default()
        }
    } else {
        StreamBenchConfig::default()
    };

    let r = run_stream(&cfg);
    print_result(&r);

    let json = write_json("stream_throughput", &r).expect("write results");
    let rows: Vec<Vec<f64>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.x,
                p.delta_event_secs,
                p.repair_event_secs,
                p.remine_secs,
                p.speedup_vs_remine,
                p.deltas as f64,
                p.repairs as f64,
            ]
        })
        .collect();
    let dat = write_dat(
        "stream_throughput",
        &[
            "event",
            "delta_event_secs",
            "repair_event_secs",
            "remine_secs",
            "speedup_vs_remine",
            "deltas",
            "repairs",
        ],
        &rows,
    )
    .expect("write results");
    eprintln!("wrote {json} and {dat}");
}
