//! Regenerates Fig. 4(a)–(d): TrajPattern vs PB response times across the
//! four scalability axes.
//!
//! Usage: `cargo run -p bench --release --bin exp_fig4 [--quick] [--axis k|s|l|g]
//! [--threads N,N,…]`. No `--axis` runs all four panels; `--threads` runs
//! the scorer thread-scaling sweep instead (written to `fig4_threads`).

use bench::fig4::{
    sweep_g, sweep_k, sweep_l, sweep_s, sweep_threads, Fig4Config, SweepResult, ThreadsSweepResult,
};
use bench::report::{fmt_secs, row, write_dat, write_json};

fn print_sweep(r: &SweepResult) {
    println!(
        "=== Fig. 4({}): response time vs {} ===",
        panel(&r.axis),
        r.axis
    );
    let widths = [8, 14, 14, 12, 14, 6];
    println!(
        "{}",
        row(
            &[
                r.axis.clone(),
                "TrajPattern".into(),
                "PB".into(),
                "tp_scored".into(),
                "pb_prefixes".into(),
                "note".into()
            ],
            &widths
        )
    );
    for p in &r.points {
        println!(
            "{}",
            row(
                &[
                    format!("{}", p.x),
                    fmt_secs(p.trajpattern_secs),
                    fmt_secs(p.pb_secs),
                    p.tp_scored.to_string(),
                    p.pb_prefixes.to_string(),
                    if p.pb_truncated { "trunc" } else { "" }.into(),
                ],
                &widths
            )
        );
    }
}

fn print_threads_sweep(r: &ThreadsSweepResult) {
    println!(
        "=== scorer thread scaling (host reports {} core(s)) ===",
        r.available_parallelism
    );
    let widths = [8, 14, 10, 12, 10];
    println!(
        "{}",
        row(
            &[
                "threads".into(),
                "TrajPattern".into(),
                "speedup".into(),
                "tp_scored".into(),
                "identical".into()
            ],
            &widths
        )
    );
    for p in &r.points {
        println!(
            "{}",
            row(
                &[
                    p.threads.to_string(),
                    fmt_secs(p.trajpattern_secs),
                    format!("{:.2}x", p.speedup_vs_one),
                    p.tp_scored.to_string(),
                    if p.identical_to_sequential {
                        "yes"
                    } else {
                        "NO"
                    }
                    .into(),
                ],
                &widths
            )
        );
    }
}

fn panel(axis: &str) -> &'static str {
    match axis {
        "k" => "a",
        "S" => "b",
        "L" => "c",
        _ => "d",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let axis = args
        .iter()
        .position(|a| a == "--axis")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());

    let threads: Option<Vec<usize>> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--threads takes N,N,…"))
                .collect()
        });

    let cfg = Fig4Config::default();

    if let Some(counts) = threads {
        eprintln!("running fig4 thread-scaling sweep…");
        let mut cfg = cfg;
        if quick {
            cfg.s = 30;
            cfg.l = 20;
        }
        let r = sweep_threads(&cfg, &counts);
        print_threads_sweep(&r);
        match write_json("fig4_threads", &r) {
            Ok(path) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write results: {e}"),
        }
        return;
    }

    let (ks, ss, ls, gs): (Vec<usize>, Vec<usize>, Vec<usize>, Vec<u32>) = if quick {
        (vec![5, 10], vec![30, 60], vec![20, 40], vec![8, 12])
    } else {
        (
            vec![5, 10, 20, 40, 80],
            vec![30, 60, 120, 240],
            vec![20, 40, 80, 160],
            vec![8, 12, 16, 24],
        )
    };

    let run_axis = |name: &str| -> Option<SweepResult> {
        match name {
            "k" => Some(sweep_k(&cfg, &ks)),
            "s" => Some(sweep_s(&cfg, &ss)),
            "l" => Some(sweep_l(&cfg, &ls)),
            "g" => Some(sweep_g(&cfg, &gs)),
            other => {
                eprintln!("unknown axis {other}; use k, s, l or g");
                None
            }
        }
    };

    let axes: Vec<String> = match axis {
        Some(a) => vec![a],
        None => vec!["k".into(), "s".into(), "l".into(), "g".into()],
    };

    let mut results = Vec::new();
    for a in axes {
        eprintln!("running fig4 axis {a}…");
        if let Some(r) = run_axis(&a) {
            print_sweep(&r);
            let rows: Vec<Vec<f64>> = r
                .points
                .iter()
                .map(|p| vec![p.x, p.trajpattern_secs, p.pb_secs])
                .collect();
            match write_dat(
                &format!("fig4{}", panel(&r.axis)),
                &["x", "trajpattern_secs", "pb_secs"],
                &rows,
            ) {
                Ok(path) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("could not write dat: {e}"),
            }
            results.push(r);
        }
    }
    println!(
        "paper: TrajPattern scales ~quadratically in k and linearly in S, L, G; \
         PB grows super-linearly in k and S and exponentially in G"
    );

    match write_json("fig4", &results) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
