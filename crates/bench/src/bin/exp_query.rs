//! Probabilistic query throughput experiment: latency of `trajquery`
//! prange / pnn with the σ-expanded-bbox index versus the brute scan.
//!
//! Usage: `cargo run -p bench --release --bin exp_query [--quick]`.
//! Writes `results/query_throughput.json` and
//! `results/query_throughput.dat`.

use bench::query::{run_query, QueryBenchConfig, QueryThroughputResult};
use bench::report::{row, write_dat, write_json};

fn print_result(r: &QueryThroughputResult) {
    println!(
        "=== query throughput: {} objects x {} snapshots, {} queries/route (host reports {} core(s)) ===",
        r.config.objects, r.config.l, r.config.queries, r.available_parallelism
    );
    let widths = [14, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "route".into(),
                "queries".into(),
                "qps".into(),
                "p50".into(),
                "p99".into(),
                "mean".into(),
            ],
            &widths
        )
    );
    for p in &r.points {
        println!(
            "{}",
            row(
                &[
                    p.route.clone(),
                    p.queries.to_string(),
                    format!("{:.0}", p.qps),
                    format!("{:.3}ms", p.p50_ms),
                    format!("{:.3}ms", p.p99_ms),
                    format!("{:.3}ms", p.mean_ms),
                ],
                &widths
            )
        );
    }
    println!(
        "index speedup: prange {:.1}x, pnn {:.1}x ({} range matches across the batch)",
        r.prange_speedup, r.pnn_speedup, r.prange_matches
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        QueryBenchConfig {
            objects: 500,
            queries: 50,
            ..QueryBenchConfig::default()
        }
    } else {
        QueryBenchConfig::default()
    };

    let r = run_query(&cfg);
    print_result(&r);

    let json = write_json("query_throughput", &r).expect("write results");
    let rows: Vec<Vec<f64>> = r
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                i as f64,
                p.queries as f64,
                p.qps,
                p.p50_ms,
                p.p99_ms,
                p.mean_ms,
            ]
        })
        .collect();
    let dat = write_dat(
        "query_throughput",
        &[
            "route_index",
            "queries",
            "qps",
            "p50_ms",
            "p99_ms",
            "mean_ms",
        ],
        &rows,
    )
    .expect("write results");
    eprintln!("wrote {json} and {dat}");
}
