//! Regenerates Fig. 3: mis-prediction reduction for LM / LKF / RMF with
//! NM patterns vs match patterns.
//!
//! Usage: `cargo run -p bench --release --bin exp_fig3 [--quick]`

use bench::fig3::{run, Fig3Config};
use bench::report::{row, write_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = if quick {
        Fig3Config {
            traces: 100,
            train: 85,
            ..Fig3Config::default()
        }
    } else {
        Fig3Config::default()
    };
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--k") {
        if let Some(k) = args.get(i + 1).and_then(|v| v.parse().ok()) {
            cfg.k = k;
        }
    }
    // The paper's figure reports the reduction for the mined top-k set;
    // sweep k so the curve shape is visible.
    let ks: Vec<usize> = if args.iter().any(|a| a == "--k") {
        vec![cfg.k]
    } else if quick {
        vec![100, 400]
    } else {
        vec![100, 200, 400]
    };

    let mut results = Vec::new();
    for k in ks {
        cfg.k = k;
        eprintln!(
            "fig3: {} traces ({} train), k={}, min_len={}, confirm={}",
            cfg.traces, cfg.train, cfg.k, cfg.min_len, cfg.confirm
        );
        let result = run(&cfg);

        println!("=== Fig. 3 (k={k}): ratio of reduced mis-predictions (bus traces) ===");
        println!(
            "mined: {} NM patterns (avg len {:.2}), {} match patterns (avg len {:.2})",
            result.nm_patterns, result.nm_avg_len, result.match_patterns, result.match_avg_len
        );
        let widths = [6, 8, 8, 10, 12];
        println!(
            "{}",
            row(
                &["model", "measure", "base", "assisted", "reduction"].map(String::from),
                &widths
            )
        );
        for r in &result.rows {
            println!(
                "{}",
                row(
                    &[
                        r.model.clone(),
                        r.measure.clone(),
                        r.base.to_string(),
                        r.assisted.to_string(),
                        format!("{:.1}%", r.reduction * 100.0),
                    ],
                    &widths
                )
            );
        }
        results.push(result);
    }
    println!("paper: NM reduces mis-predictions by 20-40%, match by 10-20%, for all three models");

    match write_json("fig3", &results) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
