//! Serving throughput experiment: request rate and tail latency of the
//! `trajserve` HTTP server over a mined snapshot.
//!
//! Usage: `cargo run -p bench --release --bin exp_serve [--quick]`.
//! Writes `results/serve_throughput.json` and
//! `results/serve_throughput.dat`.

use bench::report::{row, write_dat, write_json};
use bench::serve::{run_serve, ServeBenchConfig, ServeThroughputResult};

fn print_result(r: &ServeThroughputResult) {
    println!(
        "=== serving throughput: {} clients x {} requests, {} workers (host reports {} core(s)) ===",
        r.config.clients,
        r.config.requests_per_client,
        r.config.workers,
        r.available_parallelism
    );
    let widths = [8, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "endpoint".into(),
                "requests".into(),
                "req/s".into(),
                "p50".into(),
                "p99".into(),
                "mean".into(),
            ],
            &widths
        )
    );
    for p in &r.points {
        println!(
            "{}",
            row(
                &[
                    p.endpoint.clone(),
                    p.requests.to_string(),
                    format!("{:.0}", p.req_per_sec),
                    format!("{:.2}ms", p.p50_ms),
                    format!("{:.2}ms", p.p99_ms),
                    format!("{:.2}ms", p.mean_ms),
                ],
                &widths
            )
        );
    }
    let t = &r.totals;
    println!(
        "totals: {} requests in {:.2}s — {:.0} req/s over a {}-pattern snapshot",
        t.requests, t.wall_secs, t.req_per_sec, t.snapshot_patterns
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        ServeBenchConfig {
            s: 20,
            l: 20,
            grid_side: 8,
            k: 6,
            max_len: 4,
            clients: 2,
            requests_per_client: 50,
            ..ServeBenchConfig::default()
        }
    } else {
        ServeBenchConfig::default()
    };

    let r = run_serve(&cfg);
    print_result(&r);

    let json = write_json("serve_throughput", &r).expect("write results");
    let rows: Vec<Vec<f64>> = r
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                i as f64,
                p.requests as f64,
                p.req_per_sec,
                p.p50_ms,
                p.p99_ms,
                p.mean_ms,
            ]
        })
        .collect();
    let dat = write_dat(
        "serve_throughput",
        &[
            "endpoint_index",
            "requests",
            "req_per_sec",
            "p50_ms",
            "p99_ms",
            "mean_ms",
        ],
        &rows,
    )
    .expect("write results");
    eprintln!("wrote {json} and {dat}");
}
