//! Diagnostic: how often does the pattern library fire during the Fig. 3
//! evaluation, and how accurate are its overrides?
//!
//! Usage: `cargo run -p bench --release --bin diag_fig3 [k]`

use bench::workloads::{bus_velocity_grid, bus_workload};
use datagen::observe_via_reporting;
use mobility::{LinearModel, ReportingScheme};
use prediction::{evaluate_paths_detailed, PatternLibrary};
use trajpattern::{mine, MiningParams};

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let w = bus_workload(100, 11);
    let scheme = ReportingScheme::new(w.uncertainty, w.c, 0.0).unwrap();
    let (train, test) = w.paths.split_at(85);

    let mut observe_model = LinearModel::new();
    let locations = observe_via_reporting(train, &mut observe_model, &scheme, 11 ^ 0xf13);
    let velocities = locations.to_velocity().unwrap();
    let grid = bus_velocity_grid();
    let params = MiningParams::new(k, 0.005)
        .unwrap()
        .with_min_len(4)
        .unwrap()
        .with_max_len(8)
        .unwrap();
    let nm_out = mine(&velocities, &grid, &params).unwrap();
    let lib =
        PatternLibrary::new(nm_out.patterns.clone(), grid.clone(), 0.005, 1e-12, 0.9).unwrap();

    let mut model = LinearModel::new();
    let (result, stats) = evaluate_paths_detailed(test, &mut model, &scheme, &lib);
    println!(
        "base {} -> assisted {} ({:.1}% reduction)",
        result.base_mispredictions,
        result.assisted_mispredictions,
        result.reduction() * 100.0
    );
    println!(
        "fires {} (correct {}), at model-wrong steps {}, saved {}, hurt {} (net {:+})",
        stats.fires,
        stats.fires_correct,
        stats.fires_at_model_errors,
        stats.saved,
        stats.hurt,
        stats.net_saved()
    );
    let mut hist = std::collections::BTreeMap::new();
    for m in &nm_out.patterns {
        *hist.entry(m.pattern.len()).or_insert(0) += 1;
    }
    println!("NM pattern lengths: {hist:?}");
}
