//! Regenerates the §6.1 pattern-length statistic: average length of the
//! top-k NM patterns vs top-k match patterns (length ≥ 3).
//!
//! Usage: `cargo run -p bench --release --bin exp_lengths [--quick]`

use bench::lengths::{run, LengthsConfig};
use bench::report::write_json;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        LengthsConfig {
            traces: 100,
            k: 100,
            max_len: 8,
            ..LengthsConfig::default()
        }
    } else {
        LengthsConfig::default()
    };

    eprintln!(
        "lengths: {} traces, k={}, min_len={}, max_len={}",
        cfg.traces, cfg.k, cfg.min_len, cfg.max_len
    );
    let result = run(&cfg);

    println!("=== §6.1 pattern-length statistic (bus velocity trajectories) ===");
    println!(
        "top-{} NM    patterns (len ≥ {}): {} mined, avg length {:.2}",
        result.config.k, result.config.min_len, result.nm_count, result.nm_avg_len
    );
    println!(
        "top-{} match patterns (len ≥ {}): {} mined, avg length {:.2}",
        result.config.k, result.config.min_len, result.match_count, result.match_avg_len
    );
    println!("paper: NM ≈ 4.2, match ≈ 3.18 — NM patterns are substantially longer");

    match write_json("lengths", &result) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
