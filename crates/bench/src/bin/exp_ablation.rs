//! Pruning ablation: how much work the weighted-mean bound and the
//! 1-extension rule save (an extension beyond the paper, see DESIGN.md).
//!
//! Usage: `cargo run -p bench --release --bin exp_ablation [--quick]`

use bench::ablation::run;
use bench::report::{fmt_secs, row, write_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let result = if quick {
        run(20, 20, 8, 6, 5, 7)
    } else {
        run(60, 40, 12, 10, 6, 7)
    };

    println!("=== Pruning ablation ({}) ===", result.workload);
    let widths = [20, 10, 10, 14, 8];
    println!(
        "{}",
        row(
            &[
                "variant".into(),
                "time".into(),
                "scored".into(),
                "bound_pruned".into(),
                "|Q|".into()
            ],
            &widths
        )
    );
    for r in &result.rows {
        println!(
            "{}",
            row(
                &[
                    r.variant.clone(),
                    fmt_secs(r.secs),
                    r.scored.to_string(),
                    r.bound_pruned.to_string(),
                    r.queue.to_string(),
                ],
                &widths
            )
        );
    }
    println!(
        "identical results across variants: {}",
        result.identical_results
    );
    assert!(result.identical_results, "pruning must be exact");

    match write_json("ablation", &result) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
