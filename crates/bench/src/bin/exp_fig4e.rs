//! Regenerates Fig. 4(e): number of pattern groups vs the indifference
//! threshold δ.
//!
//! Usage: `cargo run -p bench --release --bin exp_fig4e [--quick]`

use bench::fig4e::{sweep_delta, Fig4eConfig};
use bench::report::{row, write_dat, write_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = Fig4eConfig::default();
    let deltas: Vec<f64> = if quick {
        vec![0.01, 0.04, 0.08]
    } else {
        vec![0.01, 0.02, 0.03, 0.05, 0.08, 0.12]
    };

    eprintln!(
        "fig4e: s={}, l={}, grid={}², k={}, gamma={}",
        cfg.s, cfg.l, cfg.grid_side, cfg.k, cfg.gamma
    );
    let result = sweep_delta(&cfg, &deltas);

    println!("=== Fig. 4(e): pattern groups vs indifference threshold δ ===");
    let widths = [8, 10, 8];
    println!(
        "{}",
        row(
            &["delta".into(), "patterns".into(), "groups".into()],
            &widths
        )
    );
    for p in &result.points {
        println!(
            "{}",
            row(
                &[
                    format!("{}", p.delta),
                    p.patterns.to_string(),
                    p.groups.to_string()
                ],
                &widths
            )
        );
    }
    println!("paper: the number of discovered pattern groups decreases as δ grows");

    let rows: Vec<Vec<f64>> = result
        .points
        .iter()
        .map(|p| vec![p.delta, p.groups as f64])
        .collect();
    match write_dat("fig4e", &["delta", "groups"], &rows) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write dat: {e}"),
    }
    match write_json("fig4e", &result) {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}
