//! Sharded live serving experiment: shard-scoped and fan-out top-k read
//! latency against a live `trajfleet` fleet vs the static server floor.
//!
//! Usage: `cargo run -p bench --release --bin exp_fleet [--quick]`.
//! Writes `results/fleet_throughput.json` and
//! `results/fleet_throughput.dat`.

use bench::fleet::{run_fleet, FleetBenchConfig, FleetThroughputResult};
use bench::report::{row, write_dat, write_json};

fn print_result(r: &FleetThroughputResult) {
    println!(
        "=== sharded live serving: {} shards, {} clients x {} requests/phase, {} workers (host reports {} core(s)) ===",
        r.config.shards,
        r.config.clients,
        r.config.requests_per_client,
        r.config.workers,
        r.available_parallelism
    );
    let widths = [12, 10, 10, 10, 10, 10];
    println!(
        "{}",
        row(
            &[
                "endpoint".into(),
                "requests".into(),
                "req/s".into(),
                "p50".into(),
                "p99".into(),
                "mean".into(),
            ],
            &widths
        )
    );
    for p in &r.points {
        println!(
            "{}",
            row(
                &[
                    p.endpoint.clone(),
                    p.requests.to_string(),
                    format!("{:.0}", p.req_per_sec),
                    format!("{:.2}ms", p.p50_ms),
                    format!("{:.2}ms", p.p99_ms),
                    format!("{:.2}ms", p.mean_ms),
                ],
                &widths
            )
        );
    }
    let t = &r.totals;
    println!(
        "totals: {} requests ({:.2}s static + {:.2}s fleet) — shard p50 / static p50 = {:.2}x over a {}-pattern baseline snapshot",
        t.requests,
        t.static_wall_secs,
        t.fleet_wall_secs,
        t.shard_p50_over_static_p50,
        t.static_snapshot_patterns
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        FleetBenchConfig {
            s: 20,
            l: 20,
            grid_side: 8,
            k: 6,
            max_len: 4,
            shards: 2,
            clients: 2,
            requests_per_client: 50,
            ..FleetBenchConfig::default()
        }
    } else {
        FleetBenchConfig::default()
    };

    let r = run_fleet(&cfg);
    print_result(&r);

    let json = write_json("fleet_throughput", &r).expect("write results");
    let rows: Vec<Vec<f64>> = r
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                i as f64,
                p.requests as f64,
                p.req_per_sec,
                p.p50_ms,
                p.p99_ms,
                p.mean_ms,
            ]
        })
        .collect();
    let dat = write_dat(
        "fleet_throughput",
        &[
            "endpoint_index",
            "requests",
            "req_per_sec",
            "p50_ms",
            "p99_ms",
            "mean_ms",
        ],
        &rows,
    )
    .expect("write results");
    eprintln!("wrote {json} and {dat}");
}
