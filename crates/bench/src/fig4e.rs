//! Fig. 4(e): number of discovered pattern groups vs the indifference
//! threshold δ.
//!
//! "The number of discovered pattern groups decreases with the growth of
//! the indifferent threshold δ … the more similar patterns will be found
//! from the same set of trajectories. Because the number of patterns to
//! mine is determined, the number of pattern groups becomes smaller when
//! δ becomes larger."

use crate::workloads::zebranet_workload;
use serde::Serialize;
use trajpattern::{mine, MiningParams};

/// Configuration of the δ sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4eConfig {
    /// Trajectories.
    pub s: usize,
    /// Trajectory length.
    pub l: usize,
    /// Grid side.
    pub grid_side: u32,
    /// Patterns to mine per point.
    pub k: usize,
    /// Pattern length cap.
    pub max_len: usize,
    /// Baseline similar-pattern distance (§5 suggests 3σ); the effective
    /// γ per point is `gamma + 2δ`, since two pattern positions that are
    /// both within δ of the same location can sit up to 2δ apart while
    /// being observationally indistinguishable.
    pub gamma: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Fig4eConfig {
    fn default() -> Self {
        Fig4eConfig {
            s: 60,
            l: 40,
            grid_side: 12,
            k: 100,
            max_len: 6,
            gamma: 0.05,
            seed: 7,
        }
    }
}

/// One δ point.
#[derive(Debug, Clone, Serialize)]
pub struct DeltaPoint {
    /// The indifference threshold δ.
    pub delta: f64,
    /// Patterns mined (= k unless fewer exist).
    pub patterns: usize,
    /// Pattern groups discovered.
    pub groups: usize,
}

/// The full sweep result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4eResult {
    /// Configuration used.
    pub config: Fig4eConfig,
    /// Measured points (δ ascending).
    pub points: Vec<DeltaPoint>,
}

/// Runs the δ sweep.
pub fn sweep_delta(cfg: &Fig4eConfig, deltas: &[f64]) -> Fig4eResult {
    let w = zebranet_workload(cfg.s, cfg.l, cfg.grid_side, cfg.seed);
    let points = deltas
        .iter()
        .map(|&delta| {
            let params = MiningParams::new(cfg.k, delta)
                .expect("valid params")
                .with_max_len(cfg.max_len)
                .expect("valid params")
                .with_gamma(cfg.gamma + 2.0 * delta)
                .expect("valid params");
            let out = mine(&w.data, &w.grid, &params).expect("mining succeeds");
            DeltaPoint {
                delta,
                patterns: out.patterns.len(),
                groups: out.groups.len(),
            }
        })
        .collect();
    Fig4eResult {
        config: cfg.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_groups() {
        let cfg = Fig4eConfig {
            s: 12,
            l: 15,
            grid_side: 6,
            k: 8,
            max_len: 3,
            gamma: 0.25,
            seed: 3,
        };
        let r = sweep_delta(&cfg, &[0.02, 0.08]);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(p.patterns > 0);
            assert!(p.groups >= 1 && p.groups <= p.patterns);
        }
    }
}
