//! Result persistence and table printing shared by the `exp_*` binaries.
//!
//! Experiments write three artifact kinds under `results/`:
//! pretty JSON (the full structured result), gnuplot-ready `.dat` series
//! (via [`write_dat`]), and the human-readable tables printed to stdout.

use serde::Serialize;
use std::path::Path;

/// Writes `value` as pretty JSON to `results/<name>.json` (creating the
/// directory) and returns the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("experiment results serialize");
    trajio::write_atomic(&path, &json)
        .map_err(|e| std::io::Error::other(format!("{}: {}", e.path.display(), e.message)))?;
    Ok(path.display().to_string())
}

/// Writes a whitespace-separated data file under `results/<name>.dat` for
/// gnuplot/pgfplots consumption: one comment header line naming the
/// columns, then one row per point. Returns the path written.
pub fn write_dat(name: &str, columns: &[&str], rows: &[Vec<f64>]) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.dat"));
    let mut out = String::new();
    out.push('#');
    for c in columns {
        out.push(' ');
        out.push_str(c);
    }
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.6e}")).collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    trajio::write_atomic(&path, &out)
        .map_err(|e| std::io::Error::other(format!("{}: {}", e.path.display(), e.message)))?;
    Ok(path.display().to_string())
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Formats a duration in seconds with adaptive precision.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 0.001 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_aligns() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0000005), "0.5µs");
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(2.0), "2.00s");
    }

    #[test]
    fn dat_file_has_header_and_rows() {
        let dir = std::env::temp_dir().join(format!("report-dat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_dat(
            "unit_test_series",
            &["x", "tp", "pb"],
            &[vec![1.0, 0.5, 2.0], vec![2.0, 0.75, 4.0]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# x tp pb");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1.0"));
        let fields: Vec<&str> = lines[2].split_whitespace().collect();
        assert_eq!(fields.len(), 3);
    }
}
