//! Fig. 4(a)–(d): scalability of TrajPattern vs the PB baseline.
//!
//! Four sweeps over the ZebraNet-style workload, one per paper panel:
//!
//! - (a) response time vs `k` (number of patterns wanted);
//! - (b) response time vs `S` (number of trajectories);
//! - (c) response time vs `L` (average trajectory length);
//! - (d) response time vs `G` (number of grid cells).
//!
//! The paper's qualitative result: TrajPattern grows slowly (quadratic in
//! k, linear in S, L and G) while PB grows super-linearly in k and S and
//! exponentially in G. Both miners are exact, so their outputs must agree
//! whenever PB completes within budget — the sweep asserts this.

use crate::workloads::zebranet_workload;
use baselines::pb::mine_pb_budgeted;
use serde::Serialize;
use std::time::Instant;
use trajdata::Dataset;
use trajgeo::Grid;
use trajpattern::{mine, MiningParams};

/// Base configuration shared by the four sweeps.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Config {
    /// Baseline number of trajectories `S`.
    pub s: usize,
    /// Baseline trajectory length `L`.
    pub l: usize,
    /// Baseline grid side (G = side²).
    pub grid_side: u32,
    /// Baseline `k`.
    pub k: usize,
    /// Pattern length cap.
    pub max_len: usize,
    /// Indifference distance δ.
    pub delta: f64,
    /// PB prefix-scoring budget (None = unbounded).
    pub pb_budget: Option<u64>,
    /// Workload seeds: each sweep point is measured once per seed and the
    /// times averaged (different seeds give different herd routes, which
    /// otherwise makes the curves noisy).
    pub seeds: Vec<u64>,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            s: 60,
            l: 40,
            grid_side: 12,
            k: 10,
            max_len: 6,
            delta: 0.03,
            pb_budget: Some(3_000_000),
            seeds: vec![7, 8, 9],
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The sweep variable's value at this point.
    pub x: f64,
    /// TrajPattern wall time in seconds.
    pub trajpattern_secs: f64,
    /// PB wall time in seconds.
    pub pb_secs: f64,
    /// Candidates TrajPattern actually scored.
    pub tp_scored: u64,
    /// Prefixes PB scored.
    pub pb_prefixes: u64,
    /// Whether PB hit its budget (its time is then a lower bound).
    pub pb_truncated: bool,
    /// Whether the two miners returned identical NM sequences (always
    /// true unless PB was truncated).
    pub agree: bool,
}

/// A complete sweep (one figure panel).
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    /// Sweep axis name: "k", "S", "L" or "G".
    pub axis: String,
    /// Configuration the sweep was based on.
    pub config: Fig4Config,
    /// The measured points.
    pub points: Vec<SweepPoint>,
}

/// Measures one (workload, k) pair once.
fn measure_once(data: &Dataset, grid: &Grid, k: usize, cfg: &Fig4Config, x: f64) -> SweepPoint {
    let params = MiningParams::new(k, cfg.delta)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");

    let t0 = Instant::now();
    let tp = mine(data, grid, &params).expect("mining succeeds");
    let trajpattern_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let pb = mine_pb_budgeted(data, grid, &params, cfg.pb_budget).expect("mining succeeds");
    let pb_secs = t1.elapsed().as_secs_f64();

    let agree = pb.stats.truncated
        || (tp.patterns.len() == pb.patterns.len()
            && tp
                .patterns
                .iter()
                .zip(&pb.patterns)
                .all(|(a, b)| (a.nm - b.nm).abs() < 1e-9));
    if !pb.stats.truncated {
        assert!(agree, "exact miners disagreed at x = {x}");
    }

    SweepPoint {
        x,
        trajpattern_secs,
        pb_secs,
        tp_scored: tp.stats.candidates_scored,
        pb_prefixes: pb.stats.prefixes_scored,
        pb_truncated: pb.stats.truncated,
        agree,
    }
}

/// Averages the measurement over the configured seeds. `make_workload`
/// receives each seed in turn.
fn run_point<F>(cfg: &Fig4Config, k: usize, x: f64, make_workload: F) -> SweepPoint
where
    F: Fn(u64) -> crate::workloads::ScalabilityWorkload,
{
    let mut acc: Option<SweepPoint> = None;
    let n = cfg.seeds.len().max(1) as f64;
    for &seed in &cfg.seeds {
        let w = make_workload(seed);
        let p = measure_once(&w.data, &w.grid, k, cfg, x);
        acc = Some(match acc {
            None => p,
            Some(mut a) => {
                a.trajpattern_secs += p.trajpattern_secs;
                a.pb_secs += p.pb_secs;
                a.tp_scored += p.tp_scored;
                a.pb_prefixes += p.pb_prefixes;
                a.pb_truncated |= p.pb_truncated;
                a.agree &= p.agree;
                a
            }
        });
    }
    let mut p = acc.expect("at least one seed");
    p.trajpattern_secs /= n;
    p.pb_secs /= n;
    p.tp_scored = (p.tp_scored as f64 / n) as u64;
    p.pb_prefixes = (p.pb_prefixes as f64 / n) as u64;
    p
}

/// One point of the scorer thread-scaling sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadsPoint {
    /// Scorer worker-thread count (`0` = auto).
    pub threads: usize,
    /// TrajPattern wall time in seconds (averaged over seeds).
    pub trajpattern_secs: f64,
    /// Wall-clock speedup relative to the 1-thread point.
    pub speedup_vs_one: f64,
    /// Candidates scored (identical across thread counts by construction).
    pub tp_scored: u64,
    /// Whether the mined patterns and NM values were bit-identical to the
    /// sequential run (must always hold; recorded as evidence).
    pub identical_to_sequential: bool,
}

/// Result of the thread-scaling sweep (the `--threads` panel).
#[derive(Debug, Clone, Serialize)]
pub struct ThreadsSweepResult {
    /// Always "threads".
    pub axis: String,
    /// Configuration the sweep was based on.
    pub config: Fig4Config,
    /// Cores the host reports — speedup is bounded by this, so a
    /// single-core machine honestly records ~1× for every thread count.
    pub available_parallelism: usize,
    /// The measured points.
    pub points: Vec<ThreadsPoint>,
}

/// Sweeps the scorer worker-thread count on the baseline (S, L, G)
/// workload, timing TrajPattern mining only (PB's runtime is unaffected
/// by this knob at its defaults). Every point's output is checked
/// bit-identical to the sequential run.
pub fn sweep_threads(cfg: &Fig4Config, thread_counts: &[usize]) -> ThreadsSweepResult {
    let params = MiningParams::new(cfg.k, cfg.delta)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");

    let workloads: Vec<crate::workloads::ScalabilityWorkload> = cfg
        .seeds
        .iter()
        .map(|&seed| zebranet_workload(cfg.s, cfg.l, cfg.grid_side, seed))
        .collect();
    let references: Vec<_> = workloads
        .iter()
        .map(|w| mine(&w.data, &w.grid, &params).expect("mining succeeds"))
        .collect();

    let n = cfg.seeds.len().max(1) as f64;
    let mut points: Vec<ThreadsPoint> = thread_counts
        .iter()
        .map(|&threads| {
            let tparams = params.clone().with_threads(threads).expect("valid params");
            let mut secs = 0.0;
            let mut scored = 0u64;
            let mut identical = true;
            for (w, reference) in workloads.iter().zip(&references) {
                let t0 = Instant::now();
                let out = mine(&w.data, &w.grid, &tparams).expect("mining succeeds");
                secs += t0.elapsed().as_secs_f64();
                scored += out.stats.candidates_scored;
                identical &=
                    out.patterns.len() == reference.patterns.len()
                        && out.patterns.iter().zip(&reference.patterns).all(|(a, b)| {
                            a.pattern == b.pattern && a.nm.to_bits() == b.nm.to_bits()
                        });
                assert!(identical, "parallel mining diverged at threads = {threads}");
            }
            ThreadsPoint {
                threads,
                trajpattern_secs: secs / n,
                speedup_vs_one: 0.0,
                tp_scored: (scored as f64 / n) as u64,
                identical_to_sequential: identical,
            }
        })
        .collect();

    let base = points
        .iter()
        .find(|p| p.threads == 1)
        .or(points.first())
        .map(|p| p.trajpattern_secs)
        .unwrap_or(0.0);
    for p in &mut points {
        p.speedup_vs_one = if p.trajpattern_secs > 0.0 {
            base / p.trajpattern_secs
        } else {
            0.0
        };
    }

    ThreadsSweepResult {
        axis: "threads".into(),
        config: cfg.clone(),
        available_parallelism: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
        points,
    }
}

/// Fig. 4(a): sweep `k`.
pub fn sweep_k(cfg: &Fig4Config, ks: &[usize]) -> SweepResult {
    SweepResult {
        axis: "k".into(),
        config: cfg.clone(),
        points: ks
            .iter()
            .map(|&k| {
                run_point(cfg, k, k as f64, |seed| {
                    zebranet_workload(cfg.s, cfg.l, cfg.grid_side, seed)
                })
            })
            .collect(),
    }
}

/// Fig. 4(b): sweep the number of trajectories `S`.
pub fn sweep_s(cfg: &Fig4Config, ss: &[usize]) -> SweepResult {
    SweepResult {
        axis: "S".into(),
        config: cfg.clone(),
        points: ss
            .iter()
            .map(|&s| {
                run_point(cfg, cfg.k, s as f64, |seed| {
                    zebranet_workload(s, cfg.l, cfg.grid_side, seed)
                })
            })
            .collect(),
    }
}

/// Fig. 4(c): sweep the average trajectory length `L`.
pub fn sweep_l(cfg: &Fig4Config, ls: &[usize]) -> SweepResult {
    SweepResult {
        axis: "L".into(),
        config: cfg.clone(),
        points: ls
            .iter()
            .map(|&l| {
                run_point(cfg, cfg.k, l as f64, |seed| {
                    zebranet_workload(cfg.s, l, cfg.grid_side, seed)
                })
            })
            .collect(),
    }
}

/// Fig. 4(d): sweep the number of grid cells `G` (via the grid side).
pub fn sweep_g(cfg: &Fig4Config, sides: &[u32]) -> SweepResult {
    SweepResult {
        axis: "G".into(),
        config: cfg.clone(),
        points: sides
            .iter()
            .map(|&side| {
                run_point(cfg, cfg.k, (side * side) as f64, |seed| {
                    zebranet_workload(cfg.s, cfg.l, side, seed)
                })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig4Config {
        Fig4Config {
            s: 10,
            l: 15,
            grid_side: 6,
            k: 4,
            max_len: 4,
            pb_budget: Some(200_000),
            seeds: vec![3],
            ..Fig4Config::default()
        }
    }

    #[test]
    fn sweep_k_points_agree_and_are_positive() {
        let r = sweep_k(&tiny(), &[2, 4]);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(p.agree, "miners must agree at k={}", p.x);
            assert!(p.trajpattern_secs > 0.0 && p.pb_secs > 0.0);
        }
    }

    #[test]
    fn sweep_s_runs() {
        let r = sweep_s(&tiny(), &[6, 12]);
        assert_eq!(r.axis, "S");
        assert!(r.points.iter().all(|p| p.agree));
    }

    #[test]
    fn sweep_g_runs() {
        let r = sweep_g(&tiny(), &[4, 8]);
        assert_eq!(r.points[0].x, 16.0);
        assert_eq!(r.points[1].x, 64.0);
    }

    #[test]
    fn sweep_threads_is_bit_identical() {
        let r = sweep_threads(&tiny(), &[1, 2, 4]);
        assert_eq!(r.axis, "threads");
        assert_eq!(r.points.len(), 3);
        assert!(r.available_parallelism >= 1);
        for p in &r.points {
            assert!(p.identical_to_sequential, "threads = {}", p.threads);
            assert!(p.trajpattern_secs > 0.0);
        }
        assert!((r.points[0].speedup_vs_one - 1.0).abs() < 1e-9);
    }
}
