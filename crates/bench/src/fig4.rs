//! Fig. 4(a)–(d): scalability of TrajPattern vs the PB baseline.
//!
//! Four sweeps over the ZebraNet-style workload, one per paper panel:
//!
//! - (a) response time vs `k` (number of patterns wanted);
//! - (b) response time vs `S` (number of trajectories);
//! - (c) response time vs `L` (average trajectory length);
//! - (d) response time vs `G` (number of grid cells).
//!
//! The paper's qualitative result: TrajPattern grows slowly (quadratic in
//! k, linear in S, L and G) while PB grows super-linearly in k and S and
//! exponentially in G. Both miners are exact, so their outputs must agree
//! whenever PB completes within budget — the sweep asserts this.

use crate::workloads::zebranet_workload;
use baselines::pb::mine_pb_budgeted;
use serde::Serialize;
use std::time::Instant;
use trajdata::Dataset;
use trajgeo::Grid;
use trajpattern::{mine, MiningParams};

/// Base configuration shared by the four sweeps.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Config {
    /// Baseline number of trajectories `S`.
    pub s: usize,
    /// Baseline trajectory length `L`.
    pub l: usize,
    /// Baseline grid side (G = side²).
    pub grid_side: u32,
    /// Baseline `k`.
    pub k: usize,
    /// Pattern length cap.
    pub max_len: usize,
    /// Indifference distance δ.
    pub delta: f64,
    /// PB prefix-scoring budget (None = unbounded).
    pub pb_budget: Option<u64>,
    /// Workload seeds: each sweep point is measured once per seed and the
    /// times averaged (different seeds give different herd routes, which
    /// otherwise makes the curves noisy).
    pub seeds: Vec<u64>,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            s: 60,
            l: 40,
            grid_side: 12,
            k: 10,
            max_len: 6,
            delta: 0.03,
            pb_budget: Some(3_000_000),
            seeds: vec![7, 8, 9],
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The sweep variable's value at this point.
    pub x: f64,
    /// TrajPattern wall time in seconds.
    pub trajpattern_secs: f64,
    /// PB wall time in seconds.
    pub pb_secs: f64,
    /// Candidates TrajPattern actually scored.
    pub tp_scored: u64,
    /// Prefixes PB scored.
    pub pb_prefixes: u64,
    /// Whether PB hit its budget (its time is then a lower bound).
    pub pb_truncated: bool,
    /// Whether the two miners returned identical NM sequences (always
    /// true unless PB was truncated).
    pub agree: bool,
}

/// A complete sweep (one figure panel).
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    /// Sweep axis name: "k", "S", "L" or "G".
    pub axis: String,
    /// Configuration the sweep was based on.
    pub config: Fig4Config,
    /// The measured points.
    pub points: Vec<SweepPoint>,
}

/// Measures one (workload, k) pair once.
fn measure_once(data: &Dataset, grid: &Grid, k: usize, cfg: &Fig4Config, x: f64) -> SweepPoint {
    let params = MiningParams::new(k, cfg.delta)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");

    let t0 = Instant::now();
    let tp = mine(data, grid, &params).expect("mining succeeds");
    let trajpattern_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let pb = mine_pb_budgeted(data, grid, &params, cfg.pb_budget).expect("mining succeeds");
    let pb_secs = t1.elapsed().as_secs_f64();

    let agree = pb.stats.truncated
        || (tp.patterns.len() == pb.patterns.len()
            && tp
                .patterns
                .iter()
                .zip(&pb.patterns)
                .all(|(a, b)| (a.nm - b.nm).abs() < 1e-9));
    if !pb.stats.truncated {
        assert!(agree, "exact miners disagreed at x = {x}");
    }

    SweepPoint {
        x,
        trajpattern_secs,
        pb_secs,
        tp_scored: tp.stats.candidates_scored,
        pb_prefixes: pb.stats.prefixes_scored,
        pb_truncated: pb.stats.truncated,
        agree,
    }
}

/// Averages the measurement over the configured seeds. `make_workload`
/// receives each seed in turn.
fn run_point<F>(cfg: &Fig4Config, k: usize, x: f64, make_workload: F) -> SweepPoint
where
    F: Fn(u64) -> crate::workloads::ScalabilityWorkload,
{
    let mut acc: Option<SweepPoint> = None;
    let n = cfg.seeds.len().max(1) as f64;
    for &seed in &cfg.seeds {
        let w = make_workload(seed);
        let p = measure_once(&w.data, &w.grid, k, cfg, x);
        acc = Some(match acc {
            None => p,
            Some(mut a) => {
                a.trajpattern_secs += p.trajpattern_secs;
                a.pb_secs += p.pb_secs;
                a.tp_scored += p.tp_scored;
                a.pb_prefixes += p.pb_prefixes;
                a.pb_truncated |= p.pb_truncated;
                a.agree &= p.agree;
                a
            }
        });
    }
    let mut p = acc.expect("at least one seed");
    p.trajpattern_secs /= n;
    p.pb_secs /= n;
    p.tp_scored = (p.tp_scored as f64 / n) as u64;
    p.pb_prefixes = (p.pb_prefixes as f64 / n) as u64;
    p
}

/// Fig. 4(a): sweep `k`.
pub fn sweep_k(cfg: &Fig4Config, ks: &[usize]) -> SweepResult {
    SweepResult {
        axis: "k".into(),
        config: cfg.clone(),
        points: ks
            .iter()
            .map(|&k| {
                run_point(cfg, k, k as f64, |seed| {
                    zebranet_workload(cfg.s, cfg.l, cfg.grid_side, seed)
                })
            })
            .collect(),
    }
}

/// Fig. 4(b): sweep the number of trajectories `S`.
pub fn sweep_s(cfg: &Fig4Config, ss: &[usize]) -> SweepResult {
    SweepResult {
        axis: "S".into(),
        config: cfg.clone(),
        points: ss
            .iter()
            .map(|&s| {
                run_point(cfg, cfg.k, s as f64, |seed| {
                    zebranet_workload(s, cfg.l, cfg.grid_side, seed)
                })
            })
            .collect(),
    }
}

/// Fig. 4(c): sweep the average trajectory length `L`.
pub fn sweep_l(cfg: &Fig4Config, ls: &[usize]) -> SweepResult {
    SweepResult {
        axis: "L".into(),
        config: cfg.clone(),
        points: ls
            .iter()
            .map(|&l| {
                run_point(cfg, cfg.k, l as f64, |seed| {
                    zebranet_workload(cfg.s, l, cfg.grid_side, seed)
                })
            })
            .collect(),
    }
}

/// Fig. 4(d): sweep the number of grid cells `G` (via the grid side).
pub fn sweep_g(cfg: &Fig4Config, sides: &[u32]) -> SweepResult {
    SweepResult {
        axis: "G".into(),
        config: cfg.clone(),
        points: sides
            .iter()
            .map(|&side| {
                run_point(cfg, cfg.k, (side * side) as f64, |seed| {
                    zebranet_workload(cfg.s, cfg.l, side, seed)
                })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig4Config {
        Fig4Config {
            s: 10,
            l: 15,
            grid_side: 6,
            k: 4,
            max_len: 4,
            pb_budget: Some(200_000),
            seeds: vec![3],
            ..Fig4Config::default()
        }
    }

    #[test]
    fn sweep_k_points_agree_and_are_positive() {
        let r = sweep_k(&tiny(), &[2, 4]);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(p.agree, "miners must agree at k={}", p.x);
            assert!(p.trajpattern_secs > 0.0 && p.pb_secs > 0.0);
        }
    }

    #[test]
    fn sweep_s_runs() {
        let r = sweep_s(&tiny(), &[6, 12]);
        assert_eq!(r.axis, "S");
        assert!(r.points.iter().all(|p| p.agree));
    }

    #[test]
    fn sweep_g_runs() {
        let r = sweep_g(&tiny(), &[4, 8]);
        assert_eq!(r.points[0].x, 16.0);
        assert_eq!(r.points[1].x, 64.0);
    }
}
