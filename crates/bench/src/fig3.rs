//! Fig. 3: reduction of mis-predictions by pattern-assisted prediction.
//!
//! The pipeline, following §6.1 end to end:
//!
//! 1. Generate the bus fleet's ground-truth traces (450 train / 50 test,
//!    route-balanced).
//! 2. Push the training traces through the dead-reckoning reporting
//!    protocol (the paper's "transform it to the predictive model M") to
//!    obtain imprecise location trajectories, then convert to velocity
//!    trajectories.
//! 3. Mine the top-k patterns of length ≥ 4 twice: once by NM
//!    (TrajPattern) and once by match (the \[14\]-style baseline).
//! 4. For each prediction module (LM, LKF, RMF) and each pattern set,
//!    count mis-predictions on the 50 test traces with and without
//!    pattern assistance; report the reduction ratio.
//!
//! Paper result: NM patterns cut mis-predictions by 20–40 %, match
//! patterns by only 10–20 %, across all three modules.

use crate::workloads::{bus_velocity_grid, bus_workload};
use baselines::mine_match;
use datagen::observe_via_reporting;
use mobility::{KalmanModel, LinearModel, MotionModel, RecursiveMotionModel, ReportingScheme};
use prediction::{evaluate_paths, PatternLibrary};
use serde::Serialize;
use trajpattern::{mine, MinedPattern, MiningParams};

/// Configuration of the Fig. 3 experiment.
///
/// The default workload is 200 traces (paper: 500) — the match-measure
/// baseline's Apriori frontier grows with both the trace count and k, and
/// k = 400 on 500 traces does not finish in reasonable time on one core.
/// The train:test ratio (9:1) matches the paper's 450:50.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Config {
    /// Total bus traces (paper: 500).
    pub traces: usize,
    /// Training traces (paper: 450); the rest are test traces.
    pub train: usize,
    /// Patterns to mine.
    pub k: usize,
    /// Minimum pattern length (paper: 4).
    pub min_len: usize,
    /// Maximum pattern length.
    pub max_len: usize,
    /// Indifference distance in velocity space.
    pub delta: f64,
    /// Confirm probability threshold (paper: 0.9).
    pub confirm: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Fig3Config {
            traces: 200,
            train: 180,
            k: 400,
            min_len: 4,
            max_len: 7,
            delta: 0.005,
            confirm: 0.9,
            seed: 11,
        }
    }
}

/// One (model, measure) cell of Fig. 3.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Prediction module: "LM", "LKF" or "RMF".
    pub model: String,
    /// Pattern measure: "NM" or "match".
    pub measure: String,
    /// Mis-predictions without patterns.
    pub base: usize,
    /// Mis-predictions with patterns.
    pub assisted: usize,
    /// Reduction ratio `1 − assisted/base` (Fig. 3's y-axis).
    pub reduction: f64,
}

/// Full experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Result {
    /// Configuration used.
    pub config: Fig3Config,
    /// Number of NM patterns mined (length ≥ min_len).
    pub nm_patterns: usize,
    /// Number of match patterns mined.
    pub match_patterns: usize,
    /// Average length of the NM pattern set.
    pub nm_avg_len: f64,
    /// Average length of the match pattern set.
    pub match_avg_len: f64,
    /// The six rows (3 models × 2 measures).
    pub rows: Vec<Fig3Row>,
}

fn avg_len(patterns: &[MinedPattern]) -> f64 {
    if patterns.is_empty() {
        return 0.0;
    }
    patterns.iter().map(|m| m.pattern.len()).sum::<usize>() as f64 / patterns.len() as f64
}

/// Runs the full Fig. 3 pipeline.
pub fn run(cfg: &Fig3Config) -> Fig3Result {
    assert!(cfg.train < cfg.traces, "need at least one test trace");
    let w = bus_workload(cfg.traces, cfg.seed);
    let scheme = ReportingScheme::new(w.uncertainty, w.c, 0.0).expect("valid scheme");

    let (train_paths, test_paths) = w.paths.split_at(cfg.train);

    // Observe the training traces through the protocol and mine velocity
    // patterns.
    let mut observe_model = LinearModel::new();
    let locations =
        observe_via_reporting(train_paths, &mut observe_model, &scheme, cfg.seed ^ 0xf13);
    let velocities = locations.to_velocity().expect("traces have ≥ 2 snapshots");
    let grid = bus_velocity_grid();

    let params = MiningParams::new(cfg.k, cfg.delta)
        .expect("valid params")
        .with_min_len(cfg.min_len)
        .expect("valid params")
        .with_max_len(cfg.max_len)
        .expect("valid params");
    let nm_out = mine(&velocities, &grid, &params).expect("NM mining succeeds");
    let match_out = mine_match(&velocities, &grid, &params).expect("match mining succeeds");
    let match_as_mined: Vec<MinedPattern> = match_out
        .patterns
        .iter()
        .map(|m| MinedPattern::new(m.pattern.clone(), m.match_value))
        .collect();

    let nm_lib = PatternLibrary::new(
        nm_out.patterns.clone(),
        grid.clone(),
        cfg.delta,
        params.min_prob,
        cfg.confirm,
    )
    .expect("valid library");
    let match_lib = PatternLibrary::new(
        match_as_mined.clone(),
        grid.clone(),
        cfg.delta,
        params.min_prob,
        cfg.confirm,
    )
    .expect("valid library");

    let mut rows = Vec::new();
    let models: Vec<Box<dyn MotionModel>> = vec![
        Box::new(LinearModel::new()),
        Box::new(KalmanModel::with_defaults()),
        Box::new(RecursiveMotionModel::with_defaults()),
    ];
    for mut model in models {
        for (measure, lib) in [("NM", &nm_lib), ("match", &match_lib)] {
            let r = evaluate_paths(test_paths, model.as_mut(), &scheme, lib);
            rows.push(Fig3Row {
                model: model.name().to_string(),
                measure: measure.to_string(),
                base: r.base_mispredictions,
                assisted: r.assisted_mispredictions,
                reduction: r.reduction(),
            });
        }
    }

    Fig3Result {
        config: cfg.clone(),
        nm_patterns: nm_out.patterns.len(),
        match_patterns: match_out.patterns.len(),
        nm_avg_len: avg_len(&nm_out.patterns),
        match_avg_len: avg_len(&match_as_mined),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_rows() {
        // Tiny: debug-mode smoke test; `exp_fig3` is the real thing.
        let cfg = Fig3Config {
            traces: 30,
            train: 24,
            k: 20,
            max_len: 5,
            ..Fig3Config::default()
        };
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 6);
        let models: Vec<&str> = r.rows.iter().map(|x| x.model.as_str()).collect();
        assert!(models.contains(&"LM") && models.contains(&"LKF") && models.contains(&"RMF"));
        for row in &r.rows {
            assert!(row.base > 0, "{} should mis-predict sometimes", row.model);
            assert!(
                row.reduction <= 1.0,
                "reduction ratio out of range: {}",
                row.reduction
            );
        }
    }
}
