//! Shared workload builders for the experiments.

use datagen::{observe_directly, BusConfig, ZebraConfig};
use trajdata::Dataset;
use trajgeo::{BBox, Grid, Point2};

/// The ZebraNet-style scalability workload of §6.2, parameterized by the
/// paper's sweep variables: `S` (trajectories), `L` (average length) and
/// `G` (grid cells). Herd movement keeps the workload homogeneous enough
/// that top-k thresholds bite (both miners are exact; this controls how
/// hard they have to work, which is what Fig. 4 measures).
#[derive(Debug, Clone)]
pub struct ScalabilityWorkload {
    /// The imprecise location dataset.
    pub data: Dataset,
    /// Grid over the unit square with `grid_side²` cells.
    pub grid: Grid,
}

/// Builds the scalability workload. `s` trajectories of length `l` over a
/// `grid_side × grid_side` grid.
///
/// One herd: every zebra shares the same (noisy) motion, so top patterns
/// score well in *every* trajectory and the top-k thresholds of both
/// miners actually bite. With several independent herds each pattern is
/// floored on the other herds' trajectories, the thresholds sit far below
/// any completion bound, and the PB baseline cannot prune at all — it
/// then only ever hits its node budget, which flattens the curves the
/// figure is supposed to show. (TrajPattern handles both regimes; see the
/// `multi_herd` tests in `tests/miners_agree.rs`.)
pub fn zebranet_workload(s: usize, l: usize, grid_side: u32, seed: u64) -> ScalabilityWorkload {
    let cfg = ZebraConfig {
        num_groups: 1,
        zebras_per_group: s.max(1),
        snapshots: l,
        leave_prob: 0.001,
        ..ZebraConfig::default()
    };
    let mut paths = cfg.paths(seed);
    paths.truncate(s);
    let data = observe_directly(&paths, 0.015, seed ^ 0x0b5e);
    let grid = Grid::new(BBox::unit(), grid_side, grid_side).expect("valid grid");
    ScalabilityWorkload { data, grid }
}

/// The bus workload of §6.1: ground-truth traces (interleaved across
/// routes so a prefix split is route-balanced) plus the reporting scheme's
/// parameters used throughout the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct BusWorkload {
    /// Ground-truth paths, one per (bus, day), 100 snapshots each.
    pub paths: Vec<Vec<Point2>>,
    /// Tolerable uncertainty distance `U` (fraction of the unit square).
    pub uncertainty: f64,
    /// The constant `c` (σ = U/c).
    pub c: f64,
}

/// Builds the bus workload (500 traces by default; `traces` can shrink it
/// for quick runs).
pub fn bus_workload(traces: usize, seed: u64) -> BusWorkload {
    let cfg = BusConfig::default();
    let mut paths = cfg.paths_interleaved(seed);
    paths.truncate(traces);
    BusWorkload {
        paths,
        uncertainty: 0.012,
        c: 2.0,
    }
}

/// The velocity-space grid used for bus velocity mining: 9×9 cells of
/// width 0.01 over `[-0.045, 0.045]²`. The odd cell count centers one cell
/// exactly on zero velocity (dwells), and the fleet's cruise (≈0.02) and
/// corner-slow (≈0.008) speed levels land on distinct cell centers (see
/// `datagen::bus` on corner deceleration).
pub fn bus_velocity_grid() -> Grid {
    Grid::new(
        BBox::new(Point2::new(-0.045, -0.045), Point2::new(0.045, 0.045)).expect("valid box"),
        9,
        9,
    )
    .expect("valid grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zebranet_workload_has_requested_shape() {
        let w = zebranet_workload(30, 20, 12, 1);
        assert_eq!(w.data.len(), 30);
        let stats = w.data.stats().unwrap();
        assert_eq!(stats.max_len, 20);
        assert_eq!(w.grid.num_cells(), 144);
    }

    #[test]
    fn zebranet_workload_handles_odd_counts() {
        let w = zebranet_workload(7, 10, 8, 2);
        assert_eq!(w.data.len(), 7);
    }

    #[test]
    fn bus_workload_truncates() {
        let w = bus_workload(40, 3);
        assert_eq!(w.paths.len(), 40);
        assert!(w.paths.iter().all(|p| p.len() == 100));
    }

    #[test]
    fn velocity_grid_covers_fleet_speeds() {
        let g = bus_velocity_grid();
        // Fast eastbound ≈ 0.02/snapshot must be inside the box.
        assert!(g.bbox().contains(Point2::new(0.02, 0.0)));
        assert!(g.bbox().contains(Point2::new(-0.025, 0.01)));
        assert_eq!(g.num_cells(), 81);
    }
}
