//! Probabilistic query throughput experiment (ours): latency of
//! `trajquery` range and k-NN queries, indexed versus brute-force.
//!
//! Builds a [`trajquery::QuerySet`] over a uniform workload of S
//! imprecise trajectories and drives it with a fixed batch of
//! deterministic query points, once through the σ-expanded-bbox index
//! and once with the index disabled. Both paths are bit-identical by
//! construction (the bench asserts it on every query); the interesting
//! number is the ratio — how much of the scan the index prunes at a
//! given object count. The report gives p50/p99/mean per route plus the
//! indexed-vs-brute speedup, in the same `axis`/`config`/`points`
//! envelope as the other experiments.

use serde::Serialize;
use std::time::Instant;
use trajgeo::Point2;
use trajquery::QuerySet;

/// Configuration of the query throughput run.
#[derive(Debug, Clone, Serialize)]
pub struct QueryBenchConfig {
    /// Objects in the query set.
    pub objects: usize,
    /// Snapshots per trajectory.
    pub l: usize,
    /// Reported noise σ of every snapshot.
    pub sigma: f64,
    /// Query points per route.
    pub queries: usize,
    /// Range radius δ.
    pub delta: f64,
    /// Probability threshold τ.
    pub tau: f64,
    /// k for the k-NN route.
    pub k: usize,
    /// §3.1 uncertainty growth per unit of elapsed time.
    pub growth_rate: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for QueryBenchConfig {
    fn default() -> Self {
        QueryBenchConfig {
            objects: 10_000,
            l: 10,
            sigma: 0.01,
            queries: 200,
            delta: 0.02,
            tau: 0.1,
            k: 8,
            growth_rate: 0.1,
            seed: 23,
        }
    }
}

/// Per-route measurements.
#[derive(Debug, Clone, Serialize)]
pub struct QueryPoint {
    /// Route label (`prange` / `pnn`, `_brute` suffix = index off).
    pub route: String,
    /// Queries issued.
    pub queries: u64,
    /// Queries per second.
    pub qps: f64,
    /// Median query latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile query latency in milliseconds.
    pub p99_ms: f64,
    /// Mean query latency in milliseconds.
    pub mean_ms: f64,
}

/// Result of the query throughput experiment.
#[derive(Debug, Clone, Serialize)]
pub struct QueryThroughputResult {
    /// Always "route".
    pub axis: String,
    /// Configuration the run was based on.
    pub config: QueryBenchConfig,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// One point per route.
    pub points: Vec<QueryPoint>,
    /// Mean-latency speedup of indexed `prange` over the brute scan.
    pub prange_speedup: f64,
    /// Mean-latency speedup of indexed `pnn` over the brute scan.
    pub pnn_speedup: f64,
    /// Total matches returned across all indexed `prange` queries (pins
    /// the workload to a non-trivial selectivity).
    pub prange_matches: u64,
}

/// Deterministic query points: a seeded LCG over the unit square — the
/// same sequence every run, independent of the host.
fn query_points(n: usize, seed: u64) -> Vec<Point2> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point2::new(next(), next())).collect()
}

fn summarize(route: &str, lat: &mut [f64]) -> QueryPoint {
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let n = lat.len();
    let pct = |q: f64| {
        if n == 0 {
            0.0
        } else {
            lat[(((n - 1) as f64) * q).round() as usize] * 1e3
        }
    };
    let total: f64 = lat.iter().sum();
    QueryPoint {
        route: route.to_string(),
        queries: n as u64,
        qps: if total > 0.0 { n as f64 / total } else { 0.0 },
        p50_ms: pct(0.5),
        p99_ms: pct(0.99),
        mean_ms: if n > 0 { total / n as f64 * 1e3 } else { 0.0 },
    }
}

/// Runs the query throughput experiment.
pub fn run_query(cfg: &QueryBenchConfig) -> QueryThroughputResult {
    let paths = datagen::UniformConfig {
        num_objects: cfg.objects,
        snapshots: cfg.l,
        ..datagen::UniformConfig::default()
    }
    .paths(cfg.seed);
    let data = datagen::observe_directly(&paths, cfg.sigma, cfg.seed ^ 0x9e37);
    let set = QuerySet::from_dataset(&data, cfg.growth_rate);
    let points = query_points(cfg.queries, cfg.seed);
    let t = (cfg.l as f64 - 1.0) / 2.0 + 0.5;

    // Interleaving indexed and brute per point keeps cache effects
    // symmetric; identity is asserted on every single query.
    let mut lat_prange = Vec::with_capacity(points.len());
    let mut lat_prange_brute = Vec::with_capacity(points.len());
    let mut lat_pnn = Vec::with_capacity(points.len());
    let mut lat_pnn_brute = Vec::with_capacity(points.len());
    let mut prange_matches = 0u64;
    for &p in &points {
        let t0 = Instant::now();
        let indexed = set.prange(p, cfg.delta, t, cfg.tau).expect("valid query");
        lat_prange.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let brute = set
            .prange_bruteforce(p, cfg.delta, t, cfg.tau)
            .expect("valid query");
        lat_prange_brute.push(t0.elapsed().as_secs_f64());
        assert_eq!(indexed, brute, "index pruning changed a prange answer");
        prange_matches += indexed.len() as u64;

        let t0 = Instant::now();
        let indexed = set
            .pnn(p, t, cfg.k, cfg.tau, cfg.delta)
            .expect("valid query");
        lat_pnn.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let brute = set
            .pnn_bruteforce(p, t, cfg.k, cfg.tau, cfg.delta)
            .expect("valid query");
        lat_pnn_brute.push(t0.elapsed().as_secs_f64());
        assert_eq!(indexed, brute, "index pruning changed a pnn answer");
    }

    let points = vec![
        summarize("prange", &mut lat_prange),
        summarize("prange_brute", &mut lat_prange_brute),
        summarize("pnn", &mut lat_pnn),
        summarize("pnn_brute", &mut lat_pnn_brute),
    ];
    let speedup = |indexed: &QueryPoint, brute: &QueryPoint| {
        if indexed.mean_ms > 0.0 {
            brute.mean_ms / indexed.mean_ms
        } else {
            0.0
        }
    };
    QueryThroughputResult {
        axis: "route".into(),
        config: cfg.clone(),
        available_parallelism: std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1),
        prange_speedup: speedup(&points[0], &points[1]),
        pnn_speedup: speedup(&points[2], &points[3]),
        prange_matches,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_bench_runs_and_asserts_identity() {
        let cfg = QueryBenchConfig {
            objects: 200,
            l: 6,
            queries: 20,
            ..QueryBenchConfig::default()
        };
        let r = run_query(&cfg);
        assert_eq!(r.axis, "route");
        assert_eq!(r.points.len(), 4);
        assert!(r.points.iter().all(|p| p.queries == 20));
        assert!(r.points.iter().all(|p| p.p99_ms >= p.p50_ms));
        assert!(r.prange_matches > 0, "workload must return matches");
        assert!(r.prange_speedup > 0.0 && r.pnn_speedup > 0.0);
    }
}
