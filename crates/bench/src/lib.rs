//! Experiment harness regenerating every figure of the TrajPattern paper.
//!
//! Each experiment is a library function returning a serializable result
//! struct, driven by a binary (`exp_*`) that prints a human-readable table
//! and writes JSON under `results/`. Criterion benches in `benches/`
//! exercise the same code paths on reduced configurations for
//! statistically robust *timing* numbers; the `exp_*` binaries produce the
//! full paper-shaped sweeps.
//!
//! Figure → module map (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! | Paper artifact | Module |
//! |---|---|
//! | §6.1 pattern-length statistic | [`lengths`] |
//! | Fig. 3 (mis-prediction reduction) | [`fig3`] |
//! | Fig. 4(a)–(d) (scalability) | [`fig4`] |
//! | Fig. 4(e) (groups vs δ) | [`fig4e`] |
//! | Pruning ablation (ours) | [`ablation`] |
//! | Streaming throughput (ours) | [`stream`] |
//! | Serving throughput (ours) | [`serve`] |
//! | Sharded live serving (ours) | [`fleet`] |

#![forbid(unsafe_code)]

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig4e;
pub mod fleet;
pub mod lengths;
pub mod query;
pub mod report;
pub mod serve;
pub mod stream;
pub mod workloads;
