//! Criterion version of Fig. 4(e): mining + pattern-group discovery at
//! several indifference thresholds δ.

use bench::workloads::zebranet_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trajpattern::{mine, MiningParams};

fn bench_vs_delta(c: &mut Criterion) {
    let w = zebranet_workload(30, 30, 10, 7);
    let mut g = c.benchmark_group("fig4e_vs_delta");
    g.sample_size(10);
    for delta in [0.02f64, 0.05, 0.10] {
        let params = MiningParams::new(20, delta)
            .unwrap()
            .with_max_len(4)
            .unwrap()
            .with_gamma(0.15)
            .unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("delta_{delta}")),
            &delta,
            |b, _| b.iter(|| black_box(mine(&w.data, &w.grid, &params).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_vs_delta);
criterion_main!(benches);
