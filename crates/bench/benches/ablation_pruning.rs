//! Ablation bench: the cost of mining with and without the weighted-mean
//! bound and the 1-extension/τ retention rule. All four variants return
//! identical results (asserted by tests); this measures the work saved.

use bench::workloads::zebranet_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trajpattern::{mine, MiningParams};

fn bench_pruning_variants(c: &mut Criterion) {
    let w = zebranet_workload(25, 25, 8, 7);
    let base = MiningParams::new(8, 0.04).unwrap().with_max_len(4).unwrap();
    let variants: [(&str, bool, bool); 4] = [
        ("full", true, true),
        ("bound_only", true, false),
        ("one_ext_only", false, true),
        ("none", false, false),
    ];
    let mut g = c.benchmark_group("ablation_pruning");
    g.sample_size(10);
    for (label, bound, one_ext) in variants {
        let mut p = base.clone();
        p.use_bound_prune = bound;
        p.use_one_extension_prune = one_ext;
        g.bench_with_input(BenchmarkId::from_parameter(label), &p, |b, p| {
            b.iter(|| black_box(mine(&w.data, &w.grid, p).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pruning_variants);
criterion_main!(benches);
