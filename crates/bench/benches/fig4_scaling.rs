//! Criterion version of Fig. 4(a)–(d): TrajPattern vs PB response time on
//! reduced configurations of the ZebraNet workload. The `exp_fig4` binary
//! produces the paper-scale sweeps; these benches give statistically
//! robust timings for the small points.

use baselines::pb::mine_pb_budgeted;
use bench::workloads::zebranet_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trajpattern::{mine, MiningParams};

const DELTA: f64 = 0.03;
const MAX_LEN: usize = 5;
const PB_BUDGET: Option<u64> = Some(500_000);

fn params(k: usize) -> MiningParams {
    MiningParams::new(k, DELTA)
        .unwrap()
        .with_max_len(MAX_LEN)
        .unwrap()
}

/// Fig. 4(a): response time vs k.
fn bench_vs_k(c: &mut Criterion) {
    let w = zebranet_workload(30, 30, 10, 7);
    let mut g = c.benchmark_group("fig4a_vs_k");
    g.sample_size(10);
    for k in [4usize, 8, 16] {
        g.bench_with_input(BenchmarkId::new("trajpattern", k), &k, |b, &k| {
            b.iter(|| black_box(mine(&w.data, &w.grid, &params(k)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("pb", k), &k, |b, &k| {
            b.iter(|| black_box(mine_pb_budgeted(&w.data, &w.grid, &params(k), PB_BUDGET).unwrap()))
        });
    }
    g.finish();
}

/// Fig. 4(b): response time vs the number of trajectories S.
fn bench_vs_s(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_vs_s");
    g.sample_size(10);
    for s in [15usize, 30, 60] {
        let w = zebranet_workload(s, 30, 10, 7);
        g.bench_with_input(BenchmarkId::new("trajpattern", s), &s, |b, _| {
            b.iter(|| black_box(mine(&w.data, &w.grid, &params(8)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("pb", s), &s, |b, _| {
            b.iter(|| black_box(mine_pb_budgeted(&w.data, &w.grid, &params(8), PB_BUDGET).unwrap()))
        });
    }
    g.finish();
}

/// Fig. 4(c): response time vs the trajectory length L.
fn bench_vs_l(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4c_vs_l");
    g.sample_size(10);
    for l in [15usize, 30, 60] {
        let w = zebranet_workload(30, l, 10, 7);
        g.bench_with_input(BenchmarkId::new("trajpattern", l), &l, |b, _| {
            b.iter(|| black_box(mine(&w.data, &w.grid, &params(8)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("pb", l), &l, |b, _| {
            b.iter(|| black_box(mine_pb_budgeted(&w.data, &w.grid, &params(8), PB_BUDGET).unwrap()))
        });
    }
    g.finish();
}

/// Fig. 4(d): response time vs the number of grid cells G.
fn bench_vs_g(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4d_vs_g");
    g.sample_size(10);
    for side in [6u32, 10, 14] {
        let w = zebranet_workload(30, 30, side, 7);
        let cells = side * side;
        g.bench_with_input(BenchmarkId::new("trajpattern", cells), &cells, |b, _| {
            b.iter(|| black_box(mine(&w.data, &w.grid, &params(8)).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("pb", cells), &cells, |b, _| {
            b.iter(|| black_box(mine_pb_budgeted(&w.data, &w.grid, &params(8), PB_BUDGET).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_vs_k, bench_vs_s, bench_vs_l, bench_vs_g);
criterion_main!(benches);
