//! Micro-benchmarks of the mining building blocks: NM scoring, the sparse
//! singular pass, pattern-group discovery and an end-to-end small mine.

use bench::workloads::zebranet_workload;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use trajgeo::CellId;
use trajpattern::{mine, MiningParams, Pattern, Scorer};

fn bench_nm_scoring(c: &mut Criterion) {
    let w = zebranet_workload(40, 40, 12, 3);
    let scorer = Scorer::new(&w.data, &w.grid, 0.03, 1e-12);
    // Pre-warm the row cache so the benchmark isolates window scanning.
    let pattern = Pattern::new(vec![CellId(50), CellId(51), CellId(52), CellId(53)]).unwrap();
    scorer.nm(&pattern);
    c.bench_function("nm_score_len4_40x40", |b| {
        b.iter(|| black_box(scorer.nm(black_box(&pattern))))
    });
}

fn bench_singular_pass(c: &mut Criterion) {
    let w = zebranet_workload(40, 40, 12, 3);
    c.bench_function("singular_pass_40x40_144cells", |b| {
        b.iter_batched(
            || Scorer::new(&w.data, &w.grid, 0.03, 1e-12),
            |scorer| black_box(scorer.nm_all_singulars()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_full_mine(c: &mut Criterion) {
    let w = zebranet_workload(20, 25, 8, 3);
    let params = MiningParams::new(8, 0.04).unwrap().with_max_len(4).unwrap();
    c.bench_function("mine_small_k8", |b| {
        b.iter(|| black_box(mine(&w.data, &w.grid, &params).unwrap()))
    });
}

fn bench_groups(c: &mut Criterion) {
    let w = zebranet_workload(30, 30, 10, 3);
    let params = MiningParams::new(30, 0.04)
        .unwrap()
        .with_max_len(4)
        .unwrap();
    let out = mine(&w.data, &w.grid, &params).unwrap();
    c.bench_function("group_discovery_k30", |b| {
        b.iter(|| {
            black_box(trajpattern::groups::discover_groups(
                black_box(&out.patterns),
                &w.grid,
                0.15,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_nm_scoring, bench_singular_pass, bench_full_mine, bench_groups
}
criterion_main!(benches);
