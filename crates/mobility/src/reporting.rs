//! The dead-reckoning location reporting protocol (§3.1).
//!
//! "A mobile object may choose to report its actual location only if it is
//! more than U away from the predicted position μ. … σ is defined as U/c
//! where U is the tolerable uncertainty distance of the object and c is a
//! constant" tied to network reliability (c = 2 tolerates a 5 % message
//! loss).
//!
//! [`simulate_reporting`] drives a ground-truth path through the protocol
//! with any [`MotionModel`] and produces the server's reconstructed
//! imprecise trajectory — the miner's input.

use crate::models::MotionModel;
use rand::Rng;
use std::fmt;
use trajdata::{SnapshotPoint, Trajectory};
use trajgeo::Point2;

/// How the tolerable uncertainty `U` evolves between reports. §3.1: "U can
/// be either a constant, a function of the elapse time t, or the expected
/// traversed distance d. In this paper, we assume that U is a constant" —
/// the constant case is the paper's default; the other two are provided
/// for completeness and exercised by tests and the failure-injection
/// suite.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum UncertaintyModel {
    /// `U(·) = base` — the paper's assumption.
    #[default]
    Constant,
    /// `U(t) = base · (1 + rate·t)` where `t` is the number of snapshots
    /// since the last received report: tolerance (and uncertainty) grow
    /// the longer the object stays silent.
    GrowingWithTime {
        /// Relative growth per snapshot (≥ 0).
        rate: f64,
    },
    /// `U(d) = base · (1 + rate·d)` where `d` is the expected distance
    /// traversed (by the prediction) since the last received report.
    GrowingWithDistance {
        /// Relative growth per unit of predicted travel (≥ 0).
        rate: f64,
    },
}

impl UncertaintyModel {
    /// The effective tolerance given `base` U, snapshots since the last
    /// report, and predicted distance traversed since the last report.
    pub fn effective_u(&self, base: f64, elapsed: usize, predicted_distance: f64) -> f64 {
        match *self {
            UncertaintyModel::Constant => base,
            UncertaintyModel::GrowingWithTime { rate } => base * (1.0 + rate * elapsed as f64),
            UncertaintyModel::GrowingWithDistance { rate } => {
                base * (1.0 + rate * predicted_distance)
            }
        }
    }

    /// §3.1 server-side reconstruction: the standard deviation assigned to
    /// a reconstructed snapshot, `σ = U_eff / c`, where `U_eff` is the
    /// effective tolerance after `elapsed` snapshots of silence since the
    /// last report. Snapshots that coincide with a report are exact (σ = 0)
    /// and do not call this.
    pub fn reconstruction_sigma(
        &self,
        base: f64,
        c: f64,
        elapsed: usize,
        predicted_distance: f64,
    ) -> f64 {
        self.effective_u(base, elapsed, predicted_distance) / c
    }

    fn is_valid(&self) -> bool {
        match *self {
            UncertaintyModel::Constant => true,
            UncertaintyModel::GrowingWithTime { rate }
            | UncertaintyModel::GrowingWithDistance { rate } => rate.is_finite() && rate >= 0.0,
        }
    }
}

/// Parameters of the reporting protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReportingScheme {
    /// Tolerable uncertainty distance `U` (its base value; see
    /// [`ReportingScheme::uncertainty_model`]): the object reports
    /// whenever the prediction error exceeds the effective tolerance.
    pub uncertainty: f64,
    /// The constant `c` relating `U` to the error std: `σ = U/c`. The paper
    /// discusses c ∈ {1, 2, 3} (68 %, 95 %, 99.7 % confidence).
    pub c: f64,
    /// Probability that a report message is lost in transit (the paper's
    /// motivation for c = 2 is a 5 % loss rate). Losses are independent.
    pub loss_probability: f64,
    /// Evolution of `U` between reports (§3.1); the paper's default is
    /// [`UncertaintyModel::Constant`].
    pub uncertainty_model: UncertaintyModel,
}

/// Errors validating a [`ReportingScheme`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// `uncertainty` must be positive and finite.
    BadUncertainty,
    /// `c` must be positive and finite.
    BadC,
    /// `loss_probability` must be in `[0, 1)`.
    BadLossProbability,
    /// The uncertainty model's growth rate must be non-negative and finite.
    BadUncertaintyModel,
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::BadUncertainty => write!(f, "uncertainty U must be positive and finite"),
            SchemeError::BadC => write!(f, "constant c must be positive and finite"),
            SchemeError::BadLossProbability => {
                write!(f, "loss probability must be in [0, 1)")
            }
            SchemeError::BadUncertaintyModel => {
                write!(f, "uncertainty growth rate must be non-negative and finite")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

impl ReportingScheme {
    /// Creates a validated scheme.
    pub fn new(uncertainty: f64, c: f64, loss_probability: f64) -> Result<Self, SchemeError> {
        if !(uncertainty.is_finite() && uncertainty > 0.0) {
            return Err(SchemeError::BadUncertainty);
        }
        if !(c.is_finite() && c > 0.0) {
            return Err(SchemeError::BadC);
        }
        if !(0.0..1.0).contains(&loss_probability) {
            return Err(SchemeError::BadLossProbability);
        }
        Ok(ReportingScheme {
            uncertainty,
            c,
            loss_probability,
            uncertainty_model: UncertaintyModel::Constant,
        })
    }

    /// Replaces the uncertainty-evolution model (§3.1's "function of the
    /// elapse time t, or the expected traversed distance d").
    pub fn with_uncertainty_model(mut self, model: UncertaintyModel) -> Result<Self, SchemeError> {
        if !model.is_valid() {
            return Err(SchemeError::BadUncertaintyModel);
        }
        self.uncertainty_model = model;
        Ok(self)
    }

    /// The per-snapshot location error standard deviation `σ = U/c`.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.uncertainty / self.c
    }
}

/// One report received by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Snapshot index at which the report was received.
    pub snapshot: usize,
    /// The reported (true) location.
    pub loc: Point2,
}

/// Result of simulating the protocol over one ground-truth path.
#[derive(Debug, Clone)]
pub struct SimulationOutput {
    /// Reports that actually reached the server.
    pub reports: Vec<Report>,
    /// The server's reconstructed imprecise trajectory: means are the
    /// server-side location estimates, sigmas are 0 at received reports and
    /// `U/c` at dead-reckoned snapshots.
    pub reconstructed: Trajectory,
    /// Number of snapshots where the object *attempted* to report (the
    /// prediction missed by more than U) — the paper's "mis-predictions".
    pub attempted_reports: usize,
    /// Number of report messages lost in transit.
    pub lost_reports: usize,
}

impl SimulationOutput {
    /// Fraction of snapshots (after the initial mandatory report) where the
    /// prediction missed by more than U.
    pub fn misprediction_rate(&self) -> f64 {
        let n = self.reconstructed.len();
        if n <= 1 {
            return 0.0;
        }
        self.attempted_reports as f64 / (n - 1) as f64
    }
}

/// Runs the reporting protocol over `true_path` (one exact location per
/// snapshot) with the given prediction model, returning the report stream
/// and the server's reconstructed imprecise trajectory.
///
/// ```
/// use mobility::{simulate_reporting, LinearModel, ReportingScheme};
/// use rand::{rngs::StdRng, SeedableRng};
/// use trajgeo::Point2;
///
/// // A perfectly linear path: after the initial fix and one velocity-
/// // establishing report, the server predicts everything.
/// let path: Vec<Point2> = (0..20).map(|i| Point2::new(i as f64 * 0.01, 0.5)).collect();
/// let scheme = ReportingScheme::new(0.005, 2.0, 0.0).unwrap();
/// let mut model = LinearModel::new();
/// let mut rng = StdRng::seed_from_u64(1);
/// let out = simulate_reporting(&path, &mut model, &scheme, &mut rng);
/// assert!(out.reports.len() <= 3);
/// assert_eq!(out.reconstructed.len(), 20);
/// ```
///
/// The first snapshot is always reported (and never lost): the protocol
/// needs a starting fix. After that, at each snapshot the object compares
/// the model's prediction against its true location and reports only when
/// the error exceeds `U`; each such report is lost independently with
/// `scheme.loss_probability`. Both the object and the server advance the
/// *same* model with the same information (a lost report leaves both
/// dead-reckoning, since the object receives no acknowledgement it keeps
/// trying at subsequent snapshots while the error stays above `U`).
pub fn simulate_reporting<R: Rng + ?Sized>(
    true_path: &[Point2],
    model: &mut dyn MotionModel,
    scheme: &ReportingScheme,
    rng: &mut R,
) -> SimulationOutput {
    model.reset();
    let mut reports = Vec::new();
    let mut points = Vec::with_capacity(true_path.len());
    let mut attempted = 0usize;
    let mut lost = 0usize;
    // State for the non-constant uncertainty models: snapshots and
    // predicted travel since the last *received* report.
    let mut elapsed = 0usize;
    let mut predicted_distance = 0.0f64;
    let mut last_estimate = Point2::ORIGIN;

    for (i, &truth) in true_path.iter().enumerate() {
        if i == 0 {
            // Mandatory initial fix.
            reports.push(Report {
                snapshot: 0,
                loc: truth,
            });
            model.advance(Some(truth));
            points.push(SnapshotPoint::exact(truth));
            last_estimate = truth;
            continue;
        }
        let predicted = model.predict_next();
        elapsed += 1;
        predicted_distance += predicted.distance(last_estimate);
        let u =
            scheme
                .uncertainty_model
                .effective_u(scheme.uncertainty, elapsed, predicted_distance);
        if predicted.distance(truth) > u {
            attempted += 1;
            if rng.gen::<f64>() < scheme.loss_probability {
                // Message lost: the server keeps the prediction and both
                // sides dead-reckon.
                lost += 1;
                model.advance(None);
                points.push(SnapshotPoint {
                    mean: predicted,
                    sigma: u / scheme.c,
                });
                last_estimate = predicted;
            } else {
                reports.push(Report {
                    snapshot: i,
                    loc: truth,
                });
                model.advance(Some(truth));
                points.push(SnapshotPoint::exact(truth));
                last_estimate = truth;
                elapsed = 0;
                predicted_distance = 0.0;
            }
        } else {
            model.advance(None);
            points.push(SnapshotPoint {
                mean: predicted,
                sigma: u / scheme.c,
            });
            last_estimate = predicted;
        }
    }

    SimulationOutput {
        reports,
        reconstructed: Trajectory::new(points).expect("simulation produces finite snapshot points"),
        attempted_reports: attempted,
        lost_reports: lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{KalmanModel, LinearModel, RecursiveMotionModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme(u: f64) -> ReportingScheme {
        ReportingScheme::new(u, 2.0, 0.0).unwrap()
    }

    #[test]
    fn scheme_validation() {
        assert!(ReportingScheme::new(0.1, 2.0, 0.0).is_ok());
        assert_eq!(
            ReportingScheme::new(0.0, 2.0, 0.0),
            Err(SchemeError::BadUncertainty)
        );
        assert_eq!(ReportingScheme::new(0.1, 0.0, 0.0), Err(SchemeError::BadC));
        assert_eq!(
            ReportingScheme::new(0.1, 2.0, 1.0),
            Err(SchemeError::BadLossProbability)
        );
        assert!((scheme(0.1).sigma() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn linear_path_needs_few_reports_under_lm() {
        // An exactly linear path is perfectly predictable after 2 reports.
        let path: Vec<Point2> = (0..50).map(|i| Point2::new(i as f64 * 0.01, 0.0)).collect();
        let mut model = LinearModel::new();
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulate_reporting(&path, &mut model, &scheme(0.005), &mut rng);
        // Initial fix + one report to establish velocity; everything else
        // is predicted exactly.
        assert!(
            out.reports.len() <= 3,
            "too many reports: {}",
            out.reports.len()
        );
        assert_eq!(out.reconstructed.len(), 50);
        // Reported snapshots are exact; dead-reckoned ones carry σ = U/c.
        assert_eq!(out.reconstructed[0].sigma, 0.0);
        let dead_reckoned = out
            .reconstructed
            .points()
            .iter()
            .filter(|p| p.sigma > 0.0)
            .count();
        assert!(dead_reckoned >= 45);
    }

    #[test]
    fn erratic_path_reports_often() {
        // A zig-zag with jumps larger than U defeats the linear model.
        let path: Vec<Point2> = (0..40)
            .map(|i| Point2::new(if i % 2 == 0 { 0.0 } else { 1.0 }, i as f64 * 0.1))
            .collect();
        let mut model = LinearModel::new();
        let mut rng = StdRng::seed_from_u64(2);
        let out = simulate_reporting(&path, &mut model, &scheme(0.05), &mut rng);
        assert!(
            out.attempted_reports > 30,
            "zig-zag should defeat LM: {} attempts",
            out.attempted_reports
        );
        assert!(out.misprediction_rate() > 0.75);
    }

    #[test]
    fn reconstruction_error_bounded_when_no_loss() {
        // Without message loss, the server estimate is either exact (report)
        // or within U of the truth (otherwise the object would have
        // reported).
        let path: Vec<Point2> = (0..60)
            .map(|i| {
                let t = i as f64 * 0.1;
                Point2::new(t.sin() * 0.3 + 0.5, t.cos() * 0.3 + 0.5)
            })
            .collect();
        for m in [
            &mut LinearModel::new() as &mut dyn MotionModel,
            &mut KalmanModel::with_defaults(),
            &mut RecursiveMotionModel::with_defaults(),
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let u = 0.05;
            let out = simulate_reporting(&path, m, &scheme(u), &mut rng);
            for (i, sp) in out.reconstructed.points().iter().enumerate() {
                assert!(
                    sp.mean.distance(path[i]) <= u + 1e-9,
                    "{}: error at {i} is {}",
                    m.name(),
                    sp.mean.distance(path[i])
                );
            }
        }
    }

    #[test]
    fn message_loss_increases_uncertainty() {
        let path: Vec<Point2> = (0..80)
            .map(|i| Point2::new((i as f64 * 0.37).sin(), (i as f64 * 0.59).cos()))
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let lossy = ReportingScheme::new(0.05, 2.0, 0.5).unwrap();
        let mut model = LinearModel::new();
        let out = simulate_reporting(&path, &mut model, &lossy, &mut rng);
        assert!(out.lost_reports > 0, "50% loss must drop something");
        assert!(out.reports.len() + out.lost_reports >= out.attempted_reports);
    }

    #[test]
    fn deterministic_given_seed() {
        let path: Vec<Point2> = (0..30)
            .map(|i| Point2::new((i as f64 * 0.7).sin(), 0.0))
            .collect();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = LinearModel::new();
            let lossy = ReportingScheme::new(0.1, 2.0, 0.3).unwrap();
            simulate_reporting(&path, &mut model, &lossy, &mut rng).reports
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn empty_path_yields_empty_output() {
        let mut model = LinearModel::new();
        let mut rng = StdRng::seed_from_u64(0);
        let out = simulate_reporting(&[], &mut model, &scheme(0.1), &mut rng);
        assert!(out.reports.is_empty());
        assert!(out.reconstructed.is_empty());
        assert_eq!(out.misprediction_rate(), 0.0);
    }

    #[test]
    fn uncertainty_model_validation() {
        let base = ReportingScheme::new(0.05, 2.0, 0.0).unwrap();
        assert!(base
            .with_uncertainty_model(UncertaintyModel::GrowingWithTime { rate: 0.1 })
            .is_ok());
        assert_eq!(
            base.with_uncertainty_model(UncertaintyModel::GrowingWithTime { rate: -0.1 }),
            Err(SchemeError::BadUncertaintyModel)
        );
        assert_eq!(
            base.with_uncertainty_model(UncertaintyModel::GrowingWithDistance { rate: f64::NAN }),
            Err(SchemeError::BadUncertaintyModel)
        );
    }

    #[test]
    fn effective_u_formulas() {
        assert_eq!(UncertaintyModel::Constant.effective_u(0.1, 7, 3.0), 0.1);
        let t = UncertaintyModel::GrowingWithTime { rate: 0.5 };
        assert!((t.effective_u(0.1, 4, 0.0) - 0.3).abs() < 1e-12);
        let d = UncertaintyModel::GrowingWithDistance { rate: 2.0 };
        assert!((d.effective_u(0.1, 0, 1.5) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn growing_tolerance_reduces_reports() {
        // A wiggly path: with constant U every wiggle reports; with a
        // tolerance growing in elapsed time, later wiggles are absorbed.
        let path: Vec<Point2> = (0..60)
            .map(|i| Point2::new(i as f64 * 0.01, 0.03 * ((i as f64) * 1.3).sin()))
            .collect();
        let constant = ReportingScheme::new(0.02, 2.0, 0.0).unwrap();
        let growing = constant
            .with_uncertainty_model(UncertaintyModel::GrowingWithTime { rate: 0.6 })
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut m1 = LinearModel::new();
        let n_const = simulate_reporting(&path, &mut m1, &constant, &mut rng)
            .reports
            .len();
        let mut m2 = LinearModel::new();
        let n_grow = simulate_reporting(&path, &mut m2, &growing, &mut rng)
            .reports
            .len();
        assert!(
            n_grow < n_const,
            "growing tolerance should reduce reports: {n_grow} vs {n_const}"
        );
    }

    #[test]
    fn growing_uncertainty_inflates_sigma_between_reports() {
        // A perfectly straight path never reports after the velocity is
        // established, so sigma keeps growing under GrowingWithTime.
        let path: Vec<Point2> = (0..30).map(|i| Point2::new(i as f64 * 0.01, 0.0)).collect();
        let growing = ReportingScheme::new(0.02, 2.0, 0.0)
            .unwrap()
            .with_uncertainty_model(UncertaintyModel::GrowingWithTime { rate: 0.2 })
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = LinearModel::new();
        let out = simulate_reporting(&path, &mut model, &growing, &mut rng);
        let sigmas: Vec<f64> = out.reconstructed.points().iter().map(|p| p.sigma).collect();
        // After the last report, sigma is strictly increasing.
        let last_report = out.reports.last().unwrap().snapshot;
        for w in sigmas[last_report + 1..].windows(2) {
            assert!(w[1] > w[0], "sigma should grow: {w:?}");
        }
    }
}
