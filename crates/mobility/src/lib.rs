//! Mobile-object location reporting simulation (§3.1 of the paper).
//!
//! The paper's input data is produced by a *dead-reckoning* protocol: the
//! server runs a prediction model for every object; the object tracks the
//! same model and reports its true location only when it drifts more than
//! the tolerable uncertainty distance `U` from the prediction. Between
//! reports, the server's best knowledge of the object is the prediction
//! plus a normal error with `σ = U/c`.
//!
//! This crate builds that whole substrate:
//!
//! - [`MotionModel`]: snapshot-synchronous prediction models. Three
//!   implementations mirror the paper's §6.1 comparison set:
//!   [`LinearModel`] (LM, Wolfson et al. \[12\]), [`KalmanModel`] (linear
//!   Kalman filter, Jain et al. \[2\]) and [`RecursiveMotionModel`] (RMF,
//!   Tao et al. \[11\]).
//! - [`ReportingScheme`]: the `U`/`c` dead-reckoning protocol with optional
//!   message-loss injection.
//! - [`simulate_reporting`]: runs a ground-truth path through the protocol
//!   and returns both the report stream and the *imprecise trajectory* the
//!   server reconstructs — the exact input format the miner consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod models;
pub mod reporting;

pub use models::{KalmanModel, LinearModel, MotionModel, RecursiveMotionModel};
pub use reporting::{
    simulate_reporting, Report, ReportingScheme, SchemeError, SimulationOutput, UncertaintyModel,
};
