//! Snapshot-synchronous motion-prediction models.
//!
//! All three models in the paper's §6.1 comparison share one contract: at
//! every synchronized snapshot the model produces a *prediction* of the
//! object's location; then the snapshot "happens" and the model is advanced
//! with either the true location (a report was received) or nothing (dead
//! reckoning — the model's own prediction becomes its belief).
//!
//! The models are deliberately self-contained — no linear-algebra crate is
//! pulled in; the Kalman filter uses explicit 2×2 matrix arithmetic and the
//! recursive motion function solves its tiny least-squares system in closed
//! form.

use std::collections::VecDeque;
use trajgeo::{Point2, Vec2};

/// A snapshot-synchronous location prediction model.
///
/// Protocol per snapshot:
/// 1. call [`predict_next`](MotionModel::predict_next) to obtain the
///    prediction for the *next* snapshot;
/// 2. call [`advance`](MotionModel::advance) with `Some(loc)` if the object
///    reported its true location at that snapshot, `None` otherwise.
///
/// Models must behave sensibly before the first observation: they predict
/// their current belief (initially the origin) until they have seen data.
pub trait MotionModel {
    /// Human-readable name used in experiment output ("LM", "LKF", "RMF").
    fn name(&self) -> &'static str;

    /// Predicted location of the object at the next snapshot.
    fn predict_next(&self) -> Point2;

    /// Consumes one snapshot. `observed` carries the reported true location
    /// if a report was received; with `None` the model dead-reckons on its
    /// own prediction.
    fn advance(&mut self, observed: Option<Point2>);

    /// Resets the model to its initial state.
    fn reset(&mut self);
}

// ---------------------------------------------------------------------------
// Linear model (LM) — Wolfson et al. [12]
// ---------------------------------------------------------------------------

/// The paper's Equation (1): `predict_loc = last_loc + v × t`, with the
/// velocity vector estimated from the last two *reported* locations.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Last reported location and the snapshot counter at the report.
    last_report: Option<(Point2, u64)>,
    /// Previous reported location and its snapshot counter.
    prev_report: Option<(Point2, u64)>,
    /// Current snapshot counter.
    now: u64,
}

impl LinearModel {
    /// A fresh linear model.
    pub fn new() -> LinearModel {
        LinearModel {
            last_report: None,
            prev_report: None,
            now: 0,
        }
    }

    fn velocity(&self) -> Vec2 {
        match (self.prev_report, self.last_report) {
            (Some((p0, t0)), Some((p1, t1))) if t1 > t0 => (p1 - p0) / ((t1 - t0) as f64),
            _ => Vec2::ZERO,
        }
    }
}

impl Default for LinearModel {
    fn default() -> Self {
        Self::new()
    }
}

impl MotionModel for LinearModel {
    fn name(&self) -> &'static str {
        "LM"
    }

    fn predict_next(&self) -> Point2 {
        match self.last_report {
            Some((loc, t_rep)) => {
                let elapsed = (self.now + 1 - t_rep) as f64;
                loc + self.velocity() * elapsed
            }
            None => Point2::ORIGIN,
        }
    }

    fn advance(&mut self, observed: Option<Point2>) {
        self.now += 1;
        if let Some(loc) = observed {
            self.prev_report = self.last_report;
            self.last_report = Some((loc, self.now));
        }
    }

    fn reset(&mut self) {
        *self = LinearModel::new();
    }
}

// ---------------------------------------------------------------------------
// Linear Kalman filter (LKF) — Jain et al. [2]
// ---------------------------------------------------------------------------

/// Per-axis constant-velocity Kalman filter state: x = [pos, vel], with a
/// full 2×2 covariance. The x and y axes are filtered independently (the
/// process and measurement noises are isotropic).
#[derive(Debug, Clone, Copy)]
struct KalmanAxis {
    pos: f64,
    vel: f64,
    // Covariance [[p00, p01], [p01, p11]] (symmetric).
    p00: f64,
    p01: f64,
    p11: f64,
}

impl KalmanAxis {
    fn new() -> KalmanAxis {
        KalmanAxis {
            pos: 0.0,
            vel: 0.0,
            // Large prior uncertainty so the first measurements dominate.
            p00: 1e6,
            p01: 0.0,
            p11: 1e6,
        }
    }

    /// Time update with unit Δt: x ← F·x, P ← F·P·Fᵀ + Q, where
    /// F = [[1,1],[0,1]] and Q is the white-acceleration process noise.
    fn predict_step(&mut self, q: f64) {
        self.pos += self.vel;
        // FPFᵀ for F = [[1,1],[0,1]]:
        let p00 = self.p00 + 2.0 * self.p01 + self.p11;
        let p01 = self.p01 + self.p11;
        let p11 = self.p11;
        // Discrete white-noise acceleration Q = q·[[1/4,1/2],[1/2,1]] (dt=1).
        self.p00 = p00 + q * 0.25;
        self.p01 = p01 + q * 0.5;
        self.p11 = p11 + q;
    }

    /// Measurement update with H = [1, 0] and noise r.
    fn update(&mut self, z: f64, r: f64) {
        let s = self.p00 + r;
        let k0 = self.p00 / s;
        let k1 = self.p01 / s;
        let innov = z - self.pos;
        self.pos += k0 * innov;
        self.vel += k1 * innov;
        let p00 = (1.0 - k0) * self.p00;
        let p01 = (1.0 - k0) * self.p01;
        let p11 = self.p11 - k1 * self.p01;
        self.p00 = p00;
        self.p01 = p01;
        self.p11 = p11;
    }

    fn predicted_pos(&self) -> f64 {
        self.pos + self.vel
    }
}

/// 2-D constant-velocity linear Kalman filter.
#[derive(Debug, Clone)]
pub struct KalmanModel {
    x_axis: KalmanAxis,
    y_axis: KalmanAxis,
    /// Process (acceleration) noise intensity.
    q: f64,
    /// Measurement noise variance.
    r: f64,
    initialized: bool,
}

impl KalmanModel {
    /// Creates a filter with the given process noise intensity `q` and
    /// measurement noise variance `r` (both must be positive and finite;
    /// invalid values fall back to the defaults `q = 1e-4`, `r = 1e-6`).
    pub fn new(q: f64, r: f64) -> KalmanModel {
        let q = if q.is_finite() && q > 0.0 { q } else { 1e-4 };
        let r = if r.is_finite() && r > 0.0 { r } else { 1e-6 };
        KalmanModel {
            x_axis: KalmanAxis::new(),
            y_axis: KalmanAxis::new(),
            q,
            r,
            initialized: false,
        }
    }

    /// Default noise configuration suited to the unit-square workloads.
    pub fn with_defaults() -> KalmanModel {
        KalmanModel::new(1e-4, 1e-6)
    }
}

impl MotionModel for KalmanModel {
    fn name(&self) -> &'static str {
        "LKF"
    }

    fn predict_next(&self) -> Point2 {
        if !self.initialized {
            return Point2::ORIGIN;
        }
        Point2::new(self.x_axis.predicted_pos(), self.y_axis.predicted_pos())
    }

    fn advance(&mut self, observed: Option<Point2>) {
        if let Some(loc) = observed {
            if !self.initialized {
                self.x_axis.pos = loc.x;
                self.y_axis.pos = loc.y;
                self.initialized = true;
                return;
            }
            self.x_axis.predict_step(self.q);
            self.y_axis.predict_step(self.q);
            self.x_axis.update(loc.x, self.r);
            self.y_axis.update(loc.y, self.r);
        } else if self.initialized {
            self.x_axis.predict_step(self.q);
            self.y_axis.predict_step(self.q);
        }
    }

    fn reset(&mut self) {
        let (q, r) = (self.q, self.r);
        *self = KalmanModel::new(q, r);
    }
}

// ---------------------------------------------------------------------------
// Recursive motion function (RMF) — Tao et al. [11]
// ---------------------------------------------------------------------------

/// Order-2 recursive motion function: fits, per axis, the recurrence
/// `x_t = c₁·x_{t−1} + c₂·x_{t−2}` by least squares over a sliding window
/// of recent location estimates, then predicts by unrolling the recurrence.
/// Captures non-linear motions (turns, accelerations) that defeat LM.
#[derive(Debug, Clone)]
pub struct RecursiveMotionModel {
    /// Recent location estimates (reported or dead-reckoned), newest last.
    history: VecDeque<Point2>,
    /// Window size `f` (≥ 3; the paper's RMF uses small windows).
    window: usize,
}

impl RecursiveMotionModel {
    /// Creates an RMF with window size `f` (clamped to at least 3).
    pub fn new(window: usize) -> RecursiveMotionModel {
        RecursiveMotionModel {
            history: VecDeque::new(),
            window: window.max(3),
        }
    }

    /// Default window of 6 snapshots.
    pub fn with_defaults() -> RecursiveMotionModel {
        RecursiveMotionModel::new(6)
    }

    /// Least-squares fit of `x_t ≈ c1·x_{t−1} + c2·x_{t−2}` over the
    /// current window for one axis. Returns `None` if the normal equations
    /// are singular (e.g. a stationary object).
    fn fit_axis(vals: &[f64]) -> Option<(f64, f64)> {
        if vals.len() < 3 {
            return None;
        }
        // Normal equations for A·[c1, c2]ᵀ = b with rows [x_{t-1}, x_{t-2}].
        let (mut a11, mut a12, mut a22, mut b1, mut b2) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for t in 2..vals.len() {
            let (x1, x2, y) = (vals[t - 1], vals[t - 2], vals[t]);
            a11 += x1 * x1;
            a12 += x1 * x2;
            a22 += x2 * x2;
            b1 += x1 * y;
            b2 += x2 * y;
        }
        let det = a11 * a22 - a12 * a12;
        if det.abs() < 1e-12 {
            return None;
        }
        let c1 = (b1 * a22 - b2 * a12) / det;
        let c2 = (a11 * b2 - a12 * b1) / det;
        if c1.is_finite() && c2.is_finite() {
            Some((c1, c2))
        } else {
            None
        }
    }

    fn predict_axis(vals: &[f64]) -> f64 {
        let n = vals.len();
        match Self::fit_axis(vals) {
            Some((c1, c2)) => {
                let pred = c1 * vals[n - 1] + c2 * vals[n - 2];
                // Recurrences can blow up on degenerate windows; fall back
                // to linear extrapolation when the prediction is implausible
                // (further than 4× the last step).
                let step = (vals[n - 1] - vals[n - 2]).abs();
                let lin = 2.0 * vals[n - 1] - vals[n - 2];
                if !pred.is_finite() || (pred - vals[n - 1]).abs() > 4.0 * step.max(1e-9) {
                    lin
                } else {
                    pred
                }
            }
            None => {
                if n >= 2 {
                    2.0 * vals[n - 1] - vals[n - 2]
                } else if n == 1 {
                    vals[0]
                } else {
                    0.0
                }
            }
        }
    }
}

impl MotionModel for RecursiveMotionModel {
    fn name(&self) -> &'static str {
        "RMF"
    }

    fn predict_next(&self) -> Point2 {
        if self.history.is_empty() {
            return Point2::ORIGIN;
        }
        let xs: Vec<f64> = self.history.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = self.history.iter().map(|p| p.y).collect();
        Point2::new(Self::predict_axis(&xs), Self::predict_axis(&ys))
    }

    fn advance(&mut self, observed: Option<Point2>) {
        let est = observed.unwrap_or_else(|| self.predict_next());
        self.history.push_back(est);
        while self.history.len() > self.window {
            self.history.pop_front();
        }
    }

    fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(model: &mut dyn MotionModel, path: &[Point2]) {
        for p in path {
            model.advance(Some(*p));
        }
    }

    #[test]
    fn linear_model_extrapolates_constant_velocity() {
        let mut m = LinearModel::new();
        drive(&mut m, &[Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)]);
        // Velocity (1,1)/snapshot; next position should be (2,2).
        let p = m.predict_next();
        assert!((p.x - 2.0).abs() < 1e-12 && (p.y - 2.0).abs() < 1e-12);
        // Dead-reckoning two more snapshots extends the line.
        m.advance(None);
        let p = m.predict_next();
        assert!((p.x - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_model_with_one_report_predicts_stationary() {
        let mut m = LinearModel::new();
        m.advance(Some(Point2::new(5.0, 5.0)));
        assert_eq!(m.predict_next(), Point2::new(5.0, 5.0));
    }

    #[test]
    fn linear_model_velocity_accounts_for_gaps() {
        let mut m = LinearModel::new();
        m.advance(Some(Point2::new(0.0, 0.0)));
        m.advance(None);
        m.advance(None);
        m.advance(Some(Point2::new(3.0, 0.0))); // 3 units over 3 snapshots
        let p = m.predict_next();
        assert!((p.x - 4.0).abs() < 1e-12, "vel should be 1.0/snapshot");
    }

    #[test]
    fn kalman_converges_on_constant_velocity_track() {
        let mut m = KalmanModel::with_defaults();
        let path: Vec<Point2> = (0..30).map(|i| Point2::new(i as f64 * 0.1, 0.5)).collect();
        drive(&mut m, &path);
        let p = m.predict_next();
        assert!((p.x - 3.0).abs() < 0.02, "predicted x = {}", p.x);
        assert!((p.y - 0.5).abs() < 0.02);
    }

    #[test]
    fn kalman_coasts_through_missing_reports() {
        let mut m = KalmanModel::with_defaults();
        let path: Vec<Point2> = (0..20).map(|i| Point2::new(i as f64, 0.0)).collect();
        drive(&mut m, &path);
        m.advance(None);
        m.advance(None);
        let p = m.predict_next();
        // After coasting 2 steps from x=19 belief, prediction ≈ 22.
        assert!((p.x - 22.0).abs() < 0.5, "predicted x = {}", p.x);
    }

    #[test]
    fn rmf_learns_geometric_acceleration() {
        // x_t = 2·x_{t−1} − 0.96·x_{t−2} gives damped oscillatory growth;
        // use a simple accelerating track x_t = t² which an order-2
        // recurrence fits exactly on 3+ points (x_t = 2x_{t−1} − x_{t−2} + 2
        // — not exact without intercept, so allow tolerance).
        let mut m = RecursiveMotionModel::new(6);
        let path: Vec<Point2> = (1..8).map(|i| Point2::new((i * i) as f64, 0.0)).collect();
        drive(&mut m, &path);
        let p = m.predict_next();
        // True next is 64; linear extrapolation gives 62; RMF should do at
        // least as well as linear.
        assert!(p.x > 61.0 && p.x < 70.0, "predicted {}", p.x);
    }

    #[test]
    fn rmf_exactly_tracks_linear_motion() {
        let mut m = RecursiveMotionModel::with_defaults();
        let path: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64, 2.0)).collect();
        drive(&mut m, &path);
        let p = m.predict_next();
        assert!((p.x - 10.0).abs() < 1e-6, "predicted {}", p.x);
        assert!((p.y - 2.0).abs() < 1e-6);
    }

    #[test]
    fn rmf_handles_stationary_object() {
        let mut m = RecursiveMotionModel::with_defaults();
        drive(&mut m, &[Point2::new(1.0, 1.0); 6]);
        let p = m.predict_next();
        assert!((p.x - 1.0).abs() < 1e-9 && (p.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let models: Vec<Box<dyn MotionModel>> = vec![
            Box::new(LinearModel::new()),
            Box::new(KalmanModel::with_defaults()),
            Box::new(RecursiveMotionModel::with_defaults()),
        ];
        for mut m in models {
            drive(m.as_mut(), &[Point2::new(3.0, 3.0), Point2::new(4.0, 4.0)]);
            m.reset();
            assert_eq!(
                m.predict_next(),
                Point2::ORIGIN,
                "{} reset must clear state",
                m.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(LinearModel::new().name(), "LM");
        assert_eq!(KalmanModel::with_defaults().name(), "LKF");
        assert_eq!(RecursiveMotionModel::with_defaults().name(), "RMF");
    }
}
