//! The streaming contract: after **every** event (arrival or eviction),
//! the stream miner's top-k is bit-identical — same patterns, same NM bit
//! patterns, same groups — to a from-scratch batch [`trajpattern::Miner`]
//! run over the current window contents. Also across checkpoint/resume:
//! a miner restored from a v2 checkpoint continues the stream exactly as
//! one that never stopped.

use proptest::prelude::*;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::{MinedPattern, Miner, MiningParams};
use trajstream::StreamMiner;

fn arb_trajectories() -> impl Strategy<Value = Vec<Trajectory>> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.25), 2..7),
        3..12,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|pts| {
                Trajectory::new(
                    pts.into_iter()
                        .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    })
}

fn batch_mine(data: &Dataset, grid: &Grid, params: &MiningParams) -> Vec<MinedPattern> {
    if data.is_empty() {
        return Vec::new();
    }
    Miner::new(data, grid)
        .params(params.clone())
        .mine()
        .expect("batch mining the window must succeed")
        .patterns
}

fn assert_topk_eq(stream: &StreamMiner, batch: &[MinedPattern], what: &str) {
    assert_eq!(
        stream.topk().len(),
        batch.len(),
        "{what}: top-k size diverged from batch"
    );
    for (i, (a, b)) in stream.topk().iter().zip(batch).enumerate() {
        assert_eq!(a.pattern, b.pattern, "{what}: pattern #{i} diverged");
        assert_eq!(
            a.nm.to_bits(),
            b.nm.to_bits(),
            "{what}: NM bits of #{i} diverged ({} vs {})",
            a.nm,
            b.nm
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streamed top-k == batch top-k at every prefix of the event
    /// sequence, under interleaved arrivals and window-driven evictions.
    #[test]
    fn streamed_topk_is_bit_identical_to_batch_at_every_prefix(
        trajs in arb_trajectories(),
        nx in 2u32..5,
        ny in 2u32..5,
        k in 1usize..6,
        window in 2u64..5,
        delta in 0.03f64..0.15,
    ) {
        let grid = Grid::new(BBox::unit(), nx, ny).unwrap();
        let params = MiningParams::new(k, delta).unwrap().with_max_len(4).unwrap();
        let mut stream = StreamMiner::new(grid.clone(), params.clone()).unwrap();
        for traj in trajs {
            let seq = stream.push(traj);
            let data = stream.window_dataset();
            assert_topk_eq(&stream, &batch_mine(&data, &grid, &params), "after push");
            if stream.evict_before(seq.saturating_sub(window - 1)) > 0 {
                let data = stream.window_dataset();
                assert_topk_eq(&stream, &batch_mine(&data, &grid, &params), "after evict");
            }
        }
    }

    /// Checkpoint mid-stream, resume, and finish: the resumed miner's
    /// every subsequent snapshot matches both the uninterrupted miner and
    /// the batch miner, bit for bit. Counters survive too.
    #[test]
    fn checkpoint_resume_preserves_bit_identity(
        trajs in arb_trajectories(),
        k in 1usize..5,
        split in 1usize..6,
        delta in 0.04f64..0.12,
    ) {
        let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
        let params = MiningParams::new(k, delta).unwrap().with_max_len(3).unwrap();
        let split = split.min(trajs.len() - 1);
        let mut live = StreamMiner::new(grid.clone(), params.clone()).unwrap();
        for traj in &trajs[..split] {
            let seq = live.push(traj.clone());
            live.evict_before(seq.saturating_sub(3));
        }

        let path = std::env::temp_dir().join(format!(
            "trajstream-prop-{}-{split}-{k}",
            std::process::id()
        ));
        live.checkpoint(&path).unwrap();
        let mut resumed = StreamMiner::resume(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(resumed.stats(), live.stats());
        prop_assert_eq!(resumed.next_seq(), live.next_seq());
        assert_topk_eq(&resumed, &batch_mine(&live.window_dataset(), &grid, &params), "at resume");

        for traj in &trajs[split..] {
            let a = live.push(traj.clone());
            let b = resumed.push(traj.clone());
            prop_assert_eq!(a, b);
            live.evict_before(a.saturating_sub(3));
            resumed.evict_before(b.saturating_sub(3));
            let batch = batch_mine(&live.window_dataset(), &grid, &params);
            assert_topk_eq(&live, &batch, "live after resume point");
            assert_topk_eq(&resumed, &batch, "resumed");
        }
        prop_assert_eq!(resumed.stats(), live.stats());
    }
}

/// Deterministic end-to-end run on a generated workload: stream a
/// zebranet event log through a window, checking bit-identity at every
/// emission point (what the CI smoke job replays through the CLI).
#[test]
fn zebranet_replay_matches_batch() {
    let config = datagen::ZebraConfig {
        ..Default::default()
    };
    let paths = config.paths(7);
    let data = datagen::observe_directly(&paths, 0.02, 7);
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let params = MiningParams::new(5, 0.05)
        .unwrap()
        .with_max_len(4)
        .unwrap()
        .with_gamma(0.3)
        .unwrap();
    let mut stream = StreamMiner::new(grid.clone(), params.clone()).unwrap();
    for (i, traj) in data.trajectories().iter().take(24).cloned().enumerate() {
        let seq = stream.push(traj);
        stream.evict_before(seq.saturating_sub(9));
        if i % 5 == 4 {
            let window = stream.window_dataset();
            let batch = batch_mine(&window, &grid, &params);
            assert_topk_eq(&stream, &batch, "zebranet replay");
        }
    }
    let s = stream.stats();
    assert_eq!(s.arrivals, 24);
    assert!(s.deltas_applied > 0);
    assert!(s.ledger_patterns > 0);
}
