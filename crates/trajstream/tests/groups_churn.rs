//! Pattern-group discovery (`trajpattern::groups`) under streaming churn:
//! when `gamma` is set, the stream miner's groups after every event must
//! equal the batch miner's groups over the window — same partition, same
//! member order, same representatives, same NM bits — through arrivals,
//! evictions, window emptying, and refills.

use trajdata::{SnapshotPoint, Trajectory};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::{Miner, MiningParams, PatternGroup};
use trajstream::StreamMiner;

fn corridor(y: f64, jitter: f64, sigma: f64) -> Trajectory {
    Trajectory::new(
        (0..5)
            .map(|i| {
                SnapshotPoint::new(Point2::new(0.1 + i as f64 * 0.2, y + jitter), sigma).unwrap()
            })
            .collect(),
    )
    .unwrap()
}

fn assert_groups_eq(streamed: &[PatternGroup], batch: &[PatternGroup], what: &str) {
    assert_eq!(streamed.len(), batch.len(), "{what}: group count diverged");
    for (gi, (a, b)) in streamed.iter().zip(batch).enumerate() {
        assert_eq!(
            a.patterns.len(),
            b.patterns.len(),
            "{what}: size of group #{gi} diverged"
        );
        for (x, y) in a.patterns.iter().zip(&b.patterns) {
            assert_eq!(
                x.pattern, y.pattern,
                "{what}: member of group #{gi} diverged"
            );
            assert_eq!(
                x.nm.to_bits(),
                y.nm.to_bits(),
                "{what}: member NM bits in group #{gi} diverged"
            );
        }
        assert_eq!(
            a.representative().pattern,
            b.representative().pattern,
            "{what}: representative of group #{gi} diverged"
        );
    }
}

#[test]
fn streamed_groups_match_batch_under_churn() {
    let grid = Grid::new(BBox::unit(), 5, 5).unwrap();
    let params = MiningParams::new(8, 0.06)
        .unwrap()
        .with_max_len(4)
        .unwrap()
        .with_gamma(0.4)
        .unwrap();
    let mut stream = StreamMiner::new(grid.clone(), params.clone()).unwrap();

    // Two parallel corridors (adjacent rows → groupable patterns) plus a
    // drifting stray; trajectories arrive interleaved and the window
    // slides, so group membership genuinely churns.
    let mut events: Vec<Trajectory> = Vec::new();
    for i in 0..9 {
        events.push(corridor(0.3, 0.004 * i as f64, 0.02));
        events.push(corridor(0.5, -0.003 * i as f64, 0.02));
        if i % 3 == 0 {
            events.push(corridor(0.7 + 0.02 * i as f64, 0.0, 0.05));
        }
    }

    for traj in events {
        let seq = stream.push(traj);
        stream.evict_before(seq.saturating_sub(6));
        let window = stream.window_dataset();
        let batch = Miner::new(&window, &grid)
            .params(params.clone())
            .mine()
            .unwrap();
        assert_groups_eq(stream.groups(), &batch.groups, "churn step");
        // Every group member must come from the current top-k.
        for g in stream.groups() {
            for m in &g.patterns {
                assert!(stream.topk().iter().any(|t| t.pattern == m.pattern));
            }
        }
    }
}

#[test]
fn groups_survive_window_emptying_and_refill() {
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let params = MiningParams::new(6, 0.08)
        .unwrap()
        .with_max_len(3)
        .unwrap()
        .with_gamma(0.5)
        .unwrap();
    let mut stream = StreamMiner::new(grid.clone(), params.clone()).unwrap();
    for i in 0..4 {
        stream.push(corridor(0.35, 0.002 * i as f64, 0.03));
    }
    assert!(!stream.groups().is_empty());

    // Drain completely: no window, no groups.
    stream.evict_before(stream.next_seq());
    assert!(stream.groups().is_empty());
    assert!(stream.topk().is_empty());

    // Refill from the (retained) ledger; groups must match batch again.
    for i in 0..3 {
        stream.push(corridor(0.6, 0.002 * i as f64, 0.03));
    }
    let window = stream.window_dataset();
    let batch = Miner::new(&window, &grid)
        .params(params.clone())
        .mine()
        .unwrap();
    assert_groups_eq(stream.groups(), &batch.groups, "after refill");
}
