//! Incremental sliding-window top-k pattern maintenance (`trajstream`).
//!
//! The batch miner answers "top-k patterns of dataset `D`"; this crate
//! answers the same question *continuously* as trajectories arrive and
//! expire from a sliding window, without re-mining the world on every
//! event. Two structural facts of the paper make that possible:
//!
//! 1. **Additivity.** `NM(P) = Σ_{T∈D} NM(P,T)` — a pattern's score is a
//!    sum of independent per-trajectory contributions, so arrival and
//!    eviction are *delta updates* on a maintained contribution ledger
//!    `pattern → [NM(P,T) per window entry]`: an arrival scores each
//!    ledger pattern against one trajectory (`O(patterns)`), an eviction
//!    just drops the front contributions.
//! 2. **Exact certification.** Folding each ledger row in window order
//!    yields *exact* NM values for the current window. Per event, a
//!    [`trajpattern::SeedCertifier`] replays the min-max/1-extension
//!    pruning decisions over those folded NMs without touching the data:
//!    if every candidate pair is either bound-pruned or already in the
//!    ledger, the top-k is the ledger's own best k and the event costs
//!    `O(|ledger|)` — no dataset, no scorer, no pair memo. When
//!    accumulated deltas move the bounds enough that a candidate passes
//!    which the ledger cannot answer, the event becomes a *repair*: the
//!    growing process re-runs seeded with the folded NMs
//!    ([`trajpattern::mine_seeded`]) and scores only what the ledger is
//!    missing, which is then absorbed so later events are deltas again.
//!
//! The result after every event is **bit-identical** to batch
//! [`trajpattern::Miner`] over the window contents (property-tested in
//! `tests/stream_batch_identity.rs`, including across checkpoint/resume).
//! [`StreamStats`] counts deltas, repairs and repair depth so operators
//! can see how often certification failed. Stream state checkpoints to a
//! `trajpattern-checkpoint v2` file (window + ledger), reusing the v1
//! error type and encoding conventions.
//!
//! Memory note: the ledger retains every pattern the growth has ever
//! scored (that is what makes steady-state events pure deltas), so it is
//! `O(scored patterns × window)`. For the paper-scale workloads this is
//! a few thousand floats; a long-running deployment would add periodic
//! ledger pruning at the cost of extra repairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;

use std::collections::VecDeque;
use trajdata::{Dataset, Trajectory};
use trajgeo::fxhash::FxHashMap;
use trajgeo::Grid;
use trajpattern::{
    certified_topk, effective_max_len_from, mine_seeded, MinedPattern, MiningParams, ParamsError,
    Pattern, PatternIndex, Scorer, SeedCertifier,
};

pub use checkpoint::{parse_checkpoint, STREAM_VERSION_LINE};
pub use trajpattern::{CheckpointError, MiningOutcome, MiningStats, PatternGroup, ScorerStats};

trajpattern::counter_stats! {
    /// Counters describing a stream miner's life so far.
    ///
    /// Defined through [`trajpattern::counter_stats!`], so the serde
    /// field names, the checkpoint `stats` line order (persisted fields
    /// only — `window_len` and `ledger_patterns` are recomputed from the
    /// window and ledger sections on load), and the Prometheus gauge
    /// names all derive from this one field list.
    pub struct StreamStats {
        /// Trajectories pushed.
        persisted arrivals: u64,
        /// Trajectories evicted.
        persisted evictions: u64,
        /// Per-pattern ledger delta updates applied (one per ledger pattern
        /// per arrival).
        persisted deltas_applied: u64,
        /// Maintenance passes answered by the pure-delta certificate alone:
        /// the ledger's folded NMs proved no candidate needs scoring, so the
        /// top-k was selected straight from the ledger — no window dataset,
        /// no scorer, no pair enumeration.
        persisted certified: u64,
        /// Maintenance passes that had to score at least one candidate
        /// against the window — the ledger could no longer certify the top-k.
        persisted repairs: u64,
        /// Candidates scored across all repairs.
        persisted repair_scored: u64,
        /// Deepest repair re-growth (levels of the growing process).
        persisted max_repair_depth: usize,
        /// Current window occupancy.
        derived window_len: usize,
        /// Patterns currently tracked by the contribution ledger.
        derived ledger_patterns: usize,
        /// Worker-shard panics absorbed by sequential rescoring (see
        /// [`trajpattern::MiningStats::degraded_shard_rescores`]).
        persisted degraded_shard_rescores: u64,
    }
}

/// Per-pattern contribution ledger: `contribs[i][j]` is `NM(patterns[i],
/// window[j])`, kept aligned with the window deque. Folding a row in
/// order reproduces the batch scorer's reduction bit-for-bit.
#[derive(Default)]
struct Ledger {
    patterns: Vec<Pattern>,
    index: FxHashMap<Pattern, usize>,
    contribs: Vec<VecDeque<f64>>,
}

impl Ledger {
    fn contains(&self, p: &Pattern) -> bool {
        self.index.contains_key(p)
    }

    fn add(&mut self, p: Pattern, contribs: VecDeque<f64>) {
        debug_assert!(!self.contains(&p));
        self.index.insert(p.clone(), self.patterns.len());
        self.patterns.push(p);
        self.contribs.push(contribs);
    }

    /// Exact NM of every ledger pattern over the current window (aligned
    /// with `patterns`), folded so the bits match what batch mining puts
    /// in its store. Multi-cell patterns fold front-to-back with
    /// `total += c` — the DESIGN.md §5 reduction order of
    /// `Scorer::score_batch`. Singulars must instead reproduce
    /// `Scorer::nm_all_singulars` (which seeds the batch grower):
    /// `floor_log·n + Σ (c − floor_log)`. The two expressions are equal but
    /// not bit-equal, and for trajectories that never touch the cell
    /// `c == floor_log` exactly, so their `c − floor_log` terms are exact
    /// `+0.0` no-ops — matching `nm_all_singulars` skipping them.
    fn fold_nms(&self, floor_log: f64) -> Vec<f64> {
        self.patterns
            .iter()
            .zip(&self.contribs)
            .map(|(p, row)| {
                if p.is_singular() {
                    let mut total = floor_log * row.len() as f64;
                    for &c in row {
                        total += c - floor_log;
                    }
                    total
                } else {
                    let mut total = 0.0;
                    for &c in row {
                        total += c;
                    }
                    total
                }
            })
            .collect()
    }
}

/// Maintains the top-k pattern set over a sliding window of trajectories.
///
/// ```
/// use trajdata::Trajectory;
/// use trajgeo::{BBox, Grid, Point2};
/// use trajpattern::MiningParams;
/// use trajstream::StreamMiner;
///
/// let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
/// let mut miner = StreamMiner::new(grid, MiningParams::new(3, 0.1).unwrap()).unwrap();
/// for _ in 0..8 {
///     // Keep at most 5 trajectories in the window.
///     miner.slide(
///         Trajectory::from_exact((0..4).map(|i| Point2::new(0.125 + i as f64 * 0.25, 0.625))),
///         5,
///     );
/// }
/// assert_eq!(miner.topk().len(), 3);
/// assert_eq!(miner.stats().window_len, 5);
/// ```
pub struct StreamMiner {
    grid: Grid,
    params: MiningParams,
    next_seq: u64,
    window: VecDeque<(u64, Trajectory)>,
    ledger: Ledger,
    /// Membership index over `ledger.patterns`, rebuilt whenever a repair
    /// changes ledger membership; `None` until the bootstrap mine.
    certifier: Option<SeedCertifier>,
    last: MiningOutcome,
    stats: StreamStats,
    /// Bumped by [`StreamMiner::maintain`] only when the maintained top-k
    /// actually changed (pattern set or NM bits). Derived state: starts at
    /// zero on construction *and* on checkpoint resume — consumers compare
    /// against the last value they observed, never against a persisted
    /// absolute.
    topk_version: u64,
}

impl StreamMiner {
    /// Creates an empty stream miner over `grid` with the given mining
    /// parameters (validated here, like [`trajpattern::Miner`]).
    pub fn new(grid: Grid, params: MiningParams) -> Result<StreamMiner, ParamsError> {
        params.validate()?;
        Ok(StreamMiner {
            grid,
            params,
            next_seq: 0,
            window: VecDeque::new(),
            ledger: Ledger::default(),
            certifier: None,
            last: MiningOutcome {
                patterns: Vec::new(),
                groups: Vec::new(),
                stats: MiningStats::default(),
                scorer: trajpattern::ScorerStats::default(),
            },
            stats: StreamStats::default(),
            topk_version: 0,
        })
    }

    /// The grid patterns are defined over.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The mining parameters.
    pub fn params(&self) -> &MiningParams {
        &self.params
    }

    /// Pushes one arriving trajectory into the window and re-certifies the
    /// top-k. Returns the arrival's sequence number (0-based, dense).
    pub fn push(&mut self, traj: Trajectory) -> u64 {
        let seq = self.push_inner(traj);
        self.maintain();
        seq
    }

    /// Evicts every window entry with sequence number `< seq` (dropping
    /// their ledger contributions) and, if anything left, re-certifies the
    /// top-k. Returns the number of trajectories evicted.
    pub fn evict_before(&mut self, seq: u64) -> usize {
        let dropped = self.evict_inner(seq);
        if dropped > 0 {
            self.maintain();
        }
        dropped
    }

    /// Pushes `traj` and evicts down to the `window` most recent
    /// trajectories (at least the new arrival) in one event — equivalent
    /// to [`StreamMiner::push`] followed by [`StreamMiner::evict_before`],
    /// but with a single certification/maintenance pass instead of two.
    /// This is the natural operation for a fixed-capacity sliding window
    /// and what the `stream` CLI and benchmarks use. Returns the arrival's
    /// sequence number.
    pub fn slide(&mut self, traj: Trajectory, window: u64) -> u64 {
        let seq = self.push_inner(traj);
        self.evict_inner((seq + 1).saturating_sub(window.max(1)));
        self.maintain();
        seq
    }

    /// [`StreamMiner::push`] without the maintenance pass.
    fn push_inner(&mut self, traj: Trajectory) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;

        // Delta-update the ledger: score every tracked pattern against the
        // newcomer alone through the unified query API, with a spatial
        // index over the tracked patterns (patterns the trajectory never
        // comes near resolve to the floor constant analytically). A
        // single-trajectory fold equals the raw per-trajectory
        // contribution, so appending these keeps every ledger row
        // bit-identical to what full-window scoring would produce for that
        // trajectory index.
        if !self.ledger.patterns.is_empty() {
            let single: Dataset = std::iter::once(traj.clone()).collect();
            let scorer = Scorer::new(&single, &self.grid, self.params.delta, self.params.min_prob);
            let index = PatternIndex::build(&self.ledger.patterns, &self.grid);
            let nms = scorer.query(&self.ledger.patterns).with_index(&index).run();
            for (row, nm) in self.ledger.contribs.iter_mut().zip(nms) {
                row.push_back(nm);
            }
            self.stats.deltas_applied += self.ledger.patterns.len() as u64;
        }

        self.window.push_back((seq, traj));
        self.stats.arrivals += 1;
        seq
    }

    /// [`StreamMiner::evict_before`] without the maintenance pass.
    fn evict_inner(&mut self, seq: u64) -> usize {
        let mut dropped = 0;
        while self.window.front().is_some_and(|(s, _)| *s < seq) {
            self.window.pop_front();
            for row in self.ledger.contribs.iter_mut() {
                row.pop_front();
            }
            dropped += 1;
        }
        self.stats.evictions += dropped as u64;
        dropped
    }

    /// The current top-k patterns — bit-identical to what
    /// [`trajpattern::Miner::mine`] returns for the window contents.
    pub fn topk(&self) -> &[MinedPattern] {
        &self.last.patterns
    }

    /// Pattern groups over the current top-k (when `params.gamma` is set)
    /// — identical to the batch miner's.
    pub fn groups(&self) -> &[PatternGroup] {
        &self.last.groups
    }

    /// Stream counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Mining counters of the most recent maintenance pass.
    pub fn last_mining_stats(&self) -> &MiningStats {
        &self.last.stats
    }

    /// Scorer counters of the most recent pass that touched the data
    /// (zeroed when the current state came from a checkpoint — engine
    /// telemetry is not persisted; see [`trajpattern::ScorerStats`]).
    pub fn last_scorer_stats(&self) -> trajpattern::ScorerStats {
        self.last.scorer
    }

    /// Sequence numbers and trajectories currently in the window, oldest
    /// first.
    pub fn window(&self) -> impl Iterator<Item = (u64, &Trajectory)> {
        self.window.iter().map(|(s, t)| (*s, t))
    }

    /// The window contents as a batch [`Dataset`] (window order) — what
    /// the bit-identity property compares against.
    pub fn window_dataset(&self) -> Dataset {
        self.window.iter().map(|(_, t)| t.clone()).collect()
    }

    /// The sequence number the next [`StreamMiner::push`] will return.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// A change counter over [`StreamMiner::topk`]: bumped by each
    /// maintenance pass whose resulting top-k differs from the previous
    /// one (different patterns, or the same patterns with different NM
    /// bits). Events absorbed without moving the top-k leave it untouched,
    /// so a consumer republishing derived state (for example the live
    /// server swapping a pre-serialized snapshot) can skip no-op updates
    /// by comparing against the last version it saw.
    ///
    /// The counter is *derived* state: it restarts at zero on
    /// construction and on checkpoint resume, so only deltas within one
    /// process are meaningful.
    pub fn topk_version(&self) -> u64 {
        self.topk_version
    }

    /// Whether `new` and `old` are the same top-k, bit for bit.
    fn same_topk(a: &[MinedPattern], b: &[MinedPattern]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.pattern == y.pattern && x.nm.to_bits() == y.nm.to_bits())
    }

    /// Replaces the maintained outcome, bumping [`StreamMiner::topk_version`]
    /// if the top-k moved. Every `maintain` exit path funnels through here.
    fn publish(&mut self, out: MiningOutcome) {
        if !Self::same_topk(&out.patterns, &self.last.patterns) {
            self.topk_version += 1;
        }
        self.last = out;
    }

    /// Re-certifies the top-k for the current window. Fast path first:
    /// fold the ledger and ask the [`SeedCertifier`] whether a seeded
    /// re-growth would score anything — if not, the top-k is the ledger's
    /// own best k and the event costs `O(|ledger|)` with zero data access.
    /// Otherwise fall back to seeded re-growth over the window and absorb
    /// anything newly scored (so the next event can answer for it by
    /// delta alone).
    fn maintain(&mut self) {
        self.stats.window_len = self.window.len();
        if self.window.is_empty() {
            self.publish(MiningOutcome {
                patterns: Vec::new(),
                groups: Vec::new(),
                stats: MiningStats::default(),
                scorer: trajpattern::ScorerStats::default(),
            });
            self.stats.ledger_patterns = self.ledger.patterns.len();
            return;
        }

        let nms = self.ledger.fold_nms(self.params.min_prob.ln());
        let bootstrap = nms.is_empty();

        let longest = self.window.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
        let eff_max_len = effective_max_len_from(&self.params, longest);
        if let Some(cert) = &self.certifier {
            if cert.certify(&self.params, eff_max_len, &nms) {
                let mut out = certified_topk(
                    &self.ledger.patterns,
                    &nms,
                    &self.params,
                    eff_max_len,
                    &self.grid,
                );
                // Mining counters describe the last pass that touched the
                // data; a certified pass performs no mining work.
                out.stats = self.last.stats.clone();
                out.scorer = self.last.scorer;
                self.publish(out);
                self.stats.certified += 1;
                self.stats.ledger_patterns = self.ledger.patterns.len();
                return;
            }
        }

        // Certificate failed (or bootstrap): materialize the folded seed
        // and hand it to the seeded re-growth.
        let seed: Vec<MinedPattern> = self
            .ledger
            .patterns
            .iter()
            .zip(&nms)
            .map(|(p, &nm)| MinedPattern::new(p.clone(), nm))
            .collect();
        let data: Dataset = self.window.iter().map(|(_, t)| t.clone()).collect();
        let scorer = Scorer::with_threads(
            &data,
            &self.grid,
            self.params.delta,
            self.params.min_prob,
            self.params.threads,
        );
        let out = mine_seeded(&scorer, &self.params, &seed)
            .expect("ledger maintains the seed invariants (all singulars, exact finite NMs)");

        self.stats.degraded_shard_rescores += out.outcome.stats.degraded_shard_rescores;
        // The very first maintenance is a from-scratch mine, not a
        // certification failure; only count repairs after that.
        if !bootstrap && out.newly_scored > 0 {
            self.stats.repairs += 1;
            self.stats.repair_scored += out.newly_scored;
            self.stats.max_repair_depth = self.stats.max_repair_depth.max(out.levels);
        }

        // Absorb newly scored patterns so the next event can answer for
        // them by delta update alone, and rebuild the certifier's
        // membership index over the (possibly grown) ledger.
        for m in &out.store {
            if !self.ledger.contains(&m.pattern) {
                let contribs: VecDeque<f64> = scorer.nm_contributions(&m.pattern).into();
                self.ledger.add(m.pattern.clone(), contribs);
            }
        }
        self.certifier = Some(SeedCertifier::new(&self.ledger.patterns));
        self.stats.ledger_patterns = self.ledger.patterns.len();
        let mut outcome = out.outcome;
        // Absorption scored more patterns; report the scorer's final tally.
        outcome.scorer = scorer.stats();
        self.publish(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::SnapshotPoint;
    use trajgeo::{BBox, Point2};

    fn sweep(offset: f64) -> Trajectory {
        Trajectory::new(
            (0..4)
                .map(|i| {
                    SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625 + offset), 0.03)
                        .unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    fn miner(k: usize) -> StreamMiner {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        StreamMiner::new(
            grid,
            MiningParams::new(k, 0.1).unwrap().with_max_len(3).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn push_matches_batch_mine() {
        let mut m = miner(4);
        for i in 0..6 {
            m.push(sweep(0.001 * i as f64));
        }
        let data = m.window_dataset();
        let batch = trajpattern::Miner::new(&data, m.grid())
            .params(m.params().clone())
            .mine()
            .unwrap();
        assert_eq!(m.topk().len(), batch.patterns.len());
        for (a, b) in m.topk().iter().zip(&batch.patterns) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
    }

    #[test]
    fn eviction_shrinks_the_window() {
        let mut m = miner(3);
        let mut last = 0;
        for i in 0..8 {
            last = m.push(sweep(0.002 * i as f64));
        }
        assert_eq!(m.stats().window_len, 8);
        let dropped = m.evict_before(last - 2);
        assert_eq!(dropped, 5);
        assert_eq!(m.stats().window_len, 3);
        assert_eq!(m.stats().evictions, 5);
        // Still identical to batch over the 3 survivors.
        let data = m.window_dataset();
        assert_eq!(data.len(), 3);
        let batch = trajpattern::Miner::new(&data, m.grid())
            .params(m.params().clone())
            .mine()
            .unwrap();
        for (a, b) in m.topk().iter().zip(&batch.patterns) {
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
    }

    #[test]
    fn steady_state_applies_deltas() {
        let mut m = miner(3);
        for i in 0..10 {
            let seq = m.push(sweep(0.001 * i as f64));
            m.evict_before(seq.saturating_sub(3));
        }
        let s = m.stats();
        assert!(s.deltas_applied > 0, "{s:?}");
        assert!(s.ledger_patterns >= 16, "{s:?}");
        // Near-identical repeats: after bootstrap, the certificate
        // answers most events without touching the data.
        assert!(s.certified > 0, "{s:?}");
        assert!(s.repairs <= s.arrivals, "{s:?}");
    }

    #[test]
    fn slide_matches_batch_and_separate_ops() {
        // One slide-driven miner, one push+evict-driven miner: after every
        // event both must agree with each other and with batch mining over
        // the window contents, bit for bit.
        let mut slid = miner(3);
        let mut stepped = miner(3);
        for i in 0..10 {
            let seq = slid.slide(sweep(0.0015 * i as f64), 4);
            let seq2 = stepped.push(sweep(0.0015 * i as f64));
            stepped.evict_before((seq2 + 1).saturating_sub(4));
            assert_eq!(seq, seq2);
            assert_eq!(slid.stats().window_len, stepped.stats().window_len);
            let batch = trajpattern::Miner::new(&slid.window_dataset(), slid.grid())
                .params(slid.params().clone())
                .mine()
                .unwrap();
            assert_eq!(slid.topk().len(), batch.patterns.len());
            for ((a, b), c) in slid.topk().iter().zip(stepped.topk()).zip(&batch.patterns) {
                assert_eq!(a.pattern, c.pattern);
                assert_eq!(a.nm.to_bits(), c.nm.to_bits());
                assert_eq!(b.nm.to_bits(), c.nm.to_bits());
            }
        }
        assert_eq!(slid.stats().arrivals, 10);
        assert_eq!(slid.stats().evictions, 6);
    }

    #[test]
    fn emptied_window_yields_empty_topk() {
        let mut m = miner(3);
        let seq = m.push(sweep(0.0));
        m.evict_before(seq + 1);
        assert!(m.topk().is_empty());
        assert_eq!(m.stats().window_len, 0);
        // And refilling works (ledger rows restart from the delta path).
        m.push(sweep(0.01));
        assert!(!m.topk().is_empty());
        let data = m.window_dataset();
        let batch = trajpattern::Miner::new(&data, m.grid())
            .params(m.params().clone())
            .mine()
            .unwrap();
        for (a, b) in m.topk().iter().zip(&batch.patterns) {
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
    }

    #[test]
    fn topk_version_tracks_only_real_changes() {
        let mut m = miner(3);
        assert_eq!(m.topk_version(), 0);
        m.push(sweep(0.0));
        let after_first = m.topk_version();
        assert_eq!(after_first, 1, "bootstrap mine publishes a new top-k");
        // Every push changes the NM sums, so the version keeps moving and
        // never outruns one bump per maintenance pass.
        for i in 1..6 {
            let before = m.topk_version();
            m.push(sweep(0.001 * i as f64));
            let after = m.topk_version();
            assert!(after == before || after == before + 1);
            assert!(after >= before);
        }
        // Draining the window empties the top-k: one more change.
        let v = m.topk_version();
        m.evict_before(m.next_seq());
        assert!(m.topk().is_empty());
        assert_eq!(m.topk_version(), v + 1);
        // Evicting from an already-empty window publishes the same empty
        // top-k; the version must not move.
        m.evict_before(m.next_seq());
        assert_eq!(m.topk_version(), v + 1);
    }

    #[test]
    fn rejects_invalid_params() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let mut p = MiningParams::new(3, 0.1).unwrap();
        p.k = 0;
        assert!(StreamMiner::new(grid, p).is_err());
    }
}
