//! Stream-state checkpointing: the `trajpattern-checkpoint v2` format.
//!
//! A v1 checkpoint freezes one *mining run* mid-growth; a v2 checkpoint
//! freezes a [`StreamMiner`]: parameters, grid, the window contents, and
//! the full contribution ledger. It reuses the v1 conventions — plain
//! line-oriented text, f64s as 16-hex-digit bit patterns (exact
//! round-trip), atomic tmp+rename writes, and the same typed
//! [`CheckpointError`] — so tooling that understands one understands
//! both. The cached top-k is stored verbatim (groups are a deterministic
//! function of it and are recomputed on load), so resuming is pure
//! deserialization — no maintenance pass runs, the ledger is restored
//! byte-identically, and the resumed stream behaves exactly like one
//! that never stopped (property-tested in
//! `tests/stream_batch_identity.rs`).
//!
//! ```text
//! trajpattern-checkpoint v2
//! params <k> <delta> <min_prob> <min_len> <max_len> <bound> <one_ext> <max_iters> <threads> <gamma|->
//! grid <min.x> <min.y> <max.x> <max.y> <nx> <ny>
//! next_seq <n>
//! stats <arrivals> <evictions> <deltas> <certified> <repairs> <repair_scored> <max_depth> <degraded>
//! window <count>
//! w <seq> <points> <x> <y> <sigma> ...
//! ledger <count>
//! l <cells> <cell ids ...> <contribution per window entry ...>
//! mstats <iterations> <generated> <scored> <pruned> <final_q> <evaluations> <degraded>
//! topk <count>
//! p <cells> <cell ids ...> <nm>
//! end
//! ```

use crate::{Ledger, StreamMiner, StreamStats};
use std::collections::VecDeque;
use std::path::Path;
use trajdata::{SnapshotPoint, Trajectory};
use trajgeo::{BBox, CellId, Grid, Point2};
use trajpattern::groups::discover_groups;
use trajpattern::{
    CheckpointError, MinedPattern, MiningOutcome, MiningParams, MiningStats, Pattern,
};

/// First line of a stream checkpoint.
pub const STREAM_VERSION_LINE: &str = "trajpattern-checkpoint v2";

impl StreamMiner {
    /// Atomically writes the complete stream state to `path`.
    pub fn checkpoint(&self, path: &Path) -> Result<(), CheckpointError> {
        let text = encode(self);
        trajio::write_atomic(path, &text).map_err(|e| CheckpointError::Io {
            path: e.path,
            message: e.message,
        })
    }

    /// Restores a stream miner from a checkpoint written by
    /// [`StreamMiner::checkpoint`]. The restored miner's next event
    /// continues the stream bit-identically to one that never stopped.
    pub fn resume(path: &Path) -> Result<StreamMiner, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        decode(&text)
    }
}

/// Parses a complete v2 checkpoint from text into a ready
/// [`StreamMiner`] — the public read API used by snapshot consumers
/// (the `trajserve` server loads checkpoints through this). Equivalent
/// to the decoding half of [`StreamMiner::resume`] without touching the
/// filesystem; the same validation applies.
pub fn parse_checkpoint(text: &str) -> Result<StreamMiner, CheckpointError> {
    decode(text)
}

use trajio::f64_hex as hex;

fn err(line: usize, message: impl Into<String>) -> CheckpointError {
    CheckpointError::Format {
        line,
        message: message.into(),
    }
}

/// Serializes the full stream state to the v2 text format.
pub(crate) fn encode(m: &StreamMiner) -> String {
    use std::fmt::Write;
    let p = &m.params;
    let mut out = String::from(STREAM_VERSION_LINE);
    out.push('\n');
    let gamma = match p.gamma {
        Some(g) => hex(g),
        None => "-".to_string(),
    };
    writeln!(
        out,
        "params {} {} {} {} {} {} {} {} {} {gamma}",
        p.k,
        hex(p.delta),
        hex(p.min_prob),
        p.min_len,
        p.max_len,
        p.use_bound_prune as u8,
        p.use_one_extension_prune as u8,
        p.max_iters,
        p.threads,
    )
    .expect("writing to a String cannot fail");
    let bbox = m.grid.bbox();
    writeln!(
        out,
        "grid {} {} {} {} {} {}",
        hex(bbox.min().x),
        hex(bbox.min().y),
        hex(bbox.max().x),
        hex(bbox.max().y),
        m.grid.nx(),
        m.grid.ny(),
    )
    .expect("writing to a String cannot fail");
    writeln!(out, "next_seq {}", m.next_seq).expect("writing to a String cannot fail");
    out.push_str("stats");
    for v in m.stats.persisted_values() {
        write!(out, " {v}").expect("writing to a String cannot fail");
    }
    out.push('\n');
    writeln!(out, "window {}", m.window.len()).expect("writing to a String cannot fail");
    for (seq, traj) in m.window.iter() {
        write!(out, "w {seq} {}", traj.len()).expect("writing to a String cannot fail");
        for sp in traj.points() {
            write!(
                out,
                " {} {} {}",
                hex(sp.mean.x),
                hex(sp.mean.y),
                hex(sp.sigma)
            )
            .expect("writing to a String cannot fail");
        }
        out.push('\n');
    }
    writeln!(out, "ledger {}", m.ledger.patterns.len()).expect("writing to a String cannot fail");
    for (pat, row) in m.ledger.patterns.iter().zip(&m.ledger.contribs) {
        write!(out, "l {}", pat.len()).expect("writing to a String cannot fail");
        for c in pat.cells() {
            write!(out, " {}", c.0).expect("writing to a String cannot fail");
        }
        for &v in row {
            write!(out, " {}", hex(v)).expect("writing to a String cannot fail");
        }
        out.push('\n');
    }
    out.push_str("mstats");
    for v in m.last.stats.persisted_values() {
        write!(out, " {v}").expect("writing to a String cannot fail");
    }
    out.push('\n');
    writeln!(out, "topk {}", m.last.patterns.len()).expect("writing to a String cannot fail");
    for mp in &m.last.patterns {
        write!(out, "p {}", mp.pattern.len()).expect("writing to a String cannot fail");
        for c in mp.pattern.cells() {
            write!(out, " {}", c.0).expect("writing to a String cannot fail");
        }
        writeln!(out, " {}", hex(mp.nm)).expect("writing to a String cannot fail");
    }
    out.push_str("end\n");
    out
}

/// Advances the lenient cursor (v2 skips blank lines and trims), mapping
/// end-of-input to a positional format error.
fn next_line<'a>(cur: &mut trajio::LineCursor<'a>) -> Result<&'a str, CheckpointError> {
    cur.next_line()
        .ok_or_else(|| err(cur.line(), "unexpected end of checkpoint"))
}

fn parse_hex_f64(s: &str, line: usize) -> Result<f64, CheckpointError> {
    trajio::f64_from_hex(s).map_err(|e| err(line, e.message()))
}

fn parse_int<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, CheckpointError> {
    trajio::parse_int(s, what).map_err(|e| err(line, e.message()))
}

/// Parses and fully validates a v2 checkpoint, rebuilding the miner
/// (the cached top-k is stored verbatim; groups and the certifier index
/// are derived).
pub(crate) fn decode(text: &str) -> Result<StreamMiner, CheckpointError> {
    let mut cur = trajio::LineCursor::lenient(text);

    let version = cur.next_line().ok_or(CheckpointError::Version {
        found: String::new(),
    })?;
    if version != STREAM_VERSION_LINE {
        return Err(CheckpointError::Version {
            found: version.to_string(),
        });
    }

    // params
    let pline = next_line(&mut cur)?;
    let pl = cur.line();
    let f: Vec<&str> = pline.split_whitespace().collect();
    if f.len() != 11 || f[0] != "params" {
        return Err(err(pl, "malformed params line"));
    }
    let k: usize = parse_int(f[1], pl, "k")?;
    let delta = parse_hex_f64(f[2], pl)?;
    let mut params = MiningParams::new(k, delta)
        .map_err(|e| err(pl, format!("invalid checkpointed parameters: {e}")))?;
    params.min_prob = parse_hex_f64(f[3], pl)?;
    params.min_len = parse_int(f[4], pl, "min_len")?;
    params.max_len = parse_int(f[5], pl, "max_len")?;
    params.use_bound_prune = f[6] == "1";
    params.use_one_extension_prune = f[7] == "1";
    params.max_iters = parse_int(f[8], pl, "max_iters")?;
    params.threads = parse_int(f[9], pl, "threads")?;
    params.gamma = if f[10] == "-" {
        None
    } else {
        Some(parse_hex_f64(f[10], pl)?)
    };
    params
        .validate()
        .map_err(|e| err(pl, format!("invalid checkpointed parameters: {e}")))?;

    // grid
    let gline = next_line(&mut cur)?;
    let gl = cur.line();
    let g: Vec<&str> = gline.split_whitespace().collect();
    if g.len() != 7 || g[0] != "grid" {
        return Err(err(gl, "malformed grid line"));
    }
    let min = Point2::new(parse_hex_f64(g[1], gl)?, parse_hex_f64(g[2], gl)?);
    let max = Point2::new(parse_hex_f64(g[3], gl)?, parse_hex_f64(g[4], gl)?);
    let bbox = BBox::new(min, max).ok_or_else(|| err(gl, "degenerate grid bounding box"))?;
    let nx: u32 = parse_int(g[5], gl, "nx")?;
    let ny: u32 = parse_int(g[6], gl, "ny")?;
    let grid = Grid::new(bbox, nx, ny).map_err(|e| err(gl, format!("invalid grid: {e}")))?;
    let num_cells = grid.num_cells() as usize;

    // next_seq
    let nline = next_line(&mut cur)?;
    let nl = cur.line();
    let next_seq: u64 = match nline.split_whitespace().collect::<Vec<_>>()[..] {
        ["next_seq", v] => parse_int(v, nl, "next_seq")?,
        _ => return Err(err(nl, "expected 'next_seq <n>'")),
    };

    // stats — persisted fields only; `window_len` and `ledger_patterns`
    // are recomputed below once window and ledger are rebuilt.
    let sline = next_line(&mut cur)?;
    let sl = cur.line();
    let s: Vec<&str> = sline.split_whitespace().collect();
    let snames = StreamStats::persisted_names();
    if s.len() != snames.len() + 1 || s[0] != "stats" {
        return Err(err(sl, "malformed stats line"));
    }
    let mut svalues = Vec::with_capacity(snames.len());
    for (tok, name) in s[1..].iter().zip(&snames) {
        svalues.push(parse_int::<u64>(tok, sl, name)?);
    }
    let stats = StreamStats::from_persisted(&svalues).expect("length checked above");

    // window
    let wline = next_line(&mut cur)?;
    let wl = cur.line();
    let window_count: usize = match wline.split_whitespace().collect::<Vec<_>>()[..] {
        ["window", v] => parse_int(v, wl, "window count")?,
        _ => return Err(err(wl, "expected 'window <count>'")),
    };
    let mut window: VecDeque<(u64, Trajectory)> = VecDeque::with_capacity(window_count);
    let mut prev_seq: Option<u64> = None;
    for _ in 0..window_count {
        let line = next_line(&mut cur)?;
        let ln = cur.line();
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 3 || f[0] != "w" {
            return Err(err(ln, "malformed window entry"));
        }
        let seq: u64 = parse_int(f[1], ln, "sequence number")?;
        if prev_seq.is_some_and(|p| seq <= p) {
            return Err(err(ln, "window sequence numbers must be increasing"));
        }
        if seq >= next_seq {
            return Err(err(ln, "window sequence number beyond next_seq"));
        }
        prev_seq = Some(seq);
        let npoints: usize = parse_int(f[2], ln, "point count")?;
        if f.len() != 3 + npoints * 3 {
            return Err(err(
                ln,
                format!(
                    "window entry declares {npoints} points but has {} fields",
                    f.len() - 3
                ),
            ));
        }
        let points: Vec<SnapshotPoint> = f[3..]
            .chunks_exact(3)
            .map(|c| {
                Ok(SnapshotPoint {
                    mean: Point2::new(parse_hex_f64(c[0], ln)?, parse_hex_f64(c[1], ln)?),
                    sigma: parse_hex_f64(c[2], ln)?,
                })
            })
            .collect::<Result<_, CheckpointError>>()?;
        let traj =
            Trajectory::new(points).map_err(|e| err(ln, format!("invalid trajectory: {e}")))?;
        window.push_back((seq, traj));
    }

    // ledger
    let lline = next_line(&mut cur)?;
    let ll = cur.line();
    let ledger_count: usize = match lline.split_whitespace().collect::<Vec<_>>()[..] {
        ["ledger", v] => parse_int(v, ll, "ledger count")?,
        _ => return Err(err(ll, "expected 'ledger <count>'")),
    };
    let mut ledger = Ledger::default();
    let mut singulars = vec![false; num_cells];
    for _ in 0..ledger_count {
        let line = next_line(&mut cur)?;
        let ln = cur.line();
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 2 || f[0] != "l" {
            return Err(err(ln, "malformed ledger entry"));
        }
        let ncells: usize = parse_int(f[1], ln, "cell count")?;
        if f.len() != 2 + ncells + window_count {
            return Err(err(
                ln,
                format!(
                    "ledger entry declares {ncells} cells over a {window_count}-entry window but has {} fields",
                    f.len() - 2
                ),
            ));
        }
        let cells: Vec<CellId> = f[2..2 + ncells]
            .iter()
            .map(|s| {
                let id: u32 = parse_int(s, ln, "cell id")?;
                if id as usize >= num_cells {
                    return Err(err(ln, format!("cell id {id} outside the grid")));
                }
                Ok(CellId(id))
            })
            .collect::<Result<_, CheckpointError>>()?;
        let pattern = Pattern::new(cells).ok_or_else(|| err(ln, "empty ledger pattern"))?;
        if ledger.contains(&pattern) {
            return Err(err(ln, format!("duplicate ledger pattern {pattern}")));
        }
        if pattern.is_singular() {
            singulars[pattern.cells()[0].index()] = true;
        }
        let row: VecDeque<f64> = f[2 + ncells..]
            .iter()
            .map(|s| {
                let v = parse_hex_f64(s, ln)?;
                if !v.is_finite() {
                    return Err(err(ln, "non-finite ledger contribution"));
                }
                Ok(v)
            })
            .collect::<Result<_, CheckpointError>>()?;
        ledger.add(pattern, row);
    }
    if ledger_count > 0 && !singulars.iter().all(|&s| s) {
        return Err(err(
            cur.line(),
            "ledger is missing singular patterns for some grid cells",
        ));
    }

    // mstats
    let mline = next_line(&mut cur)?;
    let ml = cur.line();
    let ms: Vec<&str> = mline.split_whitespace().collect();
    let mnames = MiningStats::persisted_names();
    if ms.len() != mnames.len() + 1 || ms[0] != "mstats" {
        return Err(err(ml, "malformed mstats line"));
    }
    let mut mvalues = Vec::with_capacity(mnames.len());
    for (tok, name) in ms[1..].iter().zip(&mnames) {
        mvalues.push(parse_int::<u64>(tok, ml, name)?);
    }
    let mstats = MiningStats::from_persisted(&mvalues).expect("length checked above");

    // topk
    let tline = next_line(&mut cur)?;
    let tl = cur.line();
    let topk_count: usize = match tline.split_whitespace().collect::<Vec<_>>()[..] {
        ["topk", v] => parse_int(v, tl, "topk count")?,
        _ => return Err(err(tl, "expected 'topk <count>'")),
    };
    if topk_count > params.k {
        return Err(err(tl, "checkpointed top-k exceeds k"));
    }
    let mut topk: Vec<MinedPattern> = Vec::with_capacity(topk_count);
    for _ in 0..topk_count {
        let line = next_line(&mut cur)?;
        let ln = cur.line();
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 3 || f[0] != "p" {
            return Err(err(ln, "malformed top-k entry"));
        }
        let ncells: usize = parse_int(f[1], ln, "cell count")?;
        if f.len() != 3 + ncells {
            return Err(err(ln, "top-k entry cell count mismatch"));
        }
        let cells: Vec<CellId> = f[2..2 + ncells]
            .iter()
            .map(|s| {
                let id: u32 = parse_int(s, ln, "cell id")?;
                if id as usize >= num_cells {
                    return Err(err(ln, format!("cell id {id} outside the grid")));
                }
                Ok(CellId(id))
            })
            .collect::<Result<_, CheckpointError>>()?;
        let pattern = Pattern::new(cells).ok_or_else(|| err(ln, "empty top-k pattern"))?;
        let nm = parse_hex_f64(f[2 + ncells], ln)?;
        if !nm.is_finite() {
            return Err(err(ln, "non-finite top-k NM"));
        }
        topk.push(MinedPattern::new(pattern, nm));
    }

    let end = next_line(&mut cur)?;
    if end != "end" {
        return Err(err(cur.line(), "expected 'end'"));
    }

    // Groups are a deterministic function of the top-k (see `finish` in
    // the batch grower), so they are recomputed rather than stored.
    let groups = match params.gamma {
        Some(gamma) => discover_groups(&topk, &grid, gamma),
        None => Vec::new(),
    };
    let mut stats = stats;
    stats.window_len = window.len();
    stats.ledger_patterns = ledger.patterns.len();
    // The certifier is a pure membership index over the ledger, so it is
    // derived rather than stored.
    let certifier = Some(trajpattern::SeedCertifier::new(&ledger.patterns));
    Ok(StreamMiner {
        grid,
        params,
        next_seq,
        window,
        ledger,
        certifier,
        last: MiningOutcome {
            patterns: topk,
            groups,
            stats: mstats,
            scorer: trajpattern::ScorerStats::default(),
        },
        stats,
        // Like the certifier, the change counter is derived in-process
        // state: consumers track deltas, so it restarts at zero.
        topk_version: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgeo::Point2;
    use trajpattern::MiningParams;

    fn sample_miner() -> StreamMiner {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(3, 0.1)
            .unwrap()
            .with_max_len(3)
            .unwrap()
            .with_gamma(0.2)
            .unwrap();
        let mut m = StreamMiner::new(grid, params).unwrap();
        for j in 0..6 {
            let seq = m.push(Trajectory::from_exact((0..4).map(move |i| {
                Point2::new(0.125 + i as f64 * 0.25, 0.3 + j as f64 * 0.05)
            })));
            m.evict_before(seq.saturating_sub(3));
        }
        m
    }

    #[test]
    fn round_trips_bit_exactly() {
        let m = sample_miner();
        let restored = decode(&encode(&m)).unwrap();
        assert_eq!(restored.next_seq, m.next_seq);
        assert_eq!(restored.stats, *m.stats());
        assert_eq!(restored.window.len(), m.window.len());
        assert_eq!(restored.ledger.patterns, m.ledger.patterns);
        for (a, b) in restored.ledger.contribs.iter().zip(&m.ledger.contribs) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(restored.topk().len(), m.topk().len());
        for (a, b) in restored.topk().iter().zip(m.topk()) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
        assert_eq!(restored.groups().len(), m.groups().len());
    }

    #[test]
    fn save_and_resume_via_files() {
        let m = sample_miner();
        let path = std::env::temp_dir().join(format!("trajstream-ckpt-{}", std::process::id()));
        m.checkpoint(&path).unwrap();
        let restored = StreamMiner::resume(&path).unwrap();
        for (a, b) in restored.topk().iter().zip(m.topk()) {
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_version_and_corruption() {
        let m = sample_miner();
        let text = encode(&m);
        assert!(matches!(
            decode(&text.replace("v2", "v9")),
            Err(CheckpointError::Version { .. })
        ));
        assert!(matches!(decode(""), Err(CheckpointError::Version { .. })));
        // Truncation: drop the trailing 'end'.
        let truncated = text.trim_end().trim_end_matches("end").to_string();
        assert!(matches!(
            decode(&truncated),
            Err(CheckpointError::Format { .. })
        ));
        // Corrupt a ledger hex value.
        let corrupted = text.replacen("l 1 0 ", "l 1 99999 ", 1);
        if corrupted != text {
            assert!(decode(&corrupted).is_err());
        }
    }

    #[test]
    fn missing_resume_file_is_io_error() {
        let path = std::env::temp_dir().join("trajstream-never-written");
        assert!(matches!(
            StreamMiner::resume(&path),
            Err(CheckpointError::Io { .. })
        ));
    }
}
