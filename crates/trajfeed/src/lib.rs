//! The feed spine: one [`Feed`] trait behind every ingest path.
//!
//! Before this crate each consumer of live trajectory data owned its own
//! ingest loop — the CLI replayed CSV and `.events` files, `trajmine
//! stream --follow` tailed a log, every `trajfleet` shard either tailed a
//! log or polled a trajdb cursor, and `trajserve` decoded posted bodies —
//! four bespoke loops with four different defect, resume, and shutdown
//! behaviors. The spine collapses them into one composable pipeline:
//!
//! ```text
//! source (file / TCP socket / trajdb / memory)
//!   → decode (.events lines, dead-reckoning messages, CSV, JSON)
//!   → reconstruct (§3.1: odometer reports → snapshots with σ = U_eff/c)
//!   → synchronize (§3.2: interpolate onto the shared dt lattice)
//!   → sanitize (IngestPolicy: strict / skip / repair)
//!   → Feed::next_batch
//! ```
//!
//! Every stage is the *same code* no matter where bytes come from, so a
//! planar `.events` file replayed from disk, tailed live, served over a
//! TCP socket, or reconstructed from a dead-reckoning message log feeds
//! the miner identical records — the property the feed-equivalence suite
//! locks down. Geodetic (lat/lon) inputs are projected into the planar
//! engine space by [`trajgeo::GeoProjection`] at decode time, upstream of
//! every bit-identity invariant.
//!
//! Entry points:
//!
//! - [`spec::open`] turns a [`SourceSpec`] (`path.events`, `path.drlog`,
//!   `tcp://host:port`, `dr+tcp://host:port`, a trajdb shard dir) into a
//!   boxed [`Feed`].
//! - [`pump`] drives any feed to completion into a sink closure, with
//!   checkpoint-resume skipping and per-batch stats publication.
//! - [`FeedStats`] counts records, defects by category, reconstruction
//!   work, and transport recoveries, and renders to Prometheus and JSON
//!   through the shared `counter_stats!` machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbfeed;
pub mod dr;
pub mod events;
pub mod line;
pub mod spec;
pub mod tcp;

use std::fmt;
use std::sync::atomic::AtomicBool;
use trajdata::eventlog::EventLogError;
use trajdata::{Dataset, IngestPolicy, IngestReport, SanitizeReport, Trajectory};

pub use dbfeed::DbCursorFeed;
pub use dr::{DrConfig, DrDecoder, DrFeed, DR_VERSION_LINE};
pub use events::EventsFeed;
pub use line::{FileLineSource, LineSource, LineStep};
pub use spec::{open, FeedOptions, SourceSpec};
pub use tcp::{TcpLineSource, TcpOptions};

/// Why a feed stopped with an error.
#[derive(Debug)]
#[non_exhaustive]
pub enum FeedError {
    /// Reading the underlying source failed.
    Io(std::io::Error),
    /// The stream's first content line is not the expected version line.
    Version {
        /// What was found instead.
        found: String,
        /// The version line this feed's protocol expects.
        expected: &'static str,
    },
    /// A line violated the stream protocol (unparseable, out of order).
    Protocol {
        /// 1-based line number within the stream.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally valid line decoded to an invalid record.
    Record {
        /// 1-based line number within the stream.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A socket source exhausted its reconnection budget.
    Connect {
        /// The address dialed.
        addr: String,
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The last connection error.
        message: String,
    },
    /// The trajdb store behind a cursor feed failed.
    Store(trajdb::StoreError),
    /// CSV ingest failed under the strict policy.
    Csv(trajdata::csv::CsvError),
    /// The feed configuration is invalid (e.g. a non-positive `dt`).
    Config(String),
}

impl fmt::Display for FeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeedError::Io(e) => write!(f, "feed read failed: {e}"),
            FeedError::Version { found, expected } => {
                write!(f, "not a recognized stream: first line is '{found}' (expected '{expected}')")
            }
            FeedError::Protocol { line, message } => write!(f, "feed line {line}: {message}"),
            FeedError::Record { line, message } => {
                write!(f, "feed line {line}: invalid record: {message}")
            }
            FeedError::Connect {
                addr,
                attempts,
                message,
            } => write!(f, "connect to {addr} failed after {attempts} attempts: {message}"),
            FeedError::Store(e) => write!(f, "feed store: {e}"),
            FeedError::Csv(e) => write!(f, "feed csv: {e}"),
            FeedError::Config(m) => write!(f, "feed config: {m}"),
        }
    }
}

impl std::error::Error for FeedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FeedError::Io(e) => Some(e),
            FeedError::Store(e) => Some(e),
            FeedError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FeedError {
    fn from(e: std::io::Error) -> Self {
        FeedError::Io(e)
    }
}

impl From<trajdb::StoreError> for FeedError {
    fn from(e: trajdb::StoreError) -> Self {
        FeedError::Store(e)
    }
}

impl From<trajdata::csv::CsvError> for FeedError {
    fn from(e: trajdata::csv::CsvError) -> Self {
        FeedError::Csv(e)
    }
}

impl From<EventLogError> for FeedError {
    fn from(e: EventLogError) -> Self {
        match e {
            EventLogError::Version { found } => FeedError::Version {
                found,
                expected: trajdata::eventlog::EVENTS_VERSION_LINE,
            },
            EventLogError::Line { line, message } => FeedError::Protocol { line, message },
            EventLogError::Trajectory { line, source } => FeedError::Record {
                line,
                message: source.to_string(),
            },
            _ => FeedError::Protocol {
                line: 0,
                message: e.to_string(),
            },
        }
    }
}

/// One step of a feed: some records, or the end of the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum FeedBatch {
    /// Records that arrived, in stream order. Never empty.
    Records(Vec<Trajectory>),
    /// The stream ended: end-of-file in replay mode, a `# eof`
    /// terminator, or the stop flag observed while waiting for bytes.
    End,
}

trajpattern::counter_stats! {
    /// Per-feed ingest counters, rendered to `/metrics` (with a `feed=`
    /// label per shard) and to `trajmine stream --json`.
    pub struct FeedStats {
        /// Records delivered downstream (post-sanitize).
        persisted records: u64,
        /// Batches delivered downstream.
        persisted batches: u64,
        /// Lines that failed to decode and were skipped by policy.
        persisted defect_lines: u64,
        /// Decoded records dropped by the `skip` sanitize policy.
        persisted defect_records: u64,
        /// Decoded records repaired in place by the `repair` policy.
        persisted repaired_records: u64,
        /// Trajectories built by §3.1 dead-reckoning reconstruction.
        persisted reconstructed: u64,
        /// §3.2 synchronization points interpolated between reports.
        persisted resampled_points: u64,
        /// Times a socket source re-established a dropped connection.
        persisted reconnects: u64,
        /// Reconnect recoveries whose receive tail was clean.
        persisted recovery_clean: u64,
        /// Reconnect recoveries that discarded a torn partial line —
        /// `TailVerdict::TornTruncated`, diagnosed live instead of on
        /// disk.
        persisted recovery_torn: u64,
    }
}

/// A source of trajectory records: the one interface every ingest path
/// implements.
///
/// `next_batch` blocks (stop-aware) until records are available or the
/// stream ends; it never busy-spins and never returns an empty batch.
/// All implementations deliver records in stream order, so a consumer's
/// state is a function of the logical record sequence alone — the
/// feed-equivalence suite checks exactly this across every impl.
pub trait Feed: Send {
    /// Returns the next batch of records, or [`FeedBatch::End`].
    fn next_batch(&mut self, stop: &AtomicBool) -> Result<FeedBatch, FeedError>;

    /// Ingest counters observed so far.
    fn stats(&self) -> &FeedStats;

    /// A short label for the feed kind (`"events"`, `"dr+tcp"`, …).
    fn kind(&self) -> &'static str;

    /// Checkpoint cursor: records delivered so far. A consumer resuming
    /// from a checkpoint passes this as `skip` to [`pump`].
    fn cursor(&self) -> u64 {
        self.stats().records
    }
}

/// The sanitize stage shared by every feed: what to do with records and
/// lines that fail validation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pipeline {
    /// The defect policy (strict aborts, skip drops, repair fixes).
    pub policy: IngestPolicy,
}

impl Pipeline {
    /// A pipeline applying `policy`.
    pub fn new(policy: IngestPolicy) -> Pipeline {
        Pipeline { policy }
    }

    /// Admits one decoded record through the sanitize stage. Returns
    /// `Ok(None)` when the record was dropped by policy.
    pub fn admit(
        &self,
        traj: Trajectory,
        stats: &mut FeedStats,
    ) -> Result<Option<Trajectory>, FeedError> {
        if self.policy == IngestPolicy::Strict {
            // Decoders validate through `Trajectory::new`; a strict feed
            // would already have errored on a defective record.
            return Ok(Some(traj));
        }
        let mut ds: Dataset = std::iter::once(traj.clone()).collect();
        let report = trajdata::sanitize(&mut ds);
        if report.is_clean() {
            return Ok(Some(traj));
        }
        match self.policy {
            IngestPolicy::Skip => {
                stats.defect_records += 1;
                Ok(None)
            }
            IngestPolicy::Repair => {
                stats.repaired_records += 1;
                Ok(ds.trajectories().first().cloned())
            }
            IngestPolicy::Strict => unreachable!("handled above"),
        }
    }

    /// Handles a line-level decode failure: fatal under strict, counted
    /// and skipped otherwise. Version mismatches are always fatal — the
    /// stream is the wrong format, not a damaged line.
    pub fn tolerate(&self, err: FeedError, stats: &mut FeedStats) -> Result<(), FeedError> {
        if self.policy == IngestPolicy::Strict || matches!(err, FeedError::Version { .. }) {
            return Err(err);
        }
        stats.defect_lines += 1;
        Ok(())
    }
}

/// An in-memory feed over already-decoded records: the path posted HTTP
/// bodies, JSON datasets, and CSV files take onto the spine.
#[derive(Debug)]
pub struct StaticFeed {
    pending: Vec<Trajectory>,
    drained: bool,
    stats: FeedStats,
    ingest: Option<IngestReport>,
    sanitize: Option<SanitizeReport>,
}

impl StaticFeed {
    /// Wraps a decoded dataset.
    pub fn from_dataset(data: Dataset) -> StaticFeed {
        StaticFeed {
            pending: data.trajectories().to_vec(),
            drained: false,
            stats: FeedStats::default(),
            ingest: None,
            sanitize: None,
        }
    }

    /// Ingests CSV text under `policy` through the fault-tolerant
    /// [`trajdata::ingest`] path; the report is kept for the caller.
    pub fn from_csv(text: &str, policy: IngestPolicy) -> Result<StaticFeed, FeedError> {
        let (data, report) = trajdata::ingest(text, policy)?;
        let mut feed = StaticFeed::from_dataset(data);
        feed.stats.defect_lines = report.rows_read.saturating_sub(report.rows_kept) as u64;
        if let Some(fixed) = report.sanitize {
            feed.stats.repaired_records = fixed.total_fixes() as u64;
        }
        feed.ingest = Some(report);
        Ok(feed)
    }

    /// Parses a complete `.events` log (strict) and, under
    /// [`IngestPolicy::Repair`], sanitizes the result in place.
    pub fn from_events(text: &str, policy: IngestPolicy) -> Result<StaticFeed, FeedError> {
        let data: Dataset = trajdata::eventlog::parse_event_log(text)?
            .into_iter()
            .collect();
        let mut feed = StaticFeed::from_dataset(data);
        if policy == IngestPolicy::Repair {
            feed.repair();
        }
        Ok(feed)
    }

    /// Sanitizes the pending records in place (the JSON/posted-body
    /// repair path, where serde bypassed validation) and reports the
    /// fixes.
    pub fn repair(&mut self) -> SanitizeReport {
        let mut ds: Dataset = self.pending.drain(..).collect();
        let report = trajdata::sanitize(&mut ds);
        self.pending = ds.trajectories().to_vec();
        if !report.is_clean() {
            self.stats.repaired_records += report.total_fixes() as u64;
        }
        self.sanitize = Some(report);
        report
    }

    /// The CSV ingest report, when this feed came from CSV text.
    pub fn ingest_report(&self) -> Option<&IngestReport> {
        self.ingest.as_ref()
    }

    /// The sanitize report, when [`StaticFeed::repair`] ran.
    pub fn sanitize_report(&self) -> Option<&SanitizeReport> {
        self.sanitize.as_ref()
    }
}

impl Feed for StaticFeed {
    fn next_batch(&mut self, _stop: &AtomicBool) -> Result<FeedBatch, FeedError> {
        if self.drained {
            return Ok(FeedBatch::End);
        }
        self.drained = true;
        if self.pending.is_empty() {
            return Ok(FeedBatch::End);
        }
        let records = std::mem::take(&mut self.pending);
        self.stats.records += records.len() as u64;
        self.stats.batches += 1;
        Ok(FeedBatch::Records(records))
    }

    fn stats(&self) -> &FeedStats {
        &self.stats
    }

    fn kind(&self) -> &'static str {
        "static"
    }
}

/// Why [`pump`] stopped with an error.
#[derive(Debug)]
pub enum PumpError<E> {
    /// The feed itself failed.
    Feed(FeedError),
    /// The sink closure failed.
    Sink(E),
}

impl<E: fmt::Display> fmt::Display for PumpError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PumpError::Feed(e) => write!(f, "feed: {e}"),
            PumpError::Sink(e) => write!(f, "{e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for PumpError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PumpError::Feed(e) => Some(e),
            PumpError::Sink(e) => Some(e),
        }
    }
}

/// Drives `feed` to completion: every record goes through `sink`, in
/// order; `after_batch` observes the feed's stats after each delivered
/// batch (how live consumers export per-feed metrics without owning the
/// loop). The first `skip` records are counted but not delivered — the
/// checkpoint-resume fast-forward every consumer previously hand-rolled.
///
/// Returns the total number of records seen (delivered + skipped).
pub fn pump<E>(
    feed: &mut dyn Feed,
    stop: &AtomicBool,
    skip: u64,
    mut sink: impl FnMut(Trajectory) -> Result<(), E>,
    mut after_batch: impl FnMut(&FeedStats),
) -> Result<u64, PumpError<E>> {
    let mut seen = 0u64;
    loop {
        if stop.load(std::sync::atomic::Ordering::SeqCst) {
            return Ok(seen);
        }
        match feed.next_batch(stop).map_err(PumpError::Feed)? {
            FeedBatch::End => return Ok(seen),
            FeedBatch::Records(records) => {
                for traj in records {
                    seen += 1;
                    if seen <= skip {
                        continue;
                    }
                    sink(traj).map_err(PumpError::Sink)?;
                }
                after_batch(feed.stats());
            }
        }
    }
}

/// Collects every record a feed will ever deliver — the batch-ingest
/// convenience over [`pump`].
pub fn drain(feed: &mut dyn Feed, stop: &AtomicBool) -> Result<Vec<Trajectory>, FeedError> {
    let mut out = Vec::new();
    match pump(
        feed,
        stop,
        0,
        |t| {
            out.push(t);
            Ok::<(), std::convert::Infallible>(())
        },
        |_| {},
    ) {
        Ok(_) => Ok(out),
        Err(PumpError::Feed(e)) => Err(e),
        Err(PumpError::Sink(e)) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::SnapshotPoint;
    use trajgeo::Point2;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            coords
                .iter()
                .map(|&(x, y)| SnapshotPoint::new(Point2::new(x, y), 0.1).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn static_feed_drains_once() {
        let data: Dataset = vec![traj(&[(0.1, 0.2)]), traj(&[(0.3, 0.4)])]
            .into_iter()
            .collect();
        let mut feed = StaticFeed::from_dataset(data);
        let stop = AtomicBool::new(false);
        let out = drain(&mut feed, &stop).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(feed.stats().records, 2);
        assert_eq!(feed.stats().batches, 1);
        assert!(matches!(feed.next_batch(&stop), Ok(FeedBatch::End)));
    }

    #[test]
    fn pump_skips_resumed_records() {
        let data: Dataset = (0..5)
            .map(|i| traj(&[(0.1 * i as f64 + 0.05, 0.5)]))
            .collect();
        let mut feed = StaticFeed::from_dataset(data);
        let stop = AtomicBool::new(false);
        let mut delivered = Vec::new();
        let seen = pump(
            &mut feed,
            &stop,
            3,
            |t| {
                delivered.push(t);
                Ok::<(), std::convert::Infallible>(())
            },
            |_| {},
        )
        .unwrap();
        assert_eq!(seen, 5);
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].points()[0].mean.x, 0.1 * 3.0 + 0.05);
    }

    #[test]
    fn pipeline_policies_on_a_defective_record() {
        // Build a defective trajectory the way serde would: bypassing
        // validation via JSON.
        let json = r#"{"trajectories":[{"points":[
            {"mean":{"x":0.1,"y":0.2},"sigma":-1.0},
            {"mean":{"x":0.3,"y":0.4},"sigma":0.1}
        ]}]}"#;
        let data = Dataset::from_json(json).unwrap();
        let bad = data.trajectories()[0].clone();

        let mut stats = FeedStats::default();
        let kept = Pipeline::new(IngestPolicy::Skip)
            .admit(bad.clone(), &mut stats)
            .unwrap();
        assert!(kept.is_none());
        assert_eq!(stats.defect_records, 1);

        let kept = Pipeline::new(IngestPolicy::Repair)
            .admit(bad, &mut stats)
            .unwrap();
        let kept = kept.unwrap();
        assert_eq!(kept.points()[0].sigma, 0.0);
        assert_eq!(stats.repaired_records, 1);
    }

    #[test]
    fn static_repair_sanitizes_json_datasets() {
        let json = r#"{"trajectories":[{"points":[
            {"mean":{"x":0.1,"y":0.2},"sigma":-3.0}
        ]}]}"#;
        let data = Dataset::from_json(json).unwrap();
        let mut feed = StaticFeed::from_dataset(data);
        let report = feed.repair();
        assert_eq!(report.sigmas_clamped, 1);
        let stop = AtomicBool::new(false);
        let out = drain(&mut feed, &stop).unwrap();
        assert_eq!(out[0].points()[0].sigma, 0.0);
    }

    #[test]
    fn csv_static_feed_reports_defects() {
        let text = "traj_id,snapshot,x,y,sigma\n0,0,0.1,0.2,0.05\n0,1,oops,0.3,0.05\n";
        let feed = StaticFeed::from_csv(text, IngestPolicy::Skip).unwrap();
        assert_eq!(feed.stats().defect_lines, 1);
        assert!(feed.ingest_report().is_some());
    }
}
