//! The `.events` protocol decoder on the spine: version line, `t …`
//! arrival records, `# eof` terminator — over any [`LineSource`].
//!
//! This is the same protocol [`trajdata::eventlog`] defines; the decode
//! is shared via [`parse_event_line`], so a file replay, a live tail,
//! and a TCP stream cannot diverge in what a record means.

use crate::line::{LineSource, LineStep};
use crate::{Feed, FeedBatch, FeedError, FeedStats, Pipeline};
use std::sync::atomic::AtomicBool;
use trajdata::eventlog::{parse_event_line, EVENTS_VERSION_LINE};

/// A feed decoding the `.events` line protocol from a line source.
pub struct EventsFeed<S: LineSource> {
    lines: S,
    pipeline: Pipeline,
    stats: FeedStats,
    seen_version: bool,
    honour_eof: bool,
    line_no: usize,
    kind: &'static str,
}

impl<S: LineSource> EventsFeed<S> {
    /// Wraps a line source. `honour_eof` selects live semantics: a
    /// `# eof` line ends the stream (replays treat it as a comment,
    /// matching [`trajdata::EventTailer`]).
    pub fn new(lines: S, pipeline: Pipeline, honour_eof: bool, kind: &'static str) -> Self {
        EventsFeed {
            lines,
            pipeline,
            stats: FeedStats::default(),
            seen_version: false,
            honour_eof,
            line_no: 0,
            kind,
        }
    }

    fn advance(&mut self, stop: &AtomicBool) -> Result<FeedBatch, FeedError> {
        loop {
            match self.lines.next_line(stop)? {
                LineStep::End => return Ok(FeedBatch::End),
                LineStep::Restart => {
                    // Fresh stream after a reconnect: version line again.
                    self.seen_version = false;
                }
                LineStep::Line(raw) => {
                    self.line_no += 1;
                    let content = raw.trim();
                    if !self.seen_version {
                        if content.is_empty() || content.starts_with('#') {
                            continue;
                        }
                        if content != EVENTS_VERSION_LINE {
                            return Err(FeedError::Version {
                                found: content.to_string(),
                                expected: EVENTS_VERSION_LINE,
                            });
                        }
                        self.seen_version = true;
                        continue;
                    }
                    if self.honour_eof && content == "# eof" {
                        return Ok(FeedBatch::End);
                    }
                    match parse_event_line(&raw, self.line_no) {
                        Ok(Some(traj)) => {
                            if let Some(t) = self.pipeline.admit(traj, &mut self.stats)? {
                                self.stats.records += 1;
                                self.stats.batches += 1;
                                return Ok(FeedBatch::Records(vec![t]));
                            }
                        }
                        Ok(None) => {}
                        Err(e) => self.pipeline.tolerate(e.into(), &mut self.stats)?,
                    }
                }
            }
        }
    }
}

impl<S: LineSource> Feed for EventsFeed<S> {
    fn next_batch(&mut self, stop: &AtomicBool) -> Result<FeedBatch, FeedError> {
        let out = self.advance(stop);
        self.stats.reconnects = self.lines.reconnects();
        self.stats.recovery_clean = self.lines.recovery_clean();
        self.stats.recovery_torn = self.lines.recovery_torn();
        out
    }

    fn stats(&self) -> &FeedStats {
        &self.stats
    }

    fn kind(&self) -> &'static str {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::FileLineSource;
    use std::time::Duration;
    use trajdata::IngestPolicy;

    fn temp(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("trajfeed-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn replay(path: &std::path::Path, policy: IngestPolicy) -> EventsFeed<FileLineSource> {
        let src = FileLineSource::open(path, false, Duration::from_millis(1)).unwrap();
        EventsFeed::new(src, Pipeline::new(policy), false, "events")
    }

    #[test]
    fn replays_a_log_bit_exactly() {
        let path = temp(
            "replay.events",
            "trajstream-events v1\nt 0.1 0.2 0.05\nt 0.30000000000000004 0.4 0.0\n",
        );
        let mut feed = replay(&path, IngestPolicy::Strict);
        let stop = AtomicBool::new(false);
        let out = crate::drain(&mut feed, &stop).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].points()[0].mean.x, 0.30000000000000004);
        assert_eq!(feed.stats().records, 2);
    }

    #[test]
    fn wrong_version_is_fatal_even_under_skip() {
        let path = temp("badver.events", "not-an-event-log\nt 0.1 0.2 0.05\n");
        let mut feed = replay(&path, IngestPolicy::Skip);
        let stop = AtomicBool::new(false);
        assert!(matches!(
            crate::drain(&mut feed, &stop),
            Err(FeedError::Version { .. })
        ));
    }

    #[test]
    fn skip_policy_counts_defective_lines() {
        let path = temp(
            "defect.events",
            "trajstream-events v1\nt 0.1 0.2 0.05\nt nonsense\nt 0.3 0.4 0.05\n",
        );
        let mut feed = replay(&path, IngestPolicy::Skip);
        let stop = AtomicBool::new(false);
        let out = crate::drain(&mut feed, &stop).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(feed.stats().defect_lines, 1);

        let mut strict = replay(&path, IngestPolicy::Strict);
        assert!(crate::drain(&mut strict, &stop).is_err());
    }

    #[test]
    fn eof_marker_ends_live_streams_only() {
        let text = "trajstream-events v1\nt 0.1 0.2 0.05\n# eof\nt 0.3 0.4 0.05\n";
        let path = temp("eof.events", text);
        let stop = AtomicBool::new(false);

        let mut live = EventsFeed::new(
            FileLineSource::open(&path, false, Duration::from_millis(1)).unwrap(),
            Pipeline::default(),
            true,
            "events",
        );
        assert_eq!(crate::drain(&mut live, &stop).unwrap().len(), 1);

        let mut rep = replay(&path, IngestPolicy::Strict);
        assert_eq!(crate::drain(&mut rep, &stop).unwrap().len(), 2);
    }
}
