//! The trajdb cursor feed: min-id polling over a crash-safe segment
//! store, behind the same [`Feed`] interface as every other source.
//!
//! The store is reopened on every poll — segments are immutable once
//! committed, so a fresh read-only opener always sees a consistent
//! committed prefix even while a writer appends (the same discipline
//! the fleet's bespoke loop used before it moved onto the spine).

use crate::{Feed, FeedBatch, FeedError, FeedStats, Pipeline};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use trajdb::store::ReadFilter;
use trajdb::{Store, StoreOptions};

/// A feed polling a trajdb store by record-id cursor.
pub struct DbCursorFeed {
    dir: PathBuf,
    base: ReadFilter,
    follow: bool,
    poll: Duration,
    cursor: u64,
    pipeline: Pipeline,
    stats: FeedStats,
}

impl DbCursorFeed {
    /// Opens the store at `dir` (validating it exists and is readable)
    /// and starts a cursor at the first record `base` admits. In follow
    /// mode the feed polls for new appends every `poll`; otherwise it
    /// ends at the current committed tail.
    pub fn open(
        dir: impl Into<PathBuf>,
        base: ReadFilter,
        follow: bool,
        poll: Duration,
        pipeline: Pipeline,
    ) -> Result<DbCursorFeed, FeedError> {
        let dir = dir.into();
        Store::open(&dir, StoreOptions::default())?;
        Ok(DbCursorFeed {
            dir,
            cursor: base.min_id.unwrap_or(0),
            base,
            follow,
            poll,
            pipeline,
            stats: FeedStats::default(),
        })
    }
}

impl Feed for DbCursorFeed {
    fn next_batch(&mut self, stop: &AtomicBool) -> Result<FeedBatch, FeedError> {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(FeedBatch::End);
            }
            let store = Store::open(&self.dir, StoreOptions::default())?;
            let filter = ReadFilter {
                min_id: Some(self.cursor),
                ..self.base
            };
            let records = store.read(&filter)?;
            if !records.is_empty() {
                let mut batch = Vec::with_capacity(records.len());
                for record in records {
                    self.cursor = record.id + 1;
                    if let Some(t) = self.pipeline.admit(record.trajectory, &mut self.stats)? {
                        batch.push(t);
                    }
                }
                if batch.is_empty() {
                    continue;
                }
                self.stats.records += batch.len() as u64;
                self.stats.batches += 1;
                return Ok(FeedBatch::Records(batch));
            }
            if !self.follow {
                return Ok(FeedBatch::End);
            }
            std::thread::sleep(self.poll);
        }
    }

    fn stats(&self) -> &FeedStats {
        &self.stats
    }

    fn kind(&self) -> &'static str {
        "db"
    }
}
