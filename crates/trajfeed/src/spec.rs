//! Source specs: one string syntax for naming any feed, shared by
//! `trajmine stream`, `serve --live` shard specs, and the fleet.
//!
//! ```text
//! path/to/log.events        replay / tail an event log file
//! path/to/log.drlog         replay / tail a dead-reckoning log
//! dr:path/to/log            dead-reckoning log with any extension
//! tcp://host:port           event-log protocol over a TCP socket
//! dr+tcp://host:port        dead-reckoning protocol over a TCP socket
//! ```
//!
//! trajdb shard directories are a [`SourceSpec::Db`] built directly by
//! the `--db` discovery paths (a directory is not spelled in the string
//! syntax, avoiding ambiguity with relative file paths).

use crate::dr::DrConfig;
use crate::line::FileLineSource;
use crate::tcp::{TcpLineSource, TcpOptions};
use crate::{DbCursorFeed, DrFeed, EventsFeed, Feed, FeedError, Pipeline};
use std::path::PathBuf;
use std::time::Duration;
use trajdata::IngestPolicy;
use trajdb::store::ReadFilter;

/// Where a feed's bytes come from, and which protocol decodes them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSpec {
    /// An `.events` log file (replay or tail).
    Events(PathBuf),
    /// The `.events` protocol over a TCP socket (`host:port`).
    EventsTcp(String),
    /// A dead-reckoning log file (replay or tail).
    Dr(PathBuf),
    /// The dead-reckoning protocol over a TCP socket (`host:port`).
    DrTcp(String),
    /// A trajdb store directory, consumed by record-id cursor.
    Db(PathBuf),
}

impl SourceSpec {
    /// Parses the string syntax (see the module docs). Never fails: an
    /// unrecognized string is a file path to an event log, which is the
    /// pre-spine meaning of every spec.
    pub fn parse(raw: &str) -> SourceSpec {
        if let Some(rest) = raw.strip_prefix("dr+tcp://") {
            SourceSpec::DrTcp(rest.to_string())
        } else if let Some(rest) = raw.strip_prefix("tcp://") {
            SourceSpec::EventsTcp(rest.to_string())
        } else if let Some(rest) = raw.strip_prefix("dr:") {
            SourceSpec::Dr(PathBuf::from(rest))
        } else if raw.ends_with(".drlog") {
            SourceSpec::Dr(PathBuf::from(raw))
        } else {
            SourceSpec::Events(PathBuf::from(raw))
        }
    }

    /// A short label for the feed kind, used in logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            SourceSpec::Events(_) => "events",
            SourceSpec::EventsTcp(_) => "events+tcp",
            SourceSpec::Dr(_) => "dr",
            SourceSpec::DrTcp(_) => "dr+tcp",
            SourceSpec::Db(_) => "db",
        }
    }

    /// The human-readable source location.
    pub fn location(&self) -> String {
        match self {
            SourceSpec::Events(p) | SourceSpec::Dr(p) | SourceSpec::Db(p) => {
                p.display().to_string()
            }
            SourceSpec::EventsTcp(a) => format!("tcp://{a}"),
            SourceSpec::DrTcp(a) => format!("dr+tcp://{a}"),
        }
    }
}

impl std::fmt::Display for SourceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.location(), self.kind())
    }
}

/// Everything needed to open a feed from a [`SourceSpec`].
#[derive(Debug, Clone)]
pub struct FeedOptions {
    /// Live-tail semantics for file sources (sleep-and-retry at EOF,
    /// honour `# eof`) and follow mode for db cursors. Socket sources
    /// are always live.
    pub follow: bool,
    /// Poll interval: file-tail EOF sleeps, db cursor polls, and socket
    /// read-timeout granularity.
    pub poll: Duration,
    /// The sanitize-stage defect policy.
    pub policy: IngestPolicy,
    /// §3.1/§3.2 reconstruction parameters for dead-reckoning sources.
    pub dr: DrConfig,
    /// Socket transport knobs (`poll` is overridden by `self.poll`).
    pub tcp: TcpOptions,
    /// Record filter for db sources (id/time windows).
    pub db_filter: ReadFilter,
}

impl Default for FeedOptions {
    fn default() -> FeedOptions {
        FeedOptions {
            follow: false,
            poll: Duration::from_millis(50),
            policy: IngestPolicy::Strict,
            dr: DrConfig::default(),
            tcp: TcpOptions::default(),
            db_filter: ReadFilter::all(),
        }
    }
}

/// Opens a feed for `spec` — the one constructor every consumer
/// (`stream`, `serve --live`, the fleet) goes through.
pub fn open(spec: &SourceSpec, opts: &FeedOptions) -> Result<Box<dyn Feed>, FeedError> {
    let pipeline = Pipeline::new(opts.policy);
    let tcp = TcpOptions {
        poll: opts.poll,
        ..opts.tcp
    };
    Ok(match spec {
        SourceSpec::Events(path) => Box::new(EventsFeed::new(
            FileLineSource::open(path, opts.follow, opts.poll)?,
            pipeline,
            opts.follow,
            spec.kind(),
        )),
        SourceSpec::EventsTcp(addr) => Box::new(EventsFeed::new(
            TcpLineSource::new(addr.clone(), tcp),
            pipeline,
            true,
            spec.kind(),
        )),
        SourceSpec::Dr(path) => Box::new(DrFeed::new(
            FileLineSource::open(path, opts.follow, opts.poll)?,
            opts.dr,
            pipeline,
            opts.follow,
            spec.kind(),
        )?),
        SourceSpec::DrTcp(addr) => Box::new(DrFeed::new(
            TcpLineSource::new(addr.clone(), tcp),
            opts.dr,
            pipeline,
            true,
            spec.kind(),
        )?),
        SourceSpec::Db(dir) => Box::new(DbCursorFeed::open(
            dir,
            opts.db_filter,
            opts.follow,
            opts.poll,
            pipeline,
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_spec_shape() {
        assert_eq!(
            SourceSpec::parse("a/b.events"),
            SourceSpec::Events(PathBuf::from("a/b.events"))
        );
        assert_eq!(
            SourceSpec::parse("tcp://127.0.0.1:9000"),
            SourceSpec::EventsTcp("127.0.0.1:9000".to_string())
        );
        assert_eq!(
            SourceSpec::parse("dr+tcp://feed.example:80"),
            SourceSpec::DrTcp("feed.example:80".to_string())
        );
        assert_eq!(
            SourceSpec::parse("x/y.drlog"),
            SourceSpec::Dr(PathBuf::from("x/y.drlog"))
        );
        assert_eq!(
            SourceSpec::parse("dr:x/y.log"),
            SourceSpec::Dr(PathBuf::from("x/y.log"))
        );
        // Unknown extensions stay event-log files, the pre-spine meaning.
        assert_eq!(
            SourceSpec::parse("plain.log"),
            SourceSpec::Events(PathBuf::from("plain.log"))
        );
    }

    #[test]
    fn kinds_and_locations_render() {
        assert_eq!(SourceSpec::parse("tcp://h:1").kind(), "events+tcp");
        assert_eq!(SourceSpec::parse("a.drlog").kind(), "dr");
        assert_eq!(
            SourceSpec::parse("dr+tcp://h:1").to_string(),
            "dr+tcp://h:1 (dr+tcp)"
        );
    }
}
