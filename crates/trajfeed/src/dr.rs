//! The dead-reckoning feed adapter: GTFS-realtime-style vehicle
//! messages → §3.1 server-side reconstruction → §3.2 synchronization.
//!
//! Real transit feeds do not transmit trajectories; they transmit
//! *vehicle positions along a trip* — a trip descriptor (which shape the
//! vehicle runs) plus an odometer reading, at irregular times. This
//! module decodes that message shape and reconstructs the paper's
//! imprecise snapshot trajectories server-side:
//!
//! - **decode**: `shape` messages register a trip's polyline (planar
//!   `x y` pairs, or geodetic `lat lon` pairs projected through
//!   [`trajgeo::GeoProjection`] when the log opens with a `geo` header);
//!   `dr` messages place a vehicle at an odometer distance along its
//!   trip's shape at a report time.
//! - **synchronize (§3.2)**: the asynchronous reports are interpolated
//!   onto the shared `dt` lattice ([`trajdata::resample::schedule_covering`]
//!   + [`trajdata::resample::resample_linear`]), so every vehicle lands
//!   on the *same* snapshot schedule — the precondition for mining
//!   across objects.
//! - **reconstruct (§3.1)**: each synchronized snapshot gets
//!   `σ = U_eff / c` via [`mobility::UncertaintyModel::reconstruction_sigma`],
//!   where `U_eff` grows with snapshots elapsed since the last report
//!   when a growth rate is configured. A snapshot coinciding with a
//!   report is exact (σ = 0).
//!
//! ## Log format (`trajfeed-dr v1`)
//!
//! ```text
//! trajfeed-dr v1
//! geo <lat0> <lon0>                 # optional, once, before any shape
//! shape <trip> <a> <b> [<a> <b>]…   # polyline: x y pairs (lat lon in geo mode)
//! dr <vehicle> <trip> <t> <odometer>
//! end <vehicle>                     # trip over → emit the trajectory
//! # eof
//! ```
//!
//! Odometer distances are in shape-coordinate units (meters in geo
//! mode). Blank lines and `#` comments are ignored.

use crate::line::{LineSource, LineStep};
use crate::{Feed, FeedBatch, FeedError, FeedStats, Pipeline};
use mobility::UncertaintyModel;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::AtomicBool;
use trajdata::resample::{resample_linear, schedule_covering, RawReading};
use trajdata::{SnapshotPoint, Trajectory};
use trajgeo::{GeoProjection, Point2};

/// First line of every dead-reckoning log.
pub const DR_VERSION_LINE: &str = "trajfeed-dr v1";

/// Reconstruction parameters: the §3.1 tolerance/σ relation and the
/// §3.2 snapshot lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrConfig {
    /// Dead-reckoning tolerance `U`: the drift bound the producer
    /// promises between reports, in shape-coordinate units.
    pub u: f64,
    /// The paper's `c`: σ of a reconstructed snapshot is `U_eff / c`.
    pub c: f64,
    /// §3.1 uncertainty growth per snapshot of silence (0 = constant U).
    pub growth_rate: f64,
    /// Snapshot lattice spacing (§3.2), in report-time units.
    pub dt: f64,
}

impl Default for DrConfig {
    fn default() -> DrConfig {
        DrConfig {
            u: 0.02,
            c: 2.0,
            growth_rate: 0.0,
            dt: 1.0,
        }
    }
}

impl DrConfig {
    /// Validates the parameters; an error message on the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.u.is_finite() && self.u >= 0.0) {
            return Err(format!("dead-reckoning tolerance U must be >= 0, got {}", self.u));
        }
        if !(self.c.is_finite() && self.c > 0.0) {
            return Err(format!("sigma divisor c must be > 0, got {}", self.c));
        }
        if !(self.growth_rate.is_finite() && self.growth_rate >= 0.0) {
            return Err(format!("growth rate must be >= 0, got {}", self.growth_rate));
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(format!("snapshot spacing dt must be > 0, got {}", self.dt));
        }
        Ok(())
    }

    fn model(&self) -> UncertaintyModel {
        if self.growth_rate > 0.0 {
            UncertaintyModel::GrowingWithTime {
                rate: self.growth_rate,
            }
        } else {
            UncertaintyModel::Constant
        }
    }
}

/// Writes the log header: version line plus the optional `geo` origin.
pub fn dr_header(origin: Option<(f64, f64)>) -> String {
    let mut out = String::from(DR_VERSION_LINE);
    out.push('\n');
    if let Some((lat0, lon0)) = origin {
        writeln!(out, "geo {lat0} {lon0}").expect("writing to a String cannot fail");
    }
    out
}

/// Appends a `shape` message registering `trip`'s polyline. Pairs are
/// `x y` (planar) or `lat lon` (geo mode).
pub fn append_shape(out: &mut String, trip: &str, vertices: &[(f64, f64)]) {
    write!(out, "shape {trip}").expect("writing to a String cannot fail");
    for (a, b) in vertices {
        write!(out, " {a} {b}").expect("writing to a String cannot fail");
    }
    out.push('\n');
}

/// Appends a `dr` report: `vehicle` is `odometer` along `trip` at `t`.
pub fn append_report(out: &mut String, vehicle: &str, trip: &str, t: f64, odometer: f64) {
    writeln!(out, "dr {vehicle} {trip} {t} {odometer}").expect("writing to a String cannot fail");
}

/// Appends an `end` message: `vehicle`'s trip is over.
pub fn append_end(out: &mut String, vehicle: &str) {
    writeln!(out, "end {vehicle}").expect("writing to a String cannot fail");
}

/// A reconstructed trajectory plus how much §3.2 interpolation it took.
#[derive(Debug, Clone)]
pub struct DrRecord {
    /// The reconstructed imprecise trajectory.
    pub trajectory: Trajectory,
    /// Sync points that fell between reports (interpolated, σ > 0).
    pub interpolated: u64,
}

struct Shape {
    pts: Vec<Point2>,
    cum: Vec<f64>,
}

impl Shape {
    fn new(pts: Vec<Point2>) -> Shape {
        let mut cum = Vec::with_capacity(pts.len());
        let mut acc = 0.0;
        cum.push(0.0);
        for w in pts.windows(2) {
            acc += w[0].distance(w[1]);
            cum.push(acc);
        }
        Shape { pts, cum }
    }

    /// The position at arc-length `odo`, clamped to the polyline.
    fn point_at(&self, odo: f64) -> Point2 {
        let total = *self.cum.last().expect("shapes have >= 2 vertices");
        let d = odo.clamp(0.0, total);
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&d).expect("cumulative lengths are finite"))
        {
            Ok(i) => self.pts[i],
            Err(i) => {
                let seg = self.cum[i] - self.cum[i - 1];
                self.pts[i - 1].lerp(self.pts[i], (d - self.cum[i - 1]) / seg)
            }
        }
    }
}

struct VehicleBuf {
    trip: String,
    readings: Vec<(f64, f64)>,
}

/// The incremental dead-reckoning decoder: message lines in,
/// reconstructed trajectories out (one per `end`ed vehicle).
pub struct DrDecoder {
    cfg: DrConfig,
    proj: Option<GeoProjection>,
    shapes: HashMap<String, Shape>,
    vehicles: BTreeMap<String, VehicleBuf>,
    saw_body: bool,
}

impl DrDecoder {
    /// A decoder with validated reconstruction parameters.
    pub fn new(cfg: DrConfig) -> Result<DrDecoder, FeedError> {
        cfg.validate().map_err(FeedError::Config)?;
        Ok(DrDecoder {
            cfg,
            proj: None,
            shapes: HashMap::new(),
            vehicles: BTreeMap::new(),
            saw_body: false,
        })
    }

    /// The geodetic projection, once a `geo` header was decoded.
    pub fn projection(&self) -> Option<&GeoProjection> {
        self.proj.as_ref()
    }

    /// Resets all protocol state (a fresh stream after a reconnect).
    pub fn reset(&mut self) {
        self.proj = None;
        self.shapes.clear();
        self.vehicles.clear();
        self.saw_body = false;
    }

    /// Decodes one content line (already version-checked, non-blank,
    /// non-comment). Returns a record when an `end` message completed a
    /// vehicle; `Ok(None)` for state-building messages and for ended
    /// vehicles whose time span contains no lattice point.
    pub fn step(&mut self, content: &str, line: usize) -> Result<Option<DrRecord>, FeedError> {
        let mut fields = content.split_whitespace();
        let kind = fields.next().expect("caller skips blank lines");
        let rest: Vec<&str> = fields.collect();
        match kind {
            "geo" => {
                if self.saw_body {
                    return Err(protocol(line, "geo header must precede shapes and reports"));
                }
                if self.proj.is_some() {
                    return Err(protocol(line, "duplicate geo header"));
                }
                let [lat0, lon0] = parse_floats::<2>(&rest, line, "geo <lat0> <lon0>")?;
                self.proj = Some(GeoProjection::new(lat0, lon0).ok_or_else(|| {
                    protocol(line, &format!("unusable geo origin ({lat0}, {lon0})"))
                })?);
            }
            "shape" => {
                self.saw_body = true;
                let Some((trip, coords)) = rest.split_first() else {
                    return Err(protocol(line, "shape needs a trip id"));
                };
                if coords.len() < 4 || coords.len() % 2 != 0 {
                    return Err(protocol(
                        line,
                        "shape needs at least 2 coordinate pairs (an even count of values)",
                    ));
                }
                let mut pts = Vec::with_capacity(coords.len() / 2);
                for pair in coords.chunks_exact(2) {
                    let a = parse_float(pair[0], line)?;
                    let b = parse_float(pair[1], line)?;
                    pts.push(match &self.proj {
                        Some(proj) => proj.project(a, b),
                        None => Point2::new(a, b),
                    });
                }
                if pts.iter().any(|p| !p.is_finite()) {
                    return Err(protocol(line, "shape has non-finite vertices"));
                }
                if self
                    .shapes
                    .insert(trip.to_string(), Shape::new(pts))
                    .is_some()
                {
                    return Err(protocol(line, &format!("shape '{trip}' redefined")));
                }
            }
            "dr" => {
                self.saw_body = true;
                if rest.len() != 4 {
                    return Err(protocol(line, "dr <vehicle> <trip> <t> <odometer>"));
                }
                let (vehicle, trip) = (rest[0], rest[1]);
                let t = parse_float(rest[2], line)?;
                let odo = parse_float(rest[3], line)?;
                if !self.shapes.contains_key(trip) {
                    return Err(protocol(line, &format!("report references unknown trip '{trip}'")));
                }
                let buf = self
                    .vehicles
                    .entry(vehicle.to_string())
                    .or_insert_with(|| VehicleBuf {
                        trip: trip.to_string(),
                        readings: Vec::new(),
                    });
                if buf.trip != trip {
                    return Err(protocol(
                        line,
                        &format!("vehicle '{vehicle}' switched trips without an end message"),
                    ));
                }
                if buf.readings.last().is_some_and(|&(last, _)| t <= last) {
                    return Err(protocol(
                        line,
                        &format!("vehicle '{vehicle}' report times must strictly increase"),
                    ));
                }
                buf.readings.push((t, odo));
            }
            "end" => {
                if rest.len() != 1 {
                    return Err(protocol(line, "end <vehicle>"));
                }
                let vehicle = rest[0];
                let Some(buf) = self.vehicles.remove(vehicle) else {
                    return Err(protocol(line, &format!("end for unknown vehicle '{vehicle}'")));
                };
                return Ok(self.reconstruct(&buf));
            }
            other => return Err(protocol(line, &format!("unknown message kind '{other}'"))),
        }
        Ok(None)
    }

    /// Flushes every still-open vehicle (a log that ended without `end`
    /// messages), in vehicle-id order for determinism.
    pub fn finish(&mut self) -> Vec<DrRecord> {
        let vehicles = std::mem::take(&mut self.vehicles);
        vehicles
            .values()
            .filter_map(|buf| self.reconstruct(buf))
            .collect()
    }

    /// §3.2 synchronization + §3.1 σ assignment for one vehicle.
    fn reconstruct(&self, buf: &VehicleBuf) -> Option<DrRecord> {
        let shape = &self.shapes[&buf.trip];
        let readings: Vec<RawReading> = buf
            .readings
            .iter()
            .map(|&(time, odo)| RawReading {
                time,
                loc: shape.point_at(odo),
            })
            .collect();
        let (first, last) = (readings.first()?.time, readings.last()?.time);
        let times = schedule_covering(first, last, self.cfg.dt)?;
        if times.is_empty() {
            return None;
        }
        let means = resample_linear(&readings, &times)?;
        let model = self.cfg.model();
        let mut interpolated = 0u64;
        let points: Vec<SnapshotPoint> = times
            .iter()
            .zip(means)
            .map(|(&s, mean)| {
                // The last report at or before this sync point; the
                // lattice starts at or after the first report, so the
                // saturation only guards float-rounding edge cases.
                let idx = buf
                    .readings
                    .partition_point(|&(t, _)| t <= s)
                    .saturating_sub(1);
                let t_report = buf.readings[idx].0;
                let sigma = if s == t_report {
                    0.0
                } else {
                    interpolated += 1;
                    let elapsed = ((s - t_report) / self.cfg.dt).ceil().max(0.0) as usize;
                    model.reconstruction_sigma(self.cfg.u, self.cfg.c, elapsed, 0.0)
                };
                SnapshotPoint { mean, sigma }
            })
            .collect();
        let trajectory = Trajectory::new(points).ok()?;
        Some(DrRecord {
            trajectory,
            interpolated,
        })
    }
}

fn protocol(line: usize, message: &str) -> FeedError {
    FeedError::Protocol {
        line,
        message: message.to_string(),
    }
}

fn parse_float(s: &str, line: usize) -> Result<f64, FeedError> {
    s.parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| protocol(line, &format!("'{s}' is not a finite number")))
}

fn parse_floats<const N: usize>(
    fields: &[&str],
    line: usize,
    usage: &str,
) -> Result<[f64; N], FeedError> {
    if fields.len() != N {
        return Err(protocol(line, usage));
    }
    let mut out = [0.0; N];
    for (slot, s) in out.iter_mut().zip(fields) {
        *slot = parse_float(s, line)?;
    }
    Ok(out)
}

/// A feed decoding the dead-reckoning protocol from a line source.
pub struct DrFeed<S: LineSource> {
    lines: S,
    decoder: DrDecoder,
    pipeline: Pipeline,
    stats: FeedStats,
    seen_version: bool,
    honour_eof: bool,
    line_no: usize,
    done: bool,
    kind: &'static str,
}

impl<S: LineSource> DrFeed<S> {
    /// Wraps a line source. `honour_eof` selects live semantics (a
    /// `# eof` line ends the stream; replays flush at end-of-file
    /// either way).
    pub fn new(
        lines: S,
        cfg: DrConfig,
        pipeline: Pipeline,
        honour_eof: bool,
        kind: &'static str,
    ) -> Result<Self, FeedError> {
        Ok(DrFeed {
            lines,
            decoder: DrDecoder::new(cfg)?,
            pipeline,
            stats: FeedStats::default(),
            seen_version: false,
            honour_eof,
            line_no: 0,
            done: false,
            kind,
        })
    }

    fn emit(&mut self, rec: DrRecord) -> Result<Option<Trajectory>, FeedError> {
        self.stats.reconstructed += 1;
        self.stats.resampled_points += rec.interpolated;
        let admitted = self.pipeline.admit(rec.trajectory, &mut self.stats)?;
        if admitted.is_some() {
            self.stats.records += 1;
        }
        Ok(admitted)
    }

    /// Flush still-open vehicles at stream end.
    fn flush(&mut self) -> Result<FeedBatch, FeedError> {
        self.done = true;
        let mut batch = Vec::new();
        for rec in self.decoder.finish() {
            if let Some(t) = self.emit(rec)? {
                batch.push(t);
            }
        }
        if batch.is_empty() {
            Ok(FeedBatch::End)
        } else {
            self.stats.batches += 1;
            Ok(FeedBatch::Records(batch))
        }
    }

    fn advance(&mut self, stop: &AtomicBool) -> Result<FeedBatch, FeedError> {
        if self.done {
            return Ok(FeedBatch::End);
        }
        loop {
            match self.lines.next_line(stop)? {
                LineStep::End => return self.flush(),
                LineStep::Restart => {
                    self.seen_version = false;
                    self.decoder.reset();
                }
                LineStep::Line(raw) => {
                    self.line_no += 1;
                    let content = raw.trim();
                    if !self.seen_version {
                        if content.is_empty() || content.starts_with('#') {
                            continue;
                        }
                        if content != DR_VERSION_LINE {
                            return Err(FeedError::Version {
                                found: content.to_string(),
                                expected: DR_VERSION_LINE,
                            });
                        }
                        self.seen_version = true;
                        continue;
                    }
                    if self.honour_eof && content == "# eof" {
                        return self.flush();
                    }
                    if content.is_empty() || content.starts_with('#') {
                        continue;
                    }
                    match self.decoder.step(content, self.line_no) {
                        Ok(Some(rec)) => {
                            if let Some(t) = self.emit(rec)? {
                                self.stats.batches += 1;
                                return Ok(FeedBatch::Records(vec![t]));
                            }
                        }
                        Ok(None) => {}
                        Err(e) => self.pipeline.tolerate(e, &mut self.stats)?,
                    }
                }
            }
        }
    }
}

impl<S: LineSource> Feed for DrFeed<S> {
    fn next_batch(&mut self, stop: &AtomicBool) -> Result<FeedBatch, FeedError> {
        let out = self.advance(stop);
        self.stats.reconnects = self.lines.reconnects();
        self.stats.recovery_clean = self.lines.recovery_clean();
        self.stats.recovery_torn = self.lines.recovery_torn();
        out
    }

    fn stats(&self) -> &FeedStats {
        &self.stats
    }

    fn kind(&self) -> &'static str {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(log: &str, cfg: DrConfig) -> Vec<DrRecord> {
        let mut dec = DrDecoder::new(cfg).unwrap();
        let mut out = Vec::new();
        let mut seen_version = false;
        for (i, raw) in log.lines().enumerate() {
            let content = raw.trim();
            if content.is_empty() || content.starts_with('#') {
                continue;
            }
            if !seen_version {
                assert_eq!(content, DR_VERSION_LINE);
                seen_version = true;
                continue;
            }
            if let Some(rec) = dec.step(content, i + 1).unwrap() {
                out.push(rec);
            }
        }
        out.extend(dec.finish());
        out
    }

    fn sample_log() -> String {
        let mut log = dr_header(None);
        append_shape(&mut log, "r1", &[(0.0, 0.0), (10.0, 0.0)]);
        append_report(&mut log, "bus-1", "r1", 0.0, 0.0);
        append_report(&mut log, "bus-1", "r1", 4.0, 8.0);
        append_end(&mut log, "bus-1");
        log
    }

    #[test]
    fn reconstructs_on_the_dt_lattice_with_report_sigmas_zero() {
        let recs = decode(&sample_log(), DrConfig::default());
        assert_eq!(recs.len(), 1);
        let traj = &recs[0].trajectory;
        // Lattice 0,1,2,3,4; odometer 0→8 over t 0→4 → 2 units/t.
        assert_eq!(traj.len(), 5);
        assert_eq!(traj.points()[0].mean, Point2::new(0.0, 0.0));
        assert_eq!(traj.points()[2].mean, Point2::new(4.0, 0.0));
        assert_eq!(traj.points()[4].mean, Point2::new(8.0, 0.0));
        // σ = 0 exactly at report times, U/c between them.
        assert_eq!(traj.points()[0].sigma, 0.0);
        assert_eq!(traj.points()[4].sigma, 0.0);
        assert_eq!(traj.points()[2].sigma, 0.01);
        assert_eq!(recs[0].interpolated, 3);
    }

    #[test]
    fn growth_rate_widens_sigma_with_silence() {
        let cfg = DrConfig {
            growth_rate: 0.5,
            ..DrConfig::default()
        };
        let recs = decode(&sample_log(), cfg);
        let traj = &recs[0].trajectory;
        // 1, 2, 3 snapshots after the t=0 report: U·(1+0.5·k)/c.
        assert!((traj.points()[1].sigma - 0.015).abs() < 1e-12);
        assert!((traj.points()[2].sigma - 0.02).abs() < 1e-12);
        assert!((traj.points()[3].sigma - 0.025).abs() < 1e-12);
    }

    #[test]
    fn geo_mode_projects_through_the_reference_origin() {
        let mut log = dr_header(Some((40.7128, -74.0060)));
        // A shape running ~1.1 km due north of the origin.
        append_shape(
            &mut log,
            "r1",
            &[(40.7128, -74.0060), (40.7228, -74.0060)],
        );
        append_report(&mut log, "v", "r1", 0.0, 0.0);
        append_report(&mut log, "v", "r1", 2.0, 1000.0);
        append_end(&mut log, "v");
        let recs = decode(&log, DrConfig { u: 50.0, ..DrConfig::default() });
        let traj = &recs[0].trajectory;
        assert_eq!(traj.len(), 3);
        // Midpoint: 500 m north of the origin, on the meridian.
        assert!(traj.points()[1].mean.x.abs() < 1e-9);
        assert!((traj.points()[1].mean.y - 500.0).abs() < 1.0);
    }

    #[test]
    fn odometer_is_clamped_to_the_shape() {
        let mut log = dr_header(None);
        append_shape(&mut log, "r", &[(0.0, 0.0), (4.0, 0.0)]);
        append_report(&mut log, "v", "r", 0.0, -3.0);
        append_report(&mut log, "v", "r", 1.0, 9.0);
        append_end(&mut log, "v");
        let recs = decode(&log, DrConfig::default());
        let traj = &recs[0].trajectory;
        assert_eq!(traj.points()[0].mean, Point2::new(0.0, 0.0));
        assert_eq!(traj.points()[1].mean, Point2::new(4.0, 0.0));
    }

    #[test]
    fn finish_flushes_unended_vehicles_in_id_order() {
        let mut log = dr_header(None);
        append_shape(&mut log, "r", &[(0.0, 0.0), (10.0, 0.0)]);
        append_report(&mut log, "zeta", "r", 0.0, 0.0);
        append_report(&mut log, "zeta", "r", 1.0, 1.0);
        append_report(&mut log, "alpha", "r", 0.0, 5.0);
        append_report(&mut log, "alpha", "r", 1.0, 6.0);
        let recs = decode(&log, DrConfig::default());
        assert_eq!(recs.len(), 2);
        // BTreeMap order: alpha before zeta.
        assert_eq!(recs[0].trajectory.points()[0].mean.x, 5.0);
        assert_eq!(recs[1].trajectory.points()[0].mean.x, 0.0);
    }

    #[test]
    fn protocol_violations_name_the_line() {
        let mut dec = DrDecoder::new(DrConfig::default()).unwrap();
        assert!(dec.step("shape r 0 0", 3).is_err()); // one pair only
        assert!(dec.step("dr v nowhere 0 0", 4).is_err()); // unknown trip
        assert!(dec.step("end ghost", 5).is_err()); // unknown vehicle
        assert!(dec.step("warp v", 6).is_err()); // unknown kind
        dec.step("shape r 0 0 1 0", 7).unwrap();
        dec.step("dr v r 1.0 0.0", 8).unwrap();
        assert!(dec.step("dr v r 0.5 0.1", 9).is_err()); // time went backwards
        assert!(dec.step("geo 40 -74", 10).is_err()); // geo after body
    }

    #[test]
    fn vehicle_outside_the_lattice_is_dropped_silently() {
        let mut log = dr_header(None);
        append_shape(&mut log, "r", &[(0.0, 0.0), (1.0, 0.0)]);
        append_report(&mut log, "v", "r", 0.25, 0.0);
        append_report(&mut log, "v", "r", 0.75, 1.0);
        append_end(&mut log, "v");
        assert!(decode(&log, DrConfig::default()).is_empty());
    }
}
