//! A TCP socket line source: newline-framed events over a live
//! connection, with torn-line accumulation and bounded-backoff
//! reconnection.
//!
//! The wire protocol is byte-identical to the on-disk logs — a version
//! line, then newline-framed records — so a producer can `nc -l` a file
//! or stream live appends and the consumer cannot tell the difference.
//! What the socket adds is *transport failure*: the peer can vanish
//! mid-line. Recovery mirrors the on-disk torn-tail story
//! ([`trajio::tail::TailVerdict`] semantics, diagnosed live): bytes
//! after the last newline are a torn tail, discarded and counted as a
//! torn recovery; an empty buffer is a clean recovery. After every
//! reconnect the source emits [`LineStep::Restart`] so the protocol
//! layer re-expects a fresh stream (version line first) — a restarted
//! producer replays from its own beginning, never from a byte offset.

use crate::line::{LineSource, LineStep};
use crate::FeedError;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Transport knobs for a [`TcpLineSource`].
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Read-timeout granularity: how often a blocked read rechecks the
    /// stop flag.
    pub poll: Duration,
    /// Connection attempts per (re)connection before giving up.
    pub connect_attempts: u32,
    /// First reconnect backoff; doubles per failed attempt.
    pub backoff_initial: Duration,
    /// Backoff ceiling (the "bounded" in bounded backoff).
    pub backoff_max: Duration,
}

impl Default for TcpOptions {
    fn default() -> TcpOptions {
        TcpOptions {
            poll: Duration::from_millis(50),
            connect_attempts: 30,
            backoff_initial: Duration::from_millis(100),
            backoff_max: Duration::from_secs(2),
        }
    }
}

/// A line source over a TCP connection (see the module docs).
pub struct TcpLineSource {
    addr: String,
    opts: TcpOptions,
    conn: Option<TcpStream>,
    buf: Vec<u8>,
    consumed: usize,
    ever_connected: bool,
    reconnects: u64,
    recovery_clean: u64,
    recovery_torn: u64,
}

impl TcpLineSource {
    /// Creates a source dialing `addr` (`host:port`). The first
    /// connection is established lazily on the first `next_line`.
    pub fn new(addr: impl Into<String>, opts: TcpOptions) -> TcpLineSource {
        TcpLineSource {
            addr: addr.into(),
            opts,
            conn: None,
            buf: Vec::new(),
            consumed: 0,
            ever_connected: false,
            reconnects: 0,
            recovery_clean: 0,
            recovery_torn: 0,
        }
    }

    /// The address this source dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn take_line(&mut self) -> Option<Result<String, FeedError>> {
        let nl = self.buf[self.consumed..]
            .iter()
            .position(|&b| b == b'\n')?;
        let line = &self.buf[self.consumed..self.consumed + nl];
        let out = match std::str::from_utf8(line) {
            Ok(s) => Ok(s.trim_end_matches('\r').to_string()),
            Err(_) => Err(FeedError::Protocol {
                line: 0,
                message: "socket line is not UTF-8".to_string(),
            }),
        };
        self.consumed += nl + 1;
        // Compact once the consumed prefix dominates, so a long-lived
        // connection does not grow the buffer without bound.
        if self.consumed > 4096 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Some(out)
    }

    /// Establishes a connection with bounded exponential backoff.
    /// `Ok(None)` when the stop flag ended the wait.
    fn establish(&self, stop: &AtomicBool) -> Result<Option<TcpStream>, FeedError> {
        let attempts = self.opts.connect_attempts.max(1);
        let mut backoff = self.opts.backoff_initial;
        let mut last = String::from("no attempt made");
        for attempt in 0..attempts {
            if stop.load(Ordering::SeqCst) {
                return Ok(None);
            }
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(self.opts.backoff_max);
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(self.opts.poll.max(Duration::from_millis(1))))
                        .map_err(FeedError::Io)?;
                    return Ok(Some(stream));
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(FeedError::Connect {
            addr: self.addr.clone(),
            attempts,
            message: last,
        })
    }
}

impl LineSource for TcpLineSource {
    fn next_line(&mut self, stop: &AtomicBool) -> Result<LineStep, FeedError> {
        loop {
            if let Some(line) = self.take_line() {
                return line.map(LineStep::Line);
            }
            if stop.load(Ordering::SeqCst) {
                return Ok(LineStep::End);
            }
            if self.conn.is_none() {
                let Some(stream) = self.establish(stop)? else {
                    return Ok(LineStep::End);
                };
                self.conn = Some(stream);
                if self.ever_connected {
                    self.reconnects += 1;
                    if self.buf.len() > self.consumed {
                        // Bytes after the last newline: a torn tail, the
                        // live analogue of TailVerdict::TornTruncated.
                        self.recovery_torn += 1;
                    } else {
                        self.recovery_clean += 1;
                    }
                    self.buf.clear();
                    self.consumed = 0;
                    return Ok(LineStep::Restart);
                }
                self.ever_connected = true;
                continue;
            }
            let mut chunk = [0u8; 4096];
            let result = self
                .conn
                .as_mut()
                .expect("connection checked above")
                .read(&mut chunk);
            match result {
                // Remote closed. A producer that finished cleanly said
                // `# eof` first (the protocol layer stopped reading); a
                // close without it is a transport failure → reconnect.
                Ok(0) => self.conn = None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => self.conn = None,
            }
        }
    }

    fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn recovery_clean(&self) -> u64 {
        self.recovery_clean
    }

    fn recovery_torn(&self) -> u64 {
        self.recovery_torn
    }
}
