//! The transport layer under line-oriented feeds: anything that yields
//! complete lines, with follow/torn-line semantics, regardless of
//! whether the bytes come from a file or a socket.

use crate::FeedError;
use std::sync::atomic::AtomicBool;
use std::time::Duration;
use trajdata::LineFollower;

/// One step of a line source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineStep {
    /// A complete line (terminator stripped).
    Line(String),
    /// The transport broke and was re-established (a socket reconnect).
    /// The protocol layer must treat what follows as a fresh stream —
    /// in particular, expect the version line again.
    Restart,
    /// The source ended: end-of-file in replay mode, or the stop flag
    /// observed while waiting for bytes.
    End,
}

/// A source of complete protocol lines. Implementations never surface a
/// partial line: a torn append (file) or a mid-line disconnect (socket)
/// is either waited out or discarded with a counted recovery.
pub trait LineSource: Send {
    /// Blocks (stop-aware) until a line, a transport restart, or the end
    /// of the source.
    fn next_line(&mut self, stop: &AtomicBool) -> Result<LineStep, FeedError>;

    /// Times the transport re-established a dropped connection.
    fn reconnects(&self) -> u64 {
        0
    }

    /// Reconnect recoveries whose receive buffer was empty (clean).
    fn recovery_clean(&self) -> u64 {
        0
    }

    /// Reconnect recoveries that discarded a torn partial line.
    fn recovery_torn(&self) -> u64 {
        0
    }
}

/// A file-backed line source: [`trajdata::LineFollower`] behind the
/// [`LineSource`] interface. Follow mode tails appends `tail -f`-style;
/// replay mode ends at end-of-file.
pub struct FileLineSource {
    inner: LineFollower,
}

impl FileLineSource {
    /// Opens `path`; `follow` selects live-tail semantics and `poll` the
    /// sleep interval between polls at end-of-file.
    pub fn open(
        path: &std::path::Path,
        follow: bool,
        poll: Duration,
    ) -> std::io::Result<FileLineSource> {
        Ok(FileLineSource {
            inner: LineFollower::open(path, follow, poll)?,
        })
    }
}

impl LineSource for FileLineSource {
    fn next_line(&mut self, stop: &AtomicBool) -> Result<LineStep, FeedError> {
        match self.inner.next_line(stop)? {
            Some(line) => Ok(LineStep::Line(line.to_string())),
            None => Ok(LineStep::End),
        }
    }
}
