//! CRC-32 (IEEE 802.3 / zlib polynomial) — the checksum guarding every
//! trajdb record batch and sealed segment.
//!
//! The implementation is the classic reflected table-driven form with the
//! table built at compile time, so the crate stays dependency-free. The
//! on-disk token format is fixed-width 8-digit lowercase hex, mirroring
//! the 16-digit f64 bit-hex convention of the text codecs.

use crate::CodecError;

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Computes the CRC-32 (IEEE) of `bytes`. Matches zlib's `crc32` for the
/// same input, so fixtures can be cross-checked with standard tooling.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encodes a CRC-32 as exactly 8 lowercase hex digits — the token format
/// used in segment batch headers and the store manifest.
pub fn crc32_hex(crc: u32) -> String {
    format!("{crc:08x}")
}

/// Decodes an 8-digit hex token back to a CRC-32 value.
pub fn crc32_from_hex(s: &str) -> Result<u32, CodecError> {
    if s.len() != 8 {
        return Err(CodecError::new(format!(
            "expected 8 hex digits of CRC-32, got '{s}'"
        )));
    }
    u32::from_str_radix(s, 16).map_err(|_| CodecError::new(format!("bad CRC-32 token '{s}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"t 0.125 0.25 0.01\n".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), reference, "bit {i} flip went undetected");
        }
    }

    #[test]
    fn hex_round_trips_fixed_width() {
        for crc in [0u32, 1, 0xCBF4_3926, u32::MAX] {
            let s = crc32_hex(crc);
            assert_eq!(s.len(), 8);
            assert_eq!(crc32_from_hex(&s).unwrap(), crc);
        }
        assert!(crc32_from_hex("abc").is_err());
        assert!(crc32_from_hex("00000000f").is_err());
        assert!(crc32_from_hex("0000000g").is_err());
    }
}
