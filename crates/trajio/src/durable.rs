//! Durable file-write primitives — the only place in the workspace that
//! touches `rename`, `fsync`, or raw appends (CI greps enforce this).
//!
//! The original `write_atomic` (tmp + rename) protected readers from
//! *torn* artifacts but not from power loss: neither the tmp file's data
//! nor the directory entry were fsynced, so a crash shortly after a
//! "successful" save could surface an empty, partial, or missing file on
//! reboot. Every helper here pairs its visible effect with the fsyncs
//! that make it survive a power cut:
//!
//! * [`write_atomic`] / [`write_atomic_bytes`] — tmp file, `fsync(tmp)`,
//!   rename over the destination, `fsync(parent dir)`. Readers see the
//!   old or the new content, never a mixture, even across power loss.
//! * [`append`] — append bytes to a log/segment (creating it if needed).
//!   Durability of appends is governed by the caller's fsync policy via
//!   [`sync_file`]; the append itself never reorders past a prior sync.
//! * [`truncate`] — cut a file to a committed length and fsync it: the
//!   recovery half of torn-tail handling.
//! * [`sync_file`] / [`sync_dir`] — explicit barriers for policy-driven
//!   callers (trajdb's `FsyncPolicy::EveryN`, segment sealing).
//!
//! Directory fsync is a no-op on platforms where directories cannot be
//! opened for syncing; on Linux (the deployment target) it is real.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Why a durable write failed, and on which path (a sibling `.tmp`
/// file, the final destination, or the parent directory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableError {
    /// The path the failing operation touched.
    pub path: PathBuf,
    /// The operating-system error message.
    pub message: String,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot write {}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for DurableError {}

fn fail(path: &Path, e: std::io::Error) -> DurableError {
    DurableError {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Fsyncs the directory containing `path`, making a rename or file
/// creation inside it durable. Platforms that cannot open directories
/// for syncing silently skip (the subsequent data fsyncs still hold).
pub fn sync_parent_dir(path: &Path) -> Result<(), DurableError> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    match File::open(parent) {
        Ok(dir) => dir.sync_all().map_err(|e| fail(parent, e)),
        // Not being able to open a directory read-only is a platform
        // quirk, not a durability bug we can act on.
        Err(_) => Ok(()),
    }
}

/// Fsyncs `dir` itself (same contract as [`sync_parent_dir`], for
/// callers that already hold the directory path).
pub fn sync_dir(dir: &Path) -> Result<(), DurableError> {
    match File::open(dir) {
        Ok(d) => d.sync_all().map_err(|e| fail(dir, e)),
        Err(_) => Ok(()),
    }
}

/// Writes `bytes` to `path` durably and atomically: sibling `.tmp` file,
/// `fsync` of its data, rename over the destination, `fsync` of the
/// parent directory. An interrupted save — including a power cut — leaves
/// either the complete old content or the complete new content.
pub fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    {
        let mut f = File::create(&tmp).map_err(|e| fail(&tmp, e))?;
        f.write_all(bytes).map_err(|e| fail(&tmp, e))?;
        f.sync_all().map_err(|e| fail(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| fail(path, e))?;
    sync_parent_dir(path)
}

/// [`write_atomic_bytes`] for text artifacts — the writer behind every
/// checkpoint, snapshot, and manifest in the workspace.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), DurableError> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// Appends `bytes` to `path`, creating the file when absent. Returns the
/// file length *before* the append, so callers can record the committed
/// offset. Durability is the caller's fsync policy: follow with
/// [`sync_file`] where the format requires the bytes to survive a crash.
pub fn append(path: &Path, bytes: &[u8]) -> Result<u64, DurableError> {
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| fail(path, e))?;
    let offset = f.metadata().map_err(|e| fail(path, e))?.len();
    f.write_all(bytes).map_err(|e| fail(path, e))?;
    Ok(offset)
}

/// Fsyncs `path`'s data and metadata — the barrier behind
/// `FsyncPolicy::Always`/`EveryN` and segment sealing.
pub fn sync_file(path: &Path) -> Result<(), DurableError> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| fail(path, e))?;
    f.sync_all().map_err(|e| fail(path, e))
}

/// Truncates `path` to `len` bytes and fsyncs it — how recovery discards
/// a torn or garbage tail after a crash, leaving exactly the committed
/// prefix.
pub fn truncate(path: &Path, len: u64) -> Result<(), DurableError> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| fail(path, e))?;
    f.set_len(len).map_err(|e| fail(path, e))?;
    f.sync_all().map_err(|e| fail(path, e))
}

/// Removes `path` and fsyncs its parent directory, so the removal (of an
/// orphaned segment or stray `.tmp` file) is itself durable.
pub fn remove_file(path: &Path) -> Result<(), DurableError> {
    std::fs::remove_file(path).map_err(|e| fail(path, e))?;
    sync_parent_dir(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("trajio-durable-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_and_reports_paths() {
        let dir = tmp_dir("aw");
        let path = dir.join("artifact.txt");
        write_atomic(&path, "one").unwrap();
        write_atomic(&path, "two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        assert!(
            !path.with_extension("txt.tmp").exists(),
            "tmp sibling must not linger"
        );
        let bad = Path::new("/nonexistent-dir/trajio-aw");
        let e = write_atomic(bad, "x").unwrap_err();
        assert!(e.path.to_string_lossy().contains("trajio-aw"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_reports_prior_offset_and_creates() {
        let dir = tmp_dir("append");
        let path = dir.join("log");
        assert_eq!(append(&path, b"abc").unwrap(), 0);
        assert_eq!(append(&path, b"defg").unwrap(), 3);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcdefg");
        sync_file(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_cuts_to_committed_prefix() {
        let dir = tmp_dir("trunc");
        let path = dir.join("log");
        append(&path, b"committed|torn tail").unwrap();
        truncate(&path, 9).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"committed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_file_deletes_durably() {
        let dir = tmp_dir("rm");
        let path = dir.join("victim");
        append(&path, b"x").unwrap();
        remove_file(&path).unwrap();
        assert!(!path.exists());
        assert!(remove_file(&path).is_err(), "double remove is an error");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_sync_helpers_tolerate_roots() {
        sync_parent_dir(Path::new("lone-file")).unwrap();
        sync_dir(&std::env::temp_dir()).unwrap();
    }
}
