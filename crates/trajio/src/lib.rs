//! Shared persistence primitives for the trajpattern on-disk formats.
//!
//! Every text artifact in the workspace — checkpoint v1 (`trajpattern`),
//! checkpoint v2 (`trajstream`), the `trajmine-snapshot/v1` JSON
//! (`trajserve`), and the `.events` log (`trajdata`) — was originally
//! written with its own copy of the same four primitives: the 16-digit
//! f64 bit-hex codec, a line cursor with positional errors, a
//! version-line sniff, and the atomic tmp+rename writer. This crate is
//! the single home for those primitives; the formats themselves are
//! frozen byte-for-byte (see the golden-file tests at the workspace
//! root), only the implementations live here.
//!
//! The crate is std-only and dependency-free so it can sit below every
//! other crate in the workspace, including `trajdata`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod durable;
pub mod tail;

pub use durable::{write_atomic, DurableError};

/// Former name of [`DurableError`], kept so existing `write_atomic`
/// callers keep compiling; the write itself is now fully fsynced.
pub type AtomicWriteError = DurableError;

use std::fmt;
// (Path-based helpers live in `durable`; the root keeps only the text
// codec primitives.)

/// A malformed token or section encountered by a codec primitive.
///
/// Deliberately position-free: primitives don't know line numbers, so
/// callers attach their cursor position when mapping into a
/// format-specific error (e.g. `CheckpointError::Format`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> CodecError {
        CodecError {
            message: message.into(),
        }
    }

    /// The human-readable description, suitable for embedding in a
    /// positional error.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Encodes raw `u64` bits as exactly 16 lowercase hex digits — the token
/// format every text codec in the workspace uses for `f64` values and
/// fingerprint bit patterns. This is the only place the width lives.
pub fn bits_hex(bits: u64) -> String {
    format!("{bits:016x}")
}

/// Encodes an `f64` as the bit-hex of its IEEE-754 representation.
/// Round-trips bit-exactly through [`f64_from_hex`] for every value,
/// including NaN payloads, infinities, signed zeros, and subnormals.
pub fn f64_hex(v: f64) -> String {
    bits_hex(v.to_bits())
}

/// Decodes a 16-digit hex token back to raw `u64` bits.
pub fn u64_from_hex(s: &str) -> Result<u64, CodecError> {
    if s.len() != 16 {
        return Err(CodecError::new(format!(
            "expected 16 hex digits, got '{s}'"
        )));
    }
    u64::from_str_radix(s, 16).map_err(|_| CodecError::new(format!("bad f64 bit pattern '{s}'")))
}

/// Decodes a 16-digit hex token to the `f64` with those bits.
pub fn f64_from_hex(s: &str) -> Result<f64, CodecError> {
    u64_from_hex(s).map(f64::from_bits)
}

/// Parses an integer token, naming `what` in the error message.
pub fn parse_int<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CodecError> {
    s.parse()
        .map_err(|_| CodecError::new(format!("bad {what}: '{s}'")))
}

/// Splits a `tag n v1 … vn` section line, verifying the tag and that
/// exactly `n` values follow the count.
pub fn section<'a>(text: &'a str, tag: &str) -> Result<Vec<&'a str>, CodecError> {
    let mut fields = text.split_whitespace();
    match fields.next() {
        Some(t) if t == tag => {}
        other => {
            return Err(CodecError::new(format!(
                "expected '{tag}' section, found '{}'",
                other.unwrap_or("")
            )))
        }
    }
    let n: usize = parse_int(
        fields
            .next()
            .ok_or_else(|| CodecError::new("missing count"))?,
        "count",
    )?;
    let values: Vec<&str> = fields.collect();
    if values.len() != n {
        return Err(CodecError::new(format!(
            "'{tag}' declares {n} values but has {}",
            values.len()
        )));
    }
    Ok(values)
}

/// Line cursor over a text artifact, tracking 1-based positions for
/// error reporting. Two policies cover the workspace's formats:
///
/// * [`LineCursor::strict`] — yields every line verbatim; blank lines
///   are content (checkpoint v1).
/// * [`LineCursor::lenient`] — skips blank lines and yields trimmed
///   content (checkpoint v2).
#[derive(Debug)]
pub struct LineCursor<'a> {
    lines: std::str::Lines<'a>,
    line: usize,
    skip_blank: bool,
}

impl<'a> LineCursor<'a> {
    /// Cursor that yields every line verbatim.
    pub fn strict(text: &'a str) -> LineCursor<'a> {
        LineCursor {
            lines: text.lines(),
            line: 0,
            skip_blank: false,
        }
    }

    /// Cursor that skips blank lines and trims the rest.
    pub fn lenient(text: &'a str) -> LineCursor<'a> {
        LineCursor {
            lines: text.lines(),
            line: 0,
            skip_blank: true,
        }
    }

    /// The 1-based number of the most recently yielded line (or of the
    /// position just past the end once [`LineCursor::next_line`] has
    /// returned `None`).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Advances to the next line under the cursor's policy.
    pub fn next_line(&mut self) -> Option<&'a str> {
        loop {
            self.line += 1;
            match self.lines.next() {
                Some(l) if self.skip_blank && l.trim().is_empty() => continue,
                Some(l) => return Some(if self.skip_blank { l.trim() } else { l }),
                None => return None,
            }
        }
    }
}

/// Returns the first line carrying content — skipping blank lines, and
/// `#` comments when `skip_comments` is set — trimmed. `None` when the
/// input is effectively empty. This is the version-line sniff shared by
/// every reader that dispatches on a format's first line.
pub fn first_content_line(text: &str, skip_comments: bool) -> Option<&str> {
    text.lines()
        .map(str::trim)
        .find(|l| !(l.is_empty() || skip_comments && l.starts_with('#')))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_is_fixed_width_and_exact() {
        assert_eq!(bits_hex(0), "0000000000000000");
        assert_eq!(f64_hex(1.0), "3ff0000000000000");
        assert_eq!(f64_from_hex("3ff0000000000000").unwrap(), 1.0);
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            5e-324,
        ] {
            let back = f64_from_hex(&f64_hex(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        assert_eq!(
            f64_from_hex(&f64_hex(nan)).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn hex_rejects_wrong_width_and_garbage() {
        assert!(u64_from_hex("abc").is_err());
        assert!(u64_from_hex("3ff00000000000000").is_err());
        assert!(u64_from_hex("3ff000000000000g").is_err());
        assert!(u64_from_hex("").is_err());
        let e = f64_from_hex("xyz").unwrap_err();
        assert!(e.to_string().contains("16 hex digits"), "{e}");
    }

    #[test]
    fn section_validates_tag_and_count() {
        assert_eq!(section("q 3 1 2 3", "q").unwrap(), vec!["1", "2", "3"]);
        assert_eq!(section("q 0", "q").unwrap(), Vec::<&str>::new());
        assert!(section("q 3 1 2", "q").is_err());
        assert!(section("r 1 5", "q").is_err());
        assert!(section("q", "q").is_err());
        assert!(section("q x 1", "q").is_err());
    }

    #[test]
    fn strict_cursor_yields_blanks_verbatim() {
        let mut c = LineCursor::strict("a\n\n  b \n");
        assert_eq!(c.next_line(), Some("a"));
        assert_eq!(c.next_line(), Some(""));
        assert_eq!(c.next_line(), Some("  b "));
        assert_eq!(c.line(), 3);
        assert_eq!(c.next_line(), None);
        assert_eq!(c.line(), 4);
    }

    #[test]
    fn lenient_cursor_skips_blanks_and_trims() {
        let mut c = LineCursor::lenient("a\n\n  b \n\t\n");
        assert_eq!(c.next_line(), Some("a"));
        assert_eq!(c.next_line(), Some("b"));
        assert_eq!(c.line(), 3);
        assert_eq!(c.next_line(), None);
    }

    #[test]
    fn sniff_finds_first_content() {
        assert_eq!(first_content_line("\n\n  v1 \nrest", false), Some("v1"));
        assert_eq!(first_content_line("# c\n\nv1", false), Some("# c"));
        assert_eq!(first_content_line("# c\n\nv1", true), Some("v1"));
        assert_eq!(first_content_line("\n \n", true), None);
        assert_eq!(first_content_line("", false), None);
    }
}
