//! Shared torn-tail recovery for append-only artifacts.
//!
//! Every append-only format in the workspace — the `.events` log and the
//! trajdb segments — has the same failure mode: a crash mid-append leaves
//! a valid committed prefix followed by a torn final record (or, after
//! disk-level mischief, arbitrary garbage). Recovery is likewise the same
//! shape everywhere: scan records from the front, stop at the first one
//! that is incomplete or corrupt, and keep exactly the committed prefix.
//! This module owns that scan; formats supply only a single-record step
//! function, so the eventlog reader and the trajdb segment reader cannot
//! diverge in how they diagnose a tail.

/// What a format's step function found at the head of the remaining
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordStep {
    /// A complete, valid record occupying this many bytes (> 0).
    Complete(usize),
    /// The bytes are a valid *prefix* of a record — more data was
    /// expected. The classic torn tail of an interrupted append.
    Incomplete,
    /// The bytes cannot be (a prefix of) a valid record: framing or
    /// checksum violation.
    Corrupt,
}

/// The diagnosis of an append-only artifact's tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailVerdict {
    /// Every byte belongs to a complete, valid record.
    Clean,
    /// The final record was torn mid-write; this many tail bytes must be
    /// truncated to recover the committed prefix.
    TornTruncated(usize),
    /// The tail is not a record prefix at all (corruption, checksum
    /// mismatch, or foreign bytes); this many tail bytes must be
    /// truncated to recover the committed prefix.
    Garbage(usize),
}

impl TailVerdict {
    /// Bytes that recovery discards (0 for a clean tail).
    pub fn dropped_bytes(&self) -> usize {
        match self {
            TailVerdict::Clean => 0,
            TailVerdict::TornTruncated(n) | TailVerdict::Garbage(n) => *n,
        }
    }
}

impl std::fmt::Display for TailVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailVerdict::Clean => write!(f, "clean"),
            TailVerdict::TornTruncated(n) => write!(f, "torn ({n} bytes truncated)"),
            TailVerdict::Garbage(n) => write!(f, "garbage ({n} bytes truncated)"),
        }
    }
}

/// The result of a tail scan: how much of the artifact is committed, how
/// many records that prefix holds, and what the tail looked like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailScan {
    /// Byte length of the valid committed prefix.
    pub committed_len: usize,
    /// Number of complete records in the committed prefix.
    pub records: usize,
    /// Diagnosis of everything past the committed prefix.
    pub verdict: TailVerdict,
}

impl TailScan {
    /// A scan of an empty artifact.
    pub fn empty() -> TailScan {
        TailScan {
            committed_len: 0,
            records: 0,
            verdict: TailVerdict::Clean,
        }
    }
}

/// Scans `data` record by record with the format's `step` function and
/// returns the committed-prefix diagnosis. `step` sees the remaining
/// suffix and reports one record at a time; the scan stops at the first
/// [`RecordStep::Incomplete`] (torn tail) or [`RecordStep::Corrupt`]
/// (garbage tail). A `Complete(0)` is treated as corrupt — a step
/// function that consumes nothing would loop forever.
pub fn recover(data: &[u8], mut step: impl FnMut(&[u8]) -> RecordStep) -> TailScan {
    let mut pos = 0usize;
    let mut records = 0usize;
    while pos < data.len() {
        match step(&data[pos..]) {
            RecordStep::Complete(n) if n > 0 && pos + n <= data.len() => {
                pos += n;
                records += 1;
            }
            RecordStep::Complete(_) => {
                // A step that consumes nothing (or overruns) is a format
                // bug; treat its output as garbage rather than looping.
                return TailScan {
                    committed_len: pos,
                    records,
                    verdict: TailVerdict::Garbage(data.len() - pos),
                };
            }
            RecordStep::Incomplete => {
                return TailScan {
                    committed_len: pos,
                    records,
                    verdict: TailVerdict::TornTruncated(data.len() - pos),
                };
            }
            RecordStep::Corrupt => {
                return TailScan {
                    committed_len: pos,
                    records,
                    verdict: TailVerdict::Garbage(data.len() - pos),
                };
            }
        }
    }
    TailScan {
        committed_len: pos,
        records,
        verdict: TailVerdict::Clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy format: records are `[len: 1 byte][payload: len bytes]` where
    /// the payload must be ASCII letters.
    fn step(rest: &[u8]) -> RecordStep {
        let Some(&len) = rest.first() else {
            return RecordStep::Incomplete;
        };
        let need = 1 + len as usize;
        if rest.len() < need {
            return RecordStep::Incomplete;
        }
        if rest[1..need].iter().all(|b| b.is_ascii_alphabetic()) {
            RecordStep::Complete(need)
        } else {
            RecordStep::Corrupt
        }
    }

    #[test]
    fn clean_input_consumes_everything() {
        let data = [2, b'a', b'b', 1, b'c'];
        let scan = recover(&data, step);
        assert_eq!(scan.committed_len, 5);
        assert_eq!(scan.records, 2);
        assert_eq!(scan.verdict, TailVerdict::Clean);
        assert_eq!(scan.verdict.dropped_bytes(), 0);
    }

    #[test]
    fn empty_input_is_clean() {
        assert_eq!(recover(&[], step), TailScan::empty());
    }

    #[test]
    fn torn_tail_keeps_the_committed_prefix() {
        // Second record declares 3 payload bytes but only 1 arrived.
        let data = [2, b'a', b'b', 3, b'c'];
        let scan = recover(&data, step);
        assert_eq!(scan.committed_len, 3);
        assert_eq!(scan.records, 1);
        assert_eq!(scan.verdict, TailVerdict::TornTruncated(2));
    }

    #[test]
    fn garbage_tail_is_diagnosed_distinctly() {
        let data = [1, b'a', 2, b'!', b'?'];
        let scan = recover(&data, step);
        assert_eq!(scan.committed_len, 2);
        assert_eq!(scan.records, 1);
        assert_eq!(scan.verdict, TailVerdict::Garbage(3));
    }

    #[test]
    fn zero_length_step_is_caught_not_looped() {
        let scan = recover(b"xy", |_| RecordStep::Complete(0));
        assert!(matches!(scan.verdict, TailVerdict::Garbage(2)));
    }

    #[test]
    fn every_truncation_recovers_a_record_prefix() {
        let data = [2, b'a', b'b', 1, b'c', 3, b'd', b'e', b'f'];
        let boundaries = [0usize, 3, 5, 9];
        for cut in 0..=data.len() {
            let scan = recover(&data[..cut], step);
            let expected_records = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scan.records, expected_records, "cut at {cut}");
            assert!(boundaries.contains(&scan.committed_len));
            if boundaries.contains(&cut) {
                assert_eq!(scan.verdict, TailVerdict::Clean, "cut at {cut}");
            } else {
                assert_eq!(
                    scan.verdict,
                    TailVerdict::TornTruncated(cut - scan.committed_len)
                );
            }
        }
    }

    #[test]
    fn verdict_display_is_human_readable() {
        assert_eq!(TailVerdict::Clean.to_string(), "clean");
        assert_eq!(
            TailVerdict::TornTruncated(7).to_string(),
            "torn (7 bytes truncated)"
        );
        assert_eq!(
            TailVerdict::Garbage(3).to_string(),
            "garbage (3 bytes truncated)"
        );
    }
}
