//! The sealed-segment manifest: the store's single source of truth for
//! which segment files exist and what they contain.
//!
//! ```text
//! trajdb-manifest v1
//! active 3
//! next_file 4
//! segments 2
//! s 1 24 8 2210 9f0a1b2c 0 7 0 23 0 7
//! s 2 24 8 2218 4d5e6f70 8 15 24 47 8 15
//! end
//! ```
//!
//! Each `s` line records one *sealed* (immutable, fully fsynced)
//! segment: file number, record count, batch count, byte length, whole-
//! file CRC-32, and the inclusive `[first, last]` ranges of batch
//! sequence numbers, record ids, and batch timestamps — enough to skip
//! a segment during range reads without opening it, and to detect a
//! damaged or resized sealed file before trusting it.
//!
//! The manifest is always replaced atomically via
//! [`trajio::write_atomic`], so a crash leaves either the old manifest
//! or the new one, never a torn hybrid; the `end` sentinel guards
//! against a truncated copy made by non-atomic tooling.

use crate::StoreError;
use std::fmt::Write as _;
use std::path::Path;
use trajio::crc::{crc32_from_hex, crc32_hex};
use trajio::{parse_int, CodecError, LineCursor};

/// First line of every manifest.
pub const MANIFEST_VERSION_LINE: &str = "trajdb-manifest v1";

/// Manifest entry for one sealed segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment file number (`seg-NNNNNN.log`).
    pub file_no: u64,
    /// Records across all batches in the segment.
    pub records: u64,
    /// Committed batches in the segment.
    pub batches: u64,
    /// Exact byte length of the segment file.
    pub bytes: u64,
    /// CRC-32 of the whole segment file.
    pub crc: u32,
    /// First batch sequence number in the segment.
    pub first_seq: u64,
    /// Last batch sequence number in the segment.
    pub last_seq: u64,
    /// Smallest record id in the segment.
    pub first_id: u64,
    /// Largest record id in the segment.
    pub last_id: u64,
    /// Smallest batch timestamp in the segment.
    pub first_t: u64,
    /// Largest batch timestamp in the segment.
    pub last_t: u64,
}

/// The decoded manifest: sealed segments in commit order plus the
/// numbers of the active segment and the next file to allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// File number of the segment currently receiving appends.
    pub active: u64,
    /// Next unused file number.
    pub next_file: u64,
    /// Sealed segments, oldest first.
    pub sealed: Vec<SegmentMeta>,
}

impl Default for Manifest {
    fn default() -> Manifest {
        Manifest::new()
    }
}

impl Manifest {
    /// A fresh manifest for an empty store.
    pub fn new() -> Manifest {
        Manifest {
            active: 1,
            next_file: 2,
            sealed: Vec::new(),
        }
    }

    /// Serialises the manifest to its canonical text form.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{MANIFEST_VERSION_LINE}\nactive {}\nnext_file {}\nsegments {}\n",
            self.active,
            self.next_file,
            self.sealed.len()
        );
        for s in &self.sealed {
            writeln!(
                out,
                "s {} {} {} {} {} {} {} {} {} {} {}",
                s.file_no,
                s.records,
                s.batches,
                s.bytes,
                crc32_hex(s.crc),
                s.first_seq,
                s.last_seq,
                s.first_id,
                s.last_id,
                s.first_t,
                s.last_t
            )
            .expect("writing to a String cannot fail");
        }
        out.push_str("end\n");
        out
    }

    /// Parses a manifest, validating the version line, the declared
    /// segment count, and the `end` sentinel.
    pub fn decode(text: &str, path: &Path) -> Result<Manifest, StoreError> {
        let fail = |cursor: &LineCursor<'_>, message: String| StoreError::Manifest {
            path: path.to_path_buf(),
            line: cursor.line(),
            message,
        };
        let codec = |cursor: &LineCursor<'_>, e: CodecError| fail(cursor, e.message().to_string());
        let mut cursor = LineCursor::lenient(text);
        match cursor.next_line() {
            Some(line) if line == MANIFEST_VERSION_LINE => {}
            other => {
                return Err(fail(
                    &cursor,
                    format!(
                        "expected version line '{MANIFEST_VERSION_LINE}', found '{}'",
                        other.unwrap_or("")
                    ),
                ))
            }
        }
        let mut field = |key: &str| -> Result<u64, StoreError> {
            let line = cursor
                .next_line()
                .ok_or_else(|| fail(&cursor, format!("missing '{key}' line")))?;
            let value = line
                .strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .ok_or_else(|| fail(&cursor, format!("expected '{key} <n>', found '{line}'")))?;
            parse_int(value.trim(), key).map_err(|e| codec(&cursor, e))
        };
        let active = field("active")?;
        let next_file = field("next_file")?;
        let count = field("segments")? as usize;
        let mut sealed = Vec::with_capacity(count);
        for _ in 0..count {
            let line = cursor
                .next_line()
                .ok_or_else(|| fail(&cursor, "missing segment line".to_string()))?;
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 12 || fields[0] != "s" {
                return Err(fail(
                    &cursor,
                    format!("expected 's' line with 11 fields, found '{line}'"),
                ));
            }
            let u = |i: usize, what: &str| parse_int::<u64>(fields[i], what);
            sealed.push(SegmentMeta {
                file_no: u(1, "file_no").map_err(|e| codec(&cursor, e))?,
                records: u(2, "records").map_err(|e| codec(&cursor, e))?,
                batches: u(3, "batches").map_err(|e| codec(&cursor, e))?,
                bytes: u(4, "bytes").map_err(|e| codec(&cursor, e))?,
                crc: crc32_from_hex(fields[5]).map_err(|e| codec(&cursor, e))?,
                first_seq: u(6, "first_seq").map_err(|e| codec(&cursor, e))?,
                last_seq: u(7, "last_seq").map_err(|e| codec(&cursor, e))?,
                first_id: u(8, "first_id").map_err(|e| codec(&cursor, e))?,
                last_id: u(9, "last_id").map_err(|e| codec(&cursor, e))?,
                first_t: u(10, "first_t").map_err(|e| codec(&cursor, e))?,
                last_t: u(11, "last_t").map_err(|e| codec(&cursor, e))?,
            });
        }
        match cursor.next_line() {
            Some("end") => {}
            other => {
                return Err(fail(
                    &cursor,
                    format!("expected 'end' sentinel, found '{}'", other.unwrap_or("")),
                ))
            }
        }
        if let Some(extra) = cursor.next_line() {
            return Err(fail(
                &cursor,
                format!("unexpected line after 'end': '{extra}'"),
            ));
        }
        Ok(Manifest {
            active,
            next_file,
            sealed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Manifest {
        Manifest {
            active: 3,
            next_file: 4,
            sealed: vec![
                SegmentMeta {
                    file_no: 1,
                    records: 24,
                    batches: 8,
                    bytes: 2210,
                    crc: 0x9f0a_1b2c,
                    first_seq: 0,
                    last_seq: 7,
                    first_id: 0,
                    last_id: 23,
                    first_t: 0,
                    last_t: 7,
                },
                SegmentMeta {
                    file_no: 2,
                    records: 24,
                    batches: 8,
                    bytes: 2218,
                    crc: 0x4d5e_6f70,
                    first_seq: 8,
                    last_seq: 15,
                    first_id: 24,
                    last_id: 47,
                    first_t: 8,
                    last_t: 15,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        let text = m.encode();
        let back = Manifest::decode(&text, &PathBuf::from("MANIFEST")).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.encode(), text, "canonical form is a fixed point");
    }

    #[test]
    fn truncated_manifest_is_rejected_by_the_sentinel() {
        let text = sample().encode();
        let torn = &text[..text.len() - "end\n".len()];
        match Manifest::decode(torn, &PathBuf::from("MANIFEST")) {
            Err(StoreError::Manifest { message, .. }) => {
                assert!(message.contains("end"), "got: {message}")
            }
            other => panic!("expected a Manifest error, got {other:?}"),
        }
    }

    #[test]
    fn segment_count_mismatch_is_rejected() {
        let mut text = sample().encode();
        text = text.replace("segments 2", "segments 3");
        assert!(matches!(
            Manifest::decode(&text, &PathBuf::from("MANIFEST")),
            Err(StoreError::Manifest { .. })
        ));
    }

    #[test]
    fn bad_version_line_is_rejected() {
        assert!(matches!(
            Manifest::decode("something else\nend\n", &PathBuf::from("MANIFEST")),
            Err(StoreError::Manifest { line: 1, .. })
        ));
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::new();
        let text = m.encode();
        assert_eq!(Manifest::decode(&text, &PathBuf::from("M")).unwrap(), m);
    }
}
