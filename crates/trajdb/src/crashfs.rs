//! Deterministic power-cut fault injection for the store.
//!
//! The active segment only ever grows by appends, so the file's final
//! content *is* the write stream: cutting it at byte `k` reproduces
//! exactly the state a power cut after `k` durable bytes would leave.
//! [`CrashFs`] records a store's active segment and materialises any
//! such cut — optionally with a mutated tail (garbage bytes, a replayed
//! batch) — into a fresh directory, which tests then recover with
//! [`crate::Store::open`] and compare against the committed-batch
//! prefix.
//!
//! This gives an exhaustive crash matrix without interposing on the
//! filesystem: every byte offset of the write stream is a test case,
//! and the expected recovery result is computable from the recorded
//! commit boundaries alone.

use crate::manifest::Manifest;
use crate::segment::scan_segment;
use crate::store::{segment_file_name, MANIFEST_FILE};
use crate::StoreError;
use std::path::Path;
use trajio::durable;
use trajio::tail::TailVerdict;

/// What to append after the truncated prefix when materialising a cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailMutation {
    /// Plain truncation: the classic torn write.
    None,
    /// Arbitrary junk after the cut — bit rot, a foreign writer, or a
    /// disk returning stale sectors.
    Garbage(Vec<u8>),
    /// Replay the last committed batch's bytes after the cut — an
    /// at-least-once writer re-appending after a lost acknowledgement.
    /// Recovery must reject the duplicate via its sequence number.
    DoubleLastBatch,
}

/// A recorded write stream: the active segment's bytes plus the byte
/// offsets at which each batch became committed.
#[derive(Debug, Clone)]
pub struct CrashFs {
    active_no: u64,
    bytes: Vec<u8>,
    /// Absolute offsets (into `bytes`) after each committed batch; the
    /// first entry is the version-line boundary (zero committed
    /// batches).
    commits: Vec<usize>,
    /// `(offset, len)` of each committed batch within `bytes`.
    batch_spans: Vec<(usize, usize)>,
}

impl CrashFs {
    /// Records the current write stream of the store at `dir`. The
    /// active segment must scan clean — record before crashing, not
    /// after.
    pub fn record(dir: &Path) -> Result<CrashFs, StoreError> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).map_err(|e| StoreError::Io {
            path: manifest_path.clone(),
            message: e.to_string(),
        })?;
        let manifest = Manifest::decode(&text, &manifest_path)?;
        let active_path = dir.join(segment_file_name(manifest.active));
        let bytes = if active_path.exists() {
            std::fs::read(&active_path).map_err(|e| StoreError::Io {
                path: active_path.clone(),
                message: e.to_string(),
            })?
        } else {
            Vec::new()
        };
        let first_seq = manifest.sealed.last().map(|s| s.last_seq + 1).unwrap_or(0);
        let result = scan_segment(&bytes, Some(first_seq), |_, _, _| {});
        if result.scan.verdict != TailVerdict::Clean {
            return Err(StoreError::Corrupt {
                path: active_path,
                message: format!(
                    "cannot record a write stream with a dirty tail: {}",
                    result.scan.verdict
                ),
            });
        }
        let body_start = if bytes.is_empty() {
            0
        } else {
            crate::SEGMENT_VERSION_LINE.len() + 1
        };
        let mut commits = vec![body_start];
        let mut batch_spans = Vec::with_capacity(result.batches.len());
        for b in &result.batches {
            commits.push(b.offset + b.len);
            batch_spans.push((b.offset, b.len));
        }
        Ok(CrashFs {
            active_no: manifest.active,
            bytes,
            commits,
            batch_spans,
        })
    }

    /// Total length of the recorded write stream; cuts range over
    /// `0..=len`.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the recorded stream is empty (no active segment file).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Offsets at which the stream is batch-commit-consistent (version
    /// line boundary first, then after each batch).
    pub fn commit_offsets(&self) -> &[usize] {
        &self.commits
    }

    /// How many whole batches a cut at `cut` preserves.
    pub fn committed_batches(&self, cut: usize) -> usize {
        self.commits.iter().skip(1).filter(|&&c| c <= cut).count()
    }

    /// Whether a cut at `cut` lands exactly on a commit boundary (so
    /// recovery should report a clean tail). A cut of 0 is also clean:
    /// the file simply does not exist yet.
    pub fn is_commit_boundary(&self, cut: usize) -> bool {
        cut == 0 || self.commits.contains(&cut)
    }

    /// Materialises the crash state "power lost after `cut` bytes of
    /// the active segment reached disk" into `dst`: the manifest and
    /// sealed segments are copied from `src` intact (they were durable
    /// before the recorded stream began), and the active segment is the
    /// cut prefix plus the `mutation` tail. A cut of 0 with no mutation
    /// writes no active file at all.
    pub fn materialize(
        &self,
        src: &Path,
        dst: &Path,
        cut: usize,
        mutation: &TailMutation,
    ) -> Result<(), StoreError> {
        assert!(cut <= self.bytes.len(), "cut {cut} beyond recorded stream");
        std::fs::create_dir_all(dst).map_err(|e| StoreError::Io {
            path: dst.to_path_buf(),
            message: e.to_string(),
        })?;
        let copy = |name: &str| -> Result<(), StoreError> {
            let from = src.join(name);
            let bytes = std::fs::read(&from).map_err(|e| StoreError::Io {
                path: from,
                message: e.to_string(),
            })?;
            let to = dst.join(name);
            std::fs::write(&to, &bytes).map_err(|e| StoreError::Io {
                path: to,
                message: e.to_string(),
            })
        };
        copy(MANIFEST_FILE)?;
        let manifest_path = src.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).map_err(|e| StoreError::Io {
            path: manifest_path.clone(),
            message: e.to_string(),
        })?;
        let manifest = Manifest::decode(&text, &manifest_path)?;
        for meta in &manifest.sealed {
            copy(&segment_file_name(meta.file_no))?;
        }
        let mut tail = self.bytes[..cut].to_vec();
        match mutation {
            TailMutation::None => {}
            TailMutation::Garbage(junk) => tail.extend_from_slice(junk),
            TailMutation::DoubleLastBatch => {
                let &(offset, len) = self
                    .batch_spans
                    .iter()
                    .rev()
                    .find(|&&(o, l)| o + l <= cut)
                    .expect("DoubleLastBatch needs at least one committed batch before the cut");
                tail.extend_from_slice(&self.bytes[offset..offset + len]);
            }
        }
        if !tail.is_empty() {
            let path = dst.join(segment_file_name(self.active_no));
            durable::append(&path, &tail)?;
        }
        Ok(())
    }
}
