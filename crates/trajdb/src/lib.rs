//! trajdb — an embedded, crash-safe, append-only-segment trajectory
//! store for the TrajPattern reproduction.
//!
//! Mining runs in this workspace previously read whole datasets from
//! loose CSV/JSON/`.events` files; nothing owned durability. trajdb is
//! that owner: a directory of numbered segment files plus a manifest,
//! with exactly one mutable file at any moment (the *active* segment,
//! which only ever grows by whole checksummed batches).
//!
//! - **Writes** append length-prefixed, CRC-32-checksummed batches to
//!   the active segment ([`Store::append_batch`]); the fsync cadence is
//!   a policy knob ([`FsyncPolicy`]).
//! - **Sealing** fsyncs the active segment and records it — byte
//!   length, whole-file CRC, id/seq/time ranges — in the manifest,
//!   which is replaced atomically ([`Store::seal_active`]).
//! - **Recovery** ([`Store::open`]) trusts sealed segments via the
//!   manifest, scans only the active segment's tail with the shared
//!   [`trajio::tail`] scanner, truncates torn or garbage bytes back to
//!   the last valid checksum, and sweeps orphan files left by an
//!   interrupted compaction.
//! - **Reads** ([`Store::read`]) skip sealed segments by manifest
//!   ranges and re-verify checksums on every batch they do decode.
//! - **Compaction** ([`Store::compact`]) folds sealed segments into one
//!   by byte concatenation — committed batch bytes are immutable, so
//!   compaction preserves them bit-exactly and cannot invent data.
//!
//! The fault-injection side lives in [`crashfs`]: a recorder that
//! replays every byte-level prefix of the store's write stream so tests
//! can assert recovery is exact after *any* power-cut point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crashfs;
pub mod manifest;
pub mod segment;
pub mod store;

pub use crashfs::{CrashFs, TailMutation};
pub use manifest::{Manifest, SegmentMeta, MANIFEST_VERSION_LINE};
pub use segment::{BatchMeta, SEGMENT_VERSION_LINE};
pub use store::{RecoveryReport, Store, StoreStats};

use std::path::PathBuf;
use trajdata::Trajectory;

/// How often [`Store::append_batch`] flushes the active segment to
/// stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every batch: no committed batch is ever lost, at the
    /// cost of one disk flush per append.
    Always,
    /// fsync after every `n` batches: a crash can lose at most the last
    /// `n - 1` acknowledged batches (recovery still yields an exact
    /// committed-batch prefix, never torn data).
    EveryN(u32),
    /// Never fsync on append (the OS flushes at its leisure); sealing
    /// and explicit [`Store::sync`] still flush. Fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `every:<n>` (n ≥ 1).
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => {
                let n = other
                    .strip_prefix("every:")
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!("bad fsync policy '{other}': expected always, never, or every:<n>")
                    })?;
                Ok(FsyncPolicy::EveryN(n))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Tunables for [`Store::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Flush cadence for appends.
    pub fsync: FsyncPolicy,
    /// Seal the active segment once it exceeds this many bytes.
    pub segment_max_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            fsync: FsyncPolicy::EveryN(8),
            segment_max_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One stored trajectory with its store-assigned identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Monotonic record id, assigned at append.
    pub id: u64,
    /// Logical timestamp of the batch the record arrived in.
    pub t: u64,
    /// The trajectory itself, bit-exact as appended.
    pub trajectory: Trajectory,
}

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// The filesystem refused an operation.
    Io {
        /// Path involved.
        path: PathBuf,
        /// OS error description.
        message: String,
    },
    /// Sealed data failed validation — this is data loss and is never
    /// silently repaired.
    Corrupt {
        /// The damaged file.
        path: PathBuf,
        /// What failed to validate.
        message: String,
    },
    /// The manifest failed to parse.
    Manifest {
        /// The manifest file.
        path: PathBuf,
        /// 1-based line of the violation.
        line: usize,
        /// What was malformed.
        message: String,
    },
    /// The caller passed something unusable (empty batch, timestamp
    /// regression, bad snapshot name, …).
    InvalidArgument(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "trajdb io error at {}: {message}", path.display())
            }
            StoreError::Corrupt { path, message } => {
                write!(f, "trajdb corruption in {}: {message}", path.display())
            }
            StoreError::Manifest {
                path,
                line,
                message,
            } => write!(
                f,
                "trajdb manifest {} line {line}: {message}",
                path.display()
            ),
            StoreError::InvalidArgument(message) => write!(f, "trajdb: {message}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<trajio::DurableError> for StoreError {
    fn from(e: trajio::DurableError) -> StoreError {
        StoreError::Io {
            path: e.path,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses_and_displays() {
        for s in ["always", "never", "every:1", "every:64"] {
            assert_eq!(FsyncPolicy::parse(s).unwrap().to_string(), s);
        }
        for s in ["", "sometimes", "every:0", "every:", "every:x", "EVERY:2"] {
            assert!(FsyncPolicy::parse(s).is_err(), "'{s}' should not parse");
        }
    }
}
