//! The store: open/recover, append, seal, compact, range-read.

use crate::manifest::{Manifest, SegmentMeta};
use crate::segment::{encode_batch, read_sealed, scan_segment, BatchMeta, SEGMENT_VERSION_LINE};
use crate::{FsyncPolicy, Record, StoreError, StoreOptions};
use std::ops::Range;
use std::path::{Path, PathBuf};
use trajdata::{Dataset, Trajectory};
use trajio::crc::crc32;
use trajio::durable;
use trajio::tail::{TailScan, TailVerdict};

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Snapshot subdirectory name inside a store directory.
pub const SNAPSHOT_DIR: &str = "snapshots";

/// Shard subdirectory name inside a fleet root directory: each child of
/// `<root>/shards/` is itself a complete store owned by one shard of a
/// `trajmine serve --live` deployment.
pub const SHARD_DIR: &str = "shards";

/// Per-shard stream checkpoint file name inside a shard's store
/// directory (`trajpattern-checkpoint v2` format, written by the live
/// ingester so `serve --live` resumes per shard after a restart).
pub const SHARD_CHECKPOINT_FILE: &str = "stream.ckpt";

/// What [`Store::open`] found and repaired while recovering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Diagnosis of the active segment's tail at open time.
    pub verdict: TailVerdict,
    /// Bytes truncated from the active segment tail.
    pub dropped_bytes: u64,
    /// Orphan segment files removed (left by an interrupted compaction
    /// or seal).
    pub orphans_removed: u32,
    /// Stray temporary files removed.
    pub tmp_removed: u32,
}

/// A point-in-time summary of the store, cheap to compute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Sealed segment count.
    pub sealed_segments: usize,
    /// Records across sealed segments.
    pub sealed_records: u64,
    /// Batches across sealed segments.
    pub sealed_batches: u64,
    /// Bytes across sealed segment files.
    pub sealed_bytes: u64,
    /// Records in the active segment.
    pub active_records: u64,
    /// Batches in the active segment.
    pub active_batches: u64,
    /// Bytes in the active segment file.
    pub active_bytes: u64,
    /// Next record id to be assigned.
    pub next_id: u64,
    /// Next batch sequence number to be assigned.
    pub next_seq: u64,
    /// Batches appended through this handle.
    pub appends: u64,
    /// fsyncs issued for appended batches through this handle.
    pub syncs: u64,
    /// What recovery found when this handle opened the store.
    pub recovery: RecoveryReport,
}

impl StoreStats {
    /// Total committed records (sealed + active).
    pub fn total_records(&self) -> u64 {
        self.sealed_records + self.active_records
    }

    /// Total committed bytes on disk (sealed + active segments).
    pub fn total_bytes(&self) -> u64 {
        self.sealed_bytes + self.active_bytes
    }
}

/// An inclusive id/time filter for [`Store::read`]; `None` bounds are
/// open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadFilter {
    /// Keep records with `id >= min_id`.
    pub min_id: Option<u64>,
    /// Keep records with `id <= max_id`.
    pub max_id: Option<u64>,
    /// Keep records from batches with `t >= min_t`.
    pub min_t: Option<u64>,
    /// Keep records from batches with `t <= max_t`.
    pub max_t: Option<u64>,
}

impl ReadFilter {
    /// The unfiltered read.
    pub fn all() -> ReadFilter {
        ReadFilter::default()
    }

    fn admits(&self, id: u64, t: u64) -> bool {
        self.min_id.is_none_or(|m| id >= m)
            && self.max_id.is_none_or(|m| id <= m)
            && self.min_t.is_none_or(|m| t >= m)
            && self.max_t.is_none_or(|m| t <= m)
    }

    fn may_overlap(&self, meta: &SegmentMeta) -> bool {
        self.min_id.is_none_or(|m| meta.last_id >= m)
            && self.max_id.is_none_or(|m| meta.first_id <= m)
            && self.min_t.is_none_or(|m| meta.last_t >= m)
            && self.max_t.is_none_or(|m| meta.first_t <= m)
    }
}

/// An open trajectory store rooted at one directory.
///
/// A `Store` is single-writer: open it once per process. Reads re-read
/// files from disk (segments are immutable once committed), so a
/// separate read-only opener sees a consistent committed prefix.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    manifest: Manifest,
    active_len: u64,
    active_batches: Vec<BatchMeta>,
    next_seq: u64,
    next_id: u64,
    last_t: u64,
    unsynced_batches: u32,
    appends: u64,
    syncs: u64,
    recovery: RecoveryReport,
}

/// `seg-NNNNNN.log` for a file number.
pub fn segment_file_name(no: u64) -> String {
    format!("seg-{no:06}.log")
}

fn parse_segment_file_name(name: &str) -> Option<u64> {
    let stem = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    if stem.len() != 6 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

impl Store {
    /// Opens (creating if absent) the store at `dir`, running recovery:
    /// validate sealed segments against the manifest, scan the active
    /// segment tail, truncate torn/garbage bytes, sweep orphan files.
    pub fn open(dir: impl Into<PathBuf>, opts: StoreOptions) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            let text = std::fs::read_to_string(&manifest_path).map_err(|e| StoreError::Io {
                path: manifest_path.clone(),
                message: e.to_string(),
            })?;
            Manifest::decode(&text, &manifest_path)?
        } else {
            let m = Manifest::new();
            durable::write_atomic(&manifest_path, &m.encode())?;
            m
        };

        let mut recovery = RecoveryReport {
            verdict: TailVerdict::Clean,
            dropped_bytes: 0,
            orphans_removed: 0,
            tmp_removed: 0,
        };

        // Sweep files the manifest does not own: segments orphaned by an
        // interrupted compaction and temporaries from torn atomic writes.
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: dir.clone(),
                message: e.to_string(),
            })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                durable::remove_file(&entry.path())?;
                recovery.tmp_removed += 1;
            } else if let Some(no) = parse_segment_file_name(name) {
                let owned =
                    no == manifest.active || manifest.sealed.iter().any(|s| s.file_no == no);
                if !owned {
                    durable::remove_file(&entry.path())?;
                    recovery.orphans_removed += 1;
                }
            }
        }

        // Sealed segments are trusted via the manifest, but a cheap size
        // check catches resized/missing files before any read does.
        for meta in &manifest.sealed {
            let path = dir.join(segment_file_name(meta.file_no));
            let len = std::fs::metadata(&path)
                .map_err(|e| StoreError::Io {
                    path: path.clone(),
                    message: format!("sealed segment missing: {e}"),
                })?
                .len();
            if len != meta.bytes {
                return Err(StoreError::Corrupt {
                    path,
                    message: format!(
                        "sealed segment is {len} bytes, manifest records {}",
                        meta.bytes
                    ),
                });
            }
        }

        // Scan the active segment: keep the committed-batch prefix,
        // physically truncate everything after it.
        let first_active_seq = manifest.sealed.last().map(|s| s.last_seq + 1).unwrap_or(0);
        let active_path = dir.join(segment_file_name(manifest.active));
        let (active_batches, scan): (Vec<BatchMeta>, TailScan) = if active_path.exists() {
            let bytes = std::fs::read(&active_path).map_err(|e| StoreError::Io {
                path: active_path.clone(),
                message: e.to_string(),
            })?;
            let result = scan_segment(&bytes, Some(first_active_seq), |_, _, _| {});
            if result.scan.verdict != TailVerdict::Clean {
                durable::truncate(&active_path, result.scan.committed_len as u64)?;
            }
            (result.batches, result.scan)
        } else {
            (Vec::new(), TailScan::empty())
        };
        recovery.verdict = scan.verdict;
        recovery.dropped_bytes = scan.verdict.dropped_bytes() as u64;

        let next_seq = active_batches
            .last()
            .map(|b| b.seq + 1)
            .unwrap_or(first_active_seq);
        let next_id = active_batches
            .last()
            .map(|b| b.last_id + 1)
            .or_else(|| manifest.sealed.last().map(|s| s.last_id + 1))
            .unwrap_or(0);
        let last_t = active_batches
            .last()
            .map(|b| b.t)
            .or_else(|| manifest.sealed.last().map(|s| s.last_t))
            .unwrap_or(0);

        Ok(Store {
            dir,
            opts,
            manifest,
            active_len: scan.committed_len as u64,
            active_batches,
            next_seq,
            next_id,
            last_t,
            unsynced_batches: 0,
            appends: 0,
            syncs: 0,
            recovery,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The latest batch timestamp committed (0 for an empty store);
    /// appends must not regress below it.
    pub fn last_t(&self) -> u64 {
        self.last_t
    }

    fn active_path(&self) -> PathBuf {
        self.dir.join(segment_file_name(self.manifest.active))
    }

    /// Appends one batch of trajectories at logical timestamp `t`
    /// (monotonic, non-decreasing), returning the assigned id range.
    pub fn append_batch(&mut self, t: u64, trajs: &[Trajectory]) -> Result<Range<u64>, StoreError> {
        if trajs.is_empty() {
            return Err(StoreError::InvalidArgument(
                "append_batch: a batch must hold at least one trajectory".into(),
            ));
        }
        if (self.next_seq > 0 || !self.active_batches.is_empty()) && t < self.last_t {
            return Err(StoreError::InvalidArgument(format!(
                "append_batch: timestamp {t} regresses below {}",
                self.last_t
            )));
        }
        let mut bytes = Vec::new();
        if self.active_len == 0 {
            bytes.extend_from_slice(SEGMENT_VERSION_LINE.as_bytes());
            bytes.push(b'\n');
        }
        let header_start = self.active_len as usize + (bytes.len());
        let before = bytes.len();
        encode_batch(&mut bytes, self.next_seq, t, self.next_id, trajs);
        let batch_len = bytes.len() - before;

        let path = self.active_path();
        let offset = durable::append(&path, &bytes)?;
        if offset != self.active_len {
            return Err(StoreError::Corrupt {
                path,
                message: format!(
                    "active segment was {offset} bytes on disk but {} in memory — \
                     modified outside the store",
                    self.active_len
                ),
            });
        }
        let ids = self.next_id..self.next_id + trajs.len() as u64;
        self.active_batches.push(BatchMeta {
            seq: self.next_seq,
            t,
            records: trajs.len() as u64,
            first_id: ids.start,
            last_id: ids.end - 1,
            offset: header_start,
            len: batch_len,
        });
        self.active_len += bytes.len() as u64;
        self.next_seq += 1;
        self.next_id = ids.end;
        self.last_t = t;
        self.appends += 1;

        match self.opts.fsync {
            FsyncPolicy::Always => {
                durable::sync_file(&path)?;
                self.syncs += 1;
            }
            FsyncPolicy::EveryN(n) => {
                self.unsynced_batches += 1;
                if self.unsynced_batches >= n {
                    durable::sync_file(&path)?;
                    self.syncs += 1;
                    self.unsynced_batches = 0;
                }
            }
            FsyncPolicy::Never => {}
        }

        if self.active_len >= self.opts.segment_max_bytes {
            self.seal_active()?;
        }
        Ok(ids)
    }

    /// Flushes the active segment to stable storage regardless of
    /// policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.active_len > 0 {
            durable::sync_file(&self.active_path())?;
            self.syncs += 1;
        }
        self.unsynced_batches = 0;
        Ok(())
    }

    /// Seals the active segment: fsync it, record it in the manifest
    /// (atomically replaced), and start a fresh active segment. A no-op
    /// when the active segment is empty.
    pub fn seal_active(&mut self) -> Result<(), StoreError> {
        if self.active_batches.is_empty() {
            return Ok(());
        }
        let path = self.active_path();
        durable::sync_file(&path)?;
        self.syncs += 1;
        self.unsynced_batches = 0;
        let bytes = std::fs::read(&path).map_err(|e| StoreError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        if bytes.len() as u64 != self.active_len {
            return Err(StoreError::Corrupt {
                path,
                message: format!(
                    "active segment is {} bytes on disk but {} in memory",
                    bytes.len(),
                    self.active_len
                ),
            });
        }
        let first = self.active_batches.first().expect("non-empty");
        let last = self.active_batches.last().expect("non-empty");
        let meta = SegmentMeta {
            file_no: self.manifest.active,
            records: self.active_batches.iter().map(|b| b.records).sum(),
            batches: self.active_batches.len() as u64,
            bytes: self.active_len,
            crc: crc32(&bytes),
            first_seq: first.seq,
            last_seq: last.seq,
            first_id: first.first_id,
            last_id: last.last_id,
            first_t: self
                .active_batches
                .iter()
                .map(|b| b.t)
                .min()
                .expect("non-empty"),
            last_t: self
                .active_batches
                .iter()
                .map(|b| b.t)
                .max()
                .expect("non-empty"),
        };
        let mut next = self.manifest.clone();
        next.sealed.push(meta);
        next.active = next.next_file;
        next.next_file += 1;
        durable::write_atomic(&self.dir.join(MANIFEST_FILE), &next.encode())?;
        // The manifest write is the commit point: only now forget the
        // old active state.
        self.manifest = next;
        self.active_len = 0;
        self.active_batches.clear();
        Ok(())
    }

    /// Folds every sealed segment into one. Seals the active segment
    /// first, so afterwards the store is exactly one sealed segment
    /// (plus an empty active one). Batch bytes are concatenated
    /// verbatim — compaction is bit-preserving by construction.
    ///
    /// Crash-safe at every point: the merged file is written atomically,
    /// the manifest swap is the commit, and any file stranded on either
    /// side of the crash is swept as an orphan on the next open.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        self.seal_active()?;
        if self.manifest.sealed.len() <= 1 {
            return Ok(());
        }
        let version = format!("{SEGMENT_VERSION_LINE}\n");
        let mut merged = version.clone().into_bytes();
        let mut records = 0u64;
        let mut batches = 0u64;
        for meta in &self.manifest.sealed {
            let path = self.dir.join(segment_file_name(meta.file_no));
            let bytes = std::fs::read(&path).map_err(|e| StoreError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            if crc32(&bytes) != meta.crc {
                return Err(StoreError::Corrupt {
                    path,
                    message: "sealed segment checksum mismatch (refusing to compact)".into(),
                });
            }
            let body =
                bytes
                    .strip_prefix(version.as_bytes())
                    .ok_or_else(|| StoreError::Corrupt {
                        path: path.clone(),
                        message: "sealed segment is missing its version line".into(),
                    })?;
            merged.extend_from_slice(body);
            records += meta.records;
            batches += meta.batches;
        }
        let first = self.manifest.sealed.first().expect("len > 1");
        let last = self.manifest.sealed.last().expect("len > 1");
        let merged_no = self.manifest.next_file;
        let merged_path = self.dir.join(segment_file_name(merged_no));
        durable::write_atomic_bytes(&merged_path, &merged)?;
        let merged_meta = SegmentMeta {
            file_no: merged_no,
            records,
            batches,
            bytes: merged.len() as u64,
            crc: crc32(&merged),
            first_seq: first.first_seq,
            last_seq: last.last_seq,
            first_id: first.first_id,
            last_id: last.last_id,
            first_t: self
                .manifest
                .sealed
                .iter()
                .map(|s| s.first_t)
                .min()
                .expect("len > 1"),
            last_t: self
                .manifest
                .sealed
                .iter()
                .map(|s| s.last_t)
                .max()
                .expect("len > 1"),
        };
        let old: Vec<u64> = self.manifest.sealed.iter().map(|s| s.file_no).collect();
        let mut next = self.manifest.clone();
        next.sealed = vec![merged_meta];
        next.next_file = merged_no + 1;
        // Keep the same (empty) active segment number; seal_active above
        // guarantees it holds no batches.
        durable::write_atomic(&self.dir.join(MANIFEST_FILE), &next.encode())?;
        self.manifest = next;
        for no in old {
            durable::remove_file(&self.dir.join(segment_file_name(no)))?;
        }
        Ok(())
    }

    /// Reads every record admitted by `filter`, in id order. Sealed
    /// segments whose manifest ranges cannot overlap the filter are
    /// skipped without being opened; every batch actually decoded is
    /// checksum-verified again.
    pub fn read(&self, filter: &ReadFilter) -> Result<Vec<Record>, StoreError> {
        let mut out = Vec::new();
        for meta in &self.manifest.sealed {
            if !filter.may_overlap(meta) {
                continue;
            }
            let path = self.dir.join(segment_file_name(meta.file_no));
            read_sealed(
                &path,
                meta.first_seq,
                meta.batches,
                |batch, id, trajectory| {
                    if filter.admits(id, batch.t) {
                        out.push(Record {
                            id,
                            t: batch.t,
                            trajectory,
                        });
                    }
                },
            )?;
        }
        let active_path = self.active_path();
        if self.active_len > 0 {
            let bytes = std::fs::read(&active_path).map_err(|e| StoreError::Io {
                path: active_path.clone(),
                message: e.to_string(),
            })?;
            let first_seq = self.active_batches.first().map(|b| b.seq);
            let result = scan_segment(&bytes, first_seq, |batch, id, trajectory| {
                if filter.admits(id, batch.t) {
                    out.push(Record {
                        id,
                        t: batch.t,
                        trajectory,
                    });
                }
            });
            // This handle is the only writer, so the active file must
            // hold at least what we committed through it.
            if (result.scan.committed_len as u64) < self.active_len {
                return Err(StoreError::Corrupt {
                    path: active_path,
                    message: format!(
                        "active segment committed length shrank to {} (expected {})",
                        result.scan.committed_len, self.active_len
                    ),
                });
            }
        }
        Ok(out)
    }

    /// Reads admitted records as a [`Dataset`] (trajectories in id
    /// order), the shape the mining engines consume.
    pub fn read_dataset(&self, filter: &ReadFilter) -> Result<Dataset, StoreError> {
        let records = self.read(filter)?;
        Ok(Dataset::from_trajectories(
            records.into_iter().map(|r| r.trajectory).collect(),
        ))
    }

    /// Current stats for this handle.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            sealed_segments: self.manifest.sealed.len(),
            sealed_records: self.manifest.sealed.iter().map(|s| s.records).sum(),
            sealed_batches: self.manifest.sealed.iter().map(|s| s.batches).sum(),
            sealed_bytes: self.manifest.sealed.iter().map(|s| s.bytes).sum(),
            active_records: self.active_batches.iter().map(|b| b.records).sum(),
            active_batches: self.active_batches.len() as u64,
            active_bytes: self.active_len,
            next_id: self.next_id,
            next_seq: self.next_seq,
            appends: self.appends,
            syncs: self.syncs,
            recovery: self.recovery.clone(),
        }
    }

    /// The manifest as currently committed.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Verifies every sealed segment's whole-file checksum. Quadratic
    /// in data size with reads — an explicit integrity pass, not part
    /// of open.
    pub fn verify(&self) -> Result<(), StoreError> {
        for meta in &self.manifest.sealed {
            let path = self.dir.join(segment_file_name(meta.file_no));
            let bytes = std::fs::read(&path).map_err(|e| StoreError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            if crc32(&bytes) != meta.crc {
                return Err(StoreError::Corrupt {
                    path,
                    message: "sealed segment checksum mismatch".into(),
                });
            }
        }
        Ok(())
    }

    /// Where a named snapshot lives under a store directory, without
    /// opening the store (used by `trajmine serve --db` so the watcher
    /// can poll the path before the snapshot exists).
    pub fn snapshot_path_in(dir: &Path, name: &str) -> Result<PathBuf, StoreError> {
        validate_snapshot_name(name)?;
        Ok(dir.join(SNAPSHOT_DIR).join(format!("{name}.json")))
    }

    /// Where a named snapshot lives in this store.
    pub fn snapshot_path(&self, name: &str) -> Result<PathBuf, StoreError> {
        Store::snapshot_path_in(&self.dir, name)
    }

    /// Durably persists a named snapshot document (mining output JSON)
    /// under `snapshots/`, replacing any previous version atomically.
    pub fn put_snapshot(&self, name: &str, contents: &str) -> Result<PathBuf, StoreError> {
        let path = self.snapshot_path(name)?;
        let parent = path.parent().expect("snapshot path has a parent");
        std::fs::create_dir_all(parent).map_err(|e| StoreError::Io {
            path: parent.to_path_buf(),
            message: e.to_string(),
        })?;
        durable::write_atomic(&path, contents)?;
        Ok(path)
    }

    /// Names of the snapshots currently stored, sorted.
    pub fn list_snapshots(&self) -> Result<Vec<String>, StoreError> {
        let dir = self.dir.join(SNAPSHOT_DIR);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: dir.clone(),
                message: e.to_string(),
            })?;
            if let Some(name) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_suffix(".json"))
            {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Where shard `name`'s store lives under a fleet root, without
    /// opening anything. Shard names obey the same rules as snapshot
    /// names (1-64 of `[A-Za-z0-9_-]`), so a name can never escape the
    /// `shards/` subtree.
    pub fn shard_dir(root: &Path, name: &str) -> Result<PathBuf, StoreError> {
        validate_name("shard", name)?;
        Ok(root.join(SHARD_DIR).join(name))
    }

    /// Where shard `name`'s stream checkpoint lives under a fleet root
    /// ([`SHARD_CHECKPOINT_FILE`] inside the shard's store directory).
    pub fn shard_checkpoint_path(root: &Path, name: &str) -> Result<PathBuf, StoreError> {
        Ok(Store::shard_dir(root, name)?.join(SHARD_CHECKPOINT_FILE))
    }

    /// Names of the shards under a fleet root, sorted — the fixed fold
    /// order the live server's cross-shard merge relies on. A missing
    /// `shards/` directory is an empty fleet, not an error; entries that
    /// are not directories or carry invalid names are ignored (they
    /// cannot have been created through [`Store::shard_dir`]).
    pub fn list_shards(root: &Path) -> Result<Vec<String>, StoreError> {
        let dir = root.join(SHARD_DIR);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::Io {
                path: dir.clone(),
                message: e.to_string(),
            })?;
            if !entry.path().is_dir() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if validate_name("shard", name).is_ok() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }
}

fn validate_name(kind: &str, name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidArgument(format!(
            "bad {kind} name '{name}': use 1-64 of [A-Za-z0-9_-]"
        )))
    }
}

fn validate_snapshot_name(name: &str) -> Result<(), StoreError> {
    validate_name("snapshot", name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_file_names_round_trip() {
        assert_eq!(segment_file_name(1), "seg-000001.log");
        assert_eq!(parse_segment_file_name("seg-000001.log"), Some(1));
        assert_eq!(parse_segment_file_name("seg-123456.log"), Some(123456));
        assert_eq!(parse_segment_file_name("seg-1.log"), None);
        assert_eq!(parse_segment_file_name("seg-00000a.log"), None);
        assert_eq!(parse_segment_file_name("MANIFEST"), None);
    }

    #[test]
    fn snapshot_names_are_validated() {
        assert!(validate_snapshot_name("nightly-01").is_ok());
        assert!(validate_snapshot_name("A_b-3").is_ok());
        for bad in ["", "../etc", "a b", "x/y", &"n".repeat(65)] {
            assert!(validate_snapshot_name(bad).is_err(), "'{bad}'");
        }
    }

    #[test]
    fn shard_layout_lists_created_shards_sorted() {
        let root = std::env::temp_dir().join(format!("trajdb-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // Empty fleet: no `shards/` directory yet.
        assert_eq!(Store::list_shards(&root).unwrap(), Vec::<String>::new());
        for name in ["west", "east", "north"] {
            let dir = Store::shard_dir(&root, name).unwrap();
            assert!(dir.starts_with(root.join(SHARD_DIR)));
            Store::open(&dir, StoreOptions::default()).unwrap();
        }
        // Stray files and invalid names are not shards.
        std::fs::write(root.join(SHARD_DIR).join("README"), "not a shard").unwrap();
        assert_eq!(
            Store::list_shards(&root).unwrap(),
            ["east", "north", "west"]
        );
        let ckpt = Store::shard_checkpoint_path(&root, "east").unwrap();
        assert_eq!(
            ckpt,
            Store::shard_dir(&root, "east").unwrap().join("stream.ckpt")
        );
        for bad in ["", "a/b", "..", "a b"] {
            assert!(Store::shard_dir(&root, bad).is_err(), "'{bad}'");
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn read_filter_bounds_are_inclusive() {
        let f = ReadFilter {
            min_id: Some(2),
            max_id: Some(4),
            min_t: Some(10),
            max_t: Some(20),
        };
        assert!(f.admits(2, 10));
        assert!(f.admits(4, 20));
        assert!(!f.admits(1, 15));
        assert!(!f.admits(5, 15));
        assert!(!f.admits(3, 9));
        assert!(!f.admits(3, 21));
        assert!(ReadFilter::all().admits(u64::MAX, 0));
    }
}
