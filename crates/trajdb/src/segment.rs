//! The on-disk segment format: checksummed, length-prefixed record
//! batches appended to a text file.
//!
//! ```text
//! trajdb-segment v1
//! b <seq> <t> <n_records> <payload_len> <crc32:08x>
//! r <id> <x> <y> <sigma> [<x> <y> <sigma> ...]
//! …                                  (n_records lines, payload_len bytes)
//! b …
//! ```
//!
//! One `b` header frames one *batch*: `seq` is the store-wide batch
//! sequence number (strictly monotonic, so a replayed/duplicated append
//! is detected), `t` the batch's logical timestamp, `payload_len` the
//! exact byte length of the record lines that follow, and `crc32` the
//! CRC-32 (IEEE) of those payload bytes. Record lines carry the record
//! id and the trajectory's `(x, y, sigma)` triples in Rust's shortest
//! round-trip float formatting — the same codec the `.events` log uses —
//! so every value survives storage bit-exactly.
//!
//! Because batches are length-prefixed *and* checksummed, the committed
//! prefix of a crash-torn segment is decidable byte-by-byte; the scan is
//! [`trajio::tail::recover`] with the step function below, shared with
//! the eventlog's recovery path.

use crate::StoreError;
use std::fmt::Write as _;
use std::path::Path;
use trajdata::{SnapshotPoint, Trajectory};
use trajgeo::Point2;
use trajio::crc::{crc32, crc32_from_hex, crc32_hex};
use trajio::tail::{recover, RecordStep, TailScan, TailVerdict};

/// First line of every segment file.
pub const SEGMENT_VERSION_LINE: &str = "trajdb-segment v1";

/// Metadata of one committed batch inside a segment, as discovered by
/// [`scan_segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchMeta {
    /// Store-wide batch sequence number.
    pub seq: u64,
    /// Logical timestamp of the batch.
    pub t: u64,
    /// Number of records in the batch.
    pub records: u64,
    /// First record id in the batch.
    pub first_id: u64,
    /// Last record id in the batch.
    pub last_id: u64,
    /// Absolute byte offset of the batch header within the segment.
    pub offset: usize,
    /// Total byte length of the batch (header line + payload).
    pub len: usize,
}

/// The outcome of scanning a segment: the committed batches and the
/// shared tail diagnosis (committed length is absolute within the file).
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// Every committed batch, in file order.
    pub batches: Vec<BatchMeta>,
    /// Committed byte length and tail verdict for the whole file.
    pub scan: TailScan,
}

/// Appends one encoded batch (header + payload) to `out`. Record ids are
/// assigned consecutively from `first_id` in slice order.
pub fn encode_batch(out: &mut Vec<u8>, seq: u64, t: u64, first_id: u64, trajs: &[Trajectory]) {
    let mut payload = String::new();
    for (i, traj) in trajs.iter().enumerate() {
        write!(payload, "r {}", first_id + i as u64).expect("writing to a String cannot fail");
        for sp in traj.points() {
            write!(payload, " {} {} {}", sp.mean.x, sp.mean.y, sp.sigma)
                .expect("writing to a String cannot fail");
        }
        payload.push('\n');
    }
    let header = format!(
        "b {seq} {t} {} {} {}\n",
        trajs.len(),
        payload.len(),
        crc32_hex(crc32(payload.as_bytes()))
    );
    out.extend_from_slice(header.as_bytes());
    out.extend_from_slice(payload.as_bytes());
}

/// Parses one `r` record line into `(id, trajectory)`.
fn parse_record_line(line: &str) -> Result<(u64, Trajectory), String> {
    let mut fields = line.split_whitespace();
    match fields.next() {
        Some("r") => {}
        other => {
            return Err(format!(
                "expected 'r' record line, found '{}'",
                other.unwrap_or("")
            ))
        }
    }
    let id: u64 = fields
        .next()
        .ok_or("record line missing id")?
        .parse()
        .map_err(|_| "bad record id".to_string())?;
    let values: Vec<f64> = fields
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("'{s}' is not a number"))
        })
        .collect::<Result<_, _>>()?;
    if values.is_empty() || !values.len().is_multiple_of(3) {
        return Err(format!(
            "expected (x, y, sigma) triples, found {} values",
            values.len()
        ));
    }
    let points: Vec<SnapshotPoint> = values
        .chunks_exact(3)
        .map(|c| SnapshotPoint {
            mean: Point2::new(c[0], c[1]),
            sigma: c[2],
        })
        .collect();
    let traj = Trajectory::new(points).map_err(|e| format!("invalid trajectory: {e}"))?;
    Ok((id, traj))
}

/// Parses a batch payload into records, verifying the declared count.
fn parse_payload(payload: &[u8], declared: u64) -> Result<Vec<(u64, Trajectory)>, String> {
    if !payload.is_empty() && payload[payload.len() - 1] != b'\n' {
        return Err("payload does not end with a newline".into());
    }
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let mut records = Vec::with_capacity(declared as usize);
    for line in text.lines() {
        records.push(parse_record_line(line)?);
    }
    if records.len() as u64 != declared {
        return Err(format!(
            "batch declares {declared} records but payload holds {}",
            records.len()
        ));
    }
    Ok(records)
}

/// Scans a segment's bytes, reporting every committed batch, streaming
/// each committed record through `on_record`, and diagnosing the tail.
///
/// `expected_seq` is the sequence number the first batch must carry
/// (`None` skips continuity checking — used only by tooling); a batch
/// with any other sequence — including a *duplicated* append replayed
/// after a crash — is diagnosed as garbage, so recovery keeps exactly
/// the committed-batch prefix.
///
/// Records of a batch are surfaced only once the whole batch (length and
/// checksum) has validated, so `on_record` never sees torn data.
pub fn scan_segment(
    bytes: &[u8],
    expected_seq: Option<u64>,
    mut on_record: impl FnMut(&BatchMeta, u64, Trajectory),
) -> SegmentScan {
    if bytes.is_empty() {
        return SegmentScan {
            batches: Vec::new(),
            scan: TailScan::empty(),
        };
    }
    // The version line is part of the committed prefix: a file torn
    // inside it has no committed bytes at all.
    let version = format!("{SEGMENT_VERSION_LINE}\n");
    let body_start =
        if bytes.len() >= version.len() && bytes[..version.len()] == *version.as_bytes() {
            version.len()
        } else if version.as_bytes().starts_with(bytes) {
            return SegmentScan {
                batches: Vec::new(),
                scan: TailScan {
                    committed_len: 0,
                    records: 0,
                    verdict: TailVerdict::TornTruncated(bytes.len()),
                },
            };
        } else {
            return SegmentScan {
                batches: Vec::new(),
                scan: TailScan {
                    committed_len: 0,
                    records: 0,
                    verdict: TailVerdict::Garbage(bytes.len()),
                },
            };
        };

    let mut batches: Vec<BatchMeta> = Vec::new();
    let mut next_seq = expected_seq;
    let mut cursor = body_start;
    let step = |rest: &[u8]| -> RecordStep {
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            return RecordStep::Incomplete;
        };
        let Ok(header) = std::str::from_utf8(&rest[..nl]) else {
            return RecordStep::Corrupt;
        };
        let mut fields = header.split_whitespace();
        if fields.next() != Some("b") {
            return RecordStep::Corrupt;
        }
        let parsed: Option<(u64, u64, u64, usize, u32)> = (|| {
            let seq = fields.next()?.parse().ok()?;
            let t = fields.next()?.parse().ok()?;
            let n = fields.next()?.parse().ok()?;
            let len = fields.next()?.parse().ok()?;
            let crc = crc32_from_hex(fields.next()?).ok()?;
            fields.next().is_none().then_some((seq, t, n, len, crc))
        })();
        let Some((seq, t, n, payload_len, crc)) = parsed else {
            return RecordStep::Corrupt;
        };
        let header_len = nl + 1;
        if rest.len() < header_len + payload_len {
            return RecordStep::Incomplete;
        }
        let payload = &rest[header_len..header_len + payload_len];
        if crc32(payload) != crc {
            return RecordStep::Corrupt;
        }
        if let Some(expected) = next_seq {
            if seq != expected {
                // Out-of-order or duplicated batch: everything from here
                // on is not part of the committed stream.
                return RecordStep::Corrupt;
            }
        }
        let Ok(records) = parse_payload(payload, n) else {
            return RecordStep::Corrupt;
        };
        let meta = BatchMeta {
            seq,
            t,
            records: n,
            first_id: records.first().map(|(id, _)| *id).unwrap_or(0),
            last_id: records.last().map(|(id, _)| *id).unwrap_or(0),
            offset: cursor,
            len: header_len + payload_len,
        };
        for (id, traj) in records {
            on_record(&meta, id, traj);
        }
        batches.push(meta);
        next_seq = Some(seq + 1);
        cursor += header_len + payload_len;
        RecordStep::Complete(header_len + payload_len)
    };
    let mut scan = recover(&bytes[body_start..], step);
    scan.committed_len += body_start;
    SegmentScan { batches, scan }
}

/// Reads and fully validates a *sealed* segment file, streaming every
/// record in `…` order. Sealed segments admit no tail: any torn or
/// garbage byte is a hard [`StoreError::Corrupt`], never silent
/// truncation — sealed data loss must be loud.
pub fn read_sealed(
    path: &Path,
    expected_seq: u64,
    expected_batches: u64,
    mut on_record: impl FnMut(&BatchMeta, u64, Trajectory),
) -> Result<(), StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    let result = scan_segment(&bytes, Some(expected_seq), |m, id, t| on_record(m, id, t));
    if result.scan.verdict != TailVerdict::Clean {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            message: format!(
                "sealed segment tail is not clean: {} (committed {} of {} bytes)",
                result.scan.verdict,
                result.scan.committed_len,
                bytes.len()
            ),
        });
    }
    if result.batches.len() as u64 != expected_batches {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            message: format!(
                "sealed segment holds {} batches, manifest records {expected_batches}",
                result.batches.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(x0: f64) -> Trajectory {
        Trajectory::new(
            (0..3)
                .map(|i| SnapshotPoint {
                    mean: Point2::new(x0 + i as f64 * 0.125, 0.25),
                    sigma: 0.01,
                })
                .collect(),
        )
        .unwrap()
    }

    fn sample_segment(batches: usize) -> Vec<u8> {
        let mut bytes = format!("{SEGMENT_VERSION_LINE}\n").into_bytes();
        for b in 0..batches {
            encode_batch(
                &mut bytes,
                b as u64,
                10 + b as u64,
                (b * 2) as u64,
                &[traj(0.1 + b as f64 * 0.01), traj(0.2 + b as f64 * 0.01)],
            );
        }
        bytes
    }

    #[test]
    fn round_trips_records_bit_exactly() {
        let original = [traj(1.0 / 3.0), traj(2.0f64.sqrt())];
        let mut bytes = format!("{SEGMENT_VERSION_LINE}\n").into_bytes();
        encode_batch(&mut bytes, 0, 7, 40, &original);
        let mut seen = Vec::new();
        let s = scan_segment(&bytes, Some(0), |m, id, t| seen.push((m.t, id, t)));
        assert_eq!(s.scan.verdict, TailVerdict::Clean);
        assert_eq!(s.batches.len(), 1);
        assert_eq!(s.batches[0].first_id, 40);
        assert_eq!(s.batches[0].last_id, 41);
        assert_eq!(seen.len(), 2);
        for ((t_batch, id, got), (i, want)) in seen.iter().zip(original.iter().enumerate()) {
            assert_eq!(*t_batch, 7);
            assert_eq!(*id, 40 + i as u64);
            for (a, b) in got.points().iter().zip(want.points()) {
                assert_eq!(a.mean.x.to_bits(), b.mean.x.to_bits());
                assert_eq!(a.mean.y.to_bits(), b.mean.y.to_bits());
                assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
            }
        }
    }

    #[test]
    fn every_truncation_recovers_a_batch_prefix() {
        let bytes = sample_segment(3);
        let full = scan_segment(&bytes, Some(0), |_, _, _| {});
        let boundaries: Vec<usize> = full.batches.iter().map(|m| m.offset + m.len).collect();
        for cut in 0..=bytes.len() {
            let s = scan_segment(&bytes[..cut], Some(0), |_, _, _| {});
            let committed = boundaries.iter().filter(|&&b| b <= cut).count();
            assert_eq!(s.batches.len(), committed, "cut at byte {cut}");
            if cut == 0 || boundaries.contains(&cut) || cut == SEGMENT_VERSION_LINE.len() + 1 {
                assert_eq!(s.scan.verdict, TailVerdict::Clean, "cut at byte {cut}");
            } else {
                assert_ne!(s.scan.verdict, TailVerdict::Clean, "cut at byte {cut}");
            }
            assert!(s.scan.committed_len <= cut);
        }
    }

    #[test]
    fn corrupted_crc_is_garbage_not_torn() {
        let mut bytes = sample_segment(2);
        let last = bytes.len() - 2;
        bytes[last] = if bytes[last] == b'1' { b'2' } else { b'1' };
        let s = scan_segment(&bytes, Some(0), |_, _, _| {});
        assert_eq!(s.batches.len(), 1);
        assert!(matches!(s.scan.verdict, TailVerdict::Garbage(_)));
    }

    #[test]
    fn duplicated_batch_is_rejected_by_sequence_check() {
        let mut bytes = sample_segment(2);
        let full = scan_segment(&bytes, Some(0), |_, _, _| {});
        let last = full.batches[1];
        let dup = bytes[last.offset..last.offset + last.len].to_vec();
        bytes.extend_from_slice(&dup);
        let s = scan_segment(&bytes, Some(0), |_, _, _| {});
        assert_eq!(s.batches.len(), 2, "the doubled batch is not re-committed");
        assert!(matches!(s.scan.verdict, TailVerdict::Garbage(_)));
    }

    #[test]
    fn torn_version_line_has_no_committed_prefix() {
        let s = scan_segment(b"trajdb-seg", Some(0), |_, _, _| {});
        assert_eq!(s.scan.committed_len, 0);
        assert!(matches!(s.scan.verdict, TailVerdict::TornTruncated(10)));
        let s = scan_segment(b"not a segment at all\n", Some(0), |_, _, _| {});
        assert!(matches!(s.scan.verdict, TailVerdict::Garbage(_)));
    }

    #[test]
    fn wrong_expected_seq_stops_the_scan() {
        let bytes = sample_segment(2);
        let s = scan_segment(&bytes, Some(5), |_, _, _| {});
        assert_eq!(s.batches.len(), 0);
        assert!(matches!(s.scan.verdict, TailVerdict::Garbage(_)));
    }
}
