//! Store lifecycle tests: append → seal → compact → read round trips,
//! recovery behaviour, and a property test that `ingest → compact →
//! range-read` preserves every trajectory bit-exactly.

use proptest::prelude::*;
use std::path::PathBuf;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajdb::store::ReadFilter;
use trajdb::{FsyncPolicy, Store, StoreError, StoreOptions, TailMutation};
use trajgeo::Point2;
use trajio::tail::TailVerdict;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "trajdb-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn traj(seed: u64, points: usize) -> Trajectory {
    // A cheap deterministic float generator that exercises non-trivial
    // mantissas (divisions by primes do not terminate in binary).
    Trajectory::new(
        (0..points)
            .map(|i| {
                let k = seed.wrapping_mul(31).wrapping_add(i as u64);
                SnapshotPoint {
                    mean: Point2::new(k as f64 / 7.0, (k % 13) as f64 / 11.0),
                    sigma: 0.01 + (k % 5) as f64 / 3.0,
                }
            })
            .collect(),
    )
    .unwrap()
}

fn small_opts() -> StoreOptions {
    StoreOptions {
        fsync: FsyncPolicy::EveryN(2),
        // Tiny cap so multi-batch tests naturally roll segments.
        segment_max_bytes: 600,
    }
}

fn bits(t: &Trajectory) -> Vec<(u64, u64, u64)> {
    t.points()
        .iter()
        .map(|p| (p.mean.x.to_bits(), p.mean.y.to_bits(), p.sigma.to_bits()))
        .collect()
}

#[test]
fn append_read_round_trips_across_reopen() {
    let dir = tmp_dir("reopen");
    let originals: Vec<Trajectory> = (0..6).map(|i| traj(i, 3 + (i % 3) as usize)).collect();
    {
        let mut store = Store::open(&dir, small_opts()).unwrap();
        for (i, t) in originals.iter().enumerate() {
            let ids = store
                .append_batch(i as u64, std::slice::from_ref(t))
                .unwrap();
            assert_eq!(ids, i as u64..i as u64 + 1);
        }
    }
    let store = Store::open(&dir, small_opts()).unwrap();
    assert_eq!(store.stats().recovery.verdict, TailVerdict::Clean);
    assert_eq!(store.stats().recovery.dropped_bytes, 0);
    let records = store.read(&ReadFilter::all()).unwrap();
    assert_eq!(records.len(), originals.len());
    for (r, (i, want)) in records.iter().zip(originals.iter().enumerate()) {
        assert_eq!(r.id, i as u64);
        assert_eq!(r.t, i as u64);
        assert_eq!(bits(&r.trajectory), bits(want));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segments_roll_and_compact_into_one() {
    let dir = tmp_dir("compact");
    let mut store = Store::open(&dir, small_opts()).unwrap();
    for i in 0..12u64 {
        store
            .append_batch(i, &[traj(i, 4), traj(100 + i, 4)])
            .unwrap();
    }
    let before = store.read(&ReadFilter::all()).unwrap();
    assert!(
        store.stats().sealed_segments >= 2,
        "the 600-byte cap must have rolled segments: {:?}",
        store.stats()
    );
    store.compact().unwrap();
    let stats = store.stats();
    assert_eq!(stats.sealed_segments, 1);
    assert_eq!(stats.active_bytes, 0);
    assert_eq!(stats.total_records(), 24);
    store.verify().unwrap();
    let after = store.read(&ReadFilter::all()).unwrap();
    assert_eq!(before.len(), after.len());
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.t, b.t);
        assert_eq!(bits(&a.trajectory), bits(&b.trajectory));
    }
    // And the compacted store reopens cleanly with nothing swept.
    drop(store);
    let store = Store::open(&dir, small_opts()).unwrap();
    assert_eq!(store.stats().recovery.orphans_removed, 0);
    assert_eq!(store.read(&ReadFilter::all()).unwrap().len(), 24);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn range_reads_filter_by_id_and_time() {
    let dir = tmp_dir("ranges");
    let mut store = Store::open(&dir, small_opts()).unwrap();
    for i in 0..10u64 {
        store.append_batch(10 + i, &[traj(i, 3)]).unwrap();
    }
    store.seal_active().unwrap();
    let ids = store
        .read(&ReadFilter {
            min_id: Some(3),
            max_id: Some(6),
            ..ReadFilter::default()
        })
        .unwrap();
    assert_eq!(
        ids.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![3, 4, 5, 6]
    );
    let times = store
        .read(&ReadFilter {
            min_t: Some(12),
            max_t: Some(14),
            ..ReadFilter::default()
        })
        .unwrap();
    assert_eq!(
        times.iter().map(|r| r.t).collect::<Vec<_>>(),
        vec![12, 13, 14]
    );
    let both = store
        .read(&ReadFilter {
            min_id: Some(4),
            max_t: Some(15),
            ..ReadFilter::default()
        })
        .unwrap();
    assert_eq!(both.iter().map(|r| r.id).collect::<Vec<_>>(), vec![4, 5]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_batches_and_time_regressions_are_rejected() {
    let dir = tmp_dir("invalid");
    let mut store = Store::open(&dir, small_opts()).unwrap();
    assert!(matches!(
        store.append_batch(0, &[]),
        Err(StoreError::InvalidArgument(_))
    ));
    store.append_batch(5, &[traj(1, 3)]).unwrap();
    assert!(matches!(
        store.append_batch(4, &[traj(2, 3)]),
        Err(StoreError::InvalidArgument(_))
    ));
    store.append_batch(5, &[traj(3, 3)]).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_is_truncated_on_open() {
    let dir = tmp_dir("torn");
    {
        let mut store = Store::open(&dir, small_opts()).unwrap();
        for i in 0..3u64 {
            store.append_batch(i, &[traj(i, 3)]).unwrap();
        }
    }
    // Tear the active segment mid-batch.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .unwrap();
    let bytes = std::fs::read(&seg).unwrap();
    let torn_len = bytes.len() - 7;
    std::fs::write(&seg, &bytes[..torn_len]).unwrap();

    let store = Store::open(&dir, small_opts()).unwrap();
    let rec = &store.stats().recovery;
    assert!(matches!(rec.verdict, TailVerdict::TornTruncated(_)));
    let records = store.read(&ReadFilter::all()).unwrap();
    assert_eq!(records.len(), 2, "the torn third batch is dropped whole");
    assert_eq!(
        std::fs::metadata(&seg).unwrap().len() as usize + rec.dropped_bytes as usize,
        torn_len,
        "the tail was physically truncated"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn orphan_segments_and_tmp_files_are_swept() {
    let dir = tmp_dir("orphans");
    {
        let mut store = Store::open(&dir, small_opts()).unwrap();
        store.append_batch(0, &[traj(0, 3)]).unwrap();
    }
    std::fs::write(
        dir.join("seg-000099.log"),
        b"stranded by a crashed compaction",
    )
    .unwrap();
    std::fs::write(dir.join("MANIFEST.12345.tmp"), b"torn atomic write").unwrap();
    let store = Store::open(&dir, small_opts()).unwrap();
    assert_eq!(store.stats().recovery.orphans_removed, 1);
    assert_eq!(store.stats().recovery.tmp_removed, 1);
    assert!(!dir.join("seg-000099.log").exists());
    assert!(!dir.join("MANIFEST.12345.tmp").exists());
    assert_eq!(store.read(&ReadFilter::all()).unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resized_sealed_segment_is_a_loud_corruption_error() {
    let dir = tmp_dir("sealed-resize");
    {
        let mut store = Store::open(&dir, small_opts()).unwrap();
        for i in 0..4u64 {
            store
                .append_batch(i, &[traj(i, 4), traj(50 + i, 4)])
                .unwrap();
        }
        store.seal_active().unwrap();
    }
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).unwrap();
    let sealed_no: u64 = manifest
        .lines()
        .find(|l| l.starts_with("s "))
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap()
        .parse()
        .unwrap();
    let sealed = dir.join(format!("seg-{sealed_no:06}.log"));
    let mut bytes = std::fs::read(&sealed).unwrap();
    bytes.pop();
    std::fs::write(&sealed, &bytes).unwrap();
    assert!(matches!(
        Store::open(&dir, small_opts()),
        Err(StoreError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipped_bit_in_sealed_segment_fails_read_and_verify() {
    let dir = tmp_dir("sealed-flip");
    let mut store = Store::open(&dir, small_opts()).unwrap();
    for i in 0..4u64 {
        store
            .append_batch(i, &[traj(i, 4), traj(50 + i, 4)])
            .unwrap();
    }
    store.seal_active().unwrap();
    let meta = store.manifest().sealed[0];
    let sealed = dir.join(format!("seg-{:06}.log", meta.file_no));
    let mut bytes = std::fs::read(&sealed).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&sealed, &bytes).unwrap();
    assert!(matches!(store.verify(), Err(StoreError::Corrupt { .. })));
    assert!(matches!(
        store.read(&ReadFilter::all()),
        Err(StoreError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshots_persist_and_list() {
    let dir = tmp_dir("snapshots");
    let store = Store::open(&dir, small_opts()).unwrap();
    store.put_snapshot("nightly", "{\"k\": 1}").unwrap();
    store.put_snapshot("weekly", "{\"k\": 2}").unwrap();
    store.put_snapshot("nightly", "{\"k\": 3}").unwrap();
    assert_eq!(store.list_snapshots().unwrap(), vec!["nightly", "weekly"]);
    let path = Store::snapshot_path_in(&dir, "nightly").unwrap();
    assert_eq!(std::fs::read_to_string(path).unwrap(), "{\"k\": 3}");
    assert!(store.put_snapshot("../escape", "{}").is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn double_last_batch_replay_is_rejected_on_recovery() {
    let dir = tmp_dir("double");
    {
        let mut store = Store::open(&dir, small_opts()).unwrap();
        for i in 0..3u64 {
            store.append_batch(i, &[traj(i, 3)]).unwrap();
        }
    }
    let fs = trajdb::CrashFs::record(&dir).unwrap();
    let dst = tmp_dir("double-dst");
    fs.materialize(&dir, &dst, fs.len(), &TailMutation::DoubleLastBatch)
        .unwrap();
    let store = Store::open(&dst, small_opts()).unwrap();
    assert!(matches!(
        store.stats().recovery.verdict,
        TailVerdict::Garbage(_)
    ));
    assert_eq!(
        store.read(&ReadFilter::all()).unwrap().len(),
        3,
        "the replayed duplicate is dropped, nothing else"
    );
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dst).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ingest → compact → range-read` round-trips a `Dataset`
    /// byte-identically: same trajectory count, same float bits, and the
    /// JSON serialisation of the read-back dataset equals the original's.
    #[test]
    fn ingest_compact_read_round_trips_dataset(
        trajs in prop::collection::vec(
            prop::collection::vec((-1.0e3f64..1.0e3, -1.0e3f64..1.0e3, 1.0e-6f64..10.0), 1..6),
            1..12,
        ),
        batch in 1usize..4,
        seg_cap in 300u64..2000,
    ) {
        let dataset = Dataset::from_trajectories(
            trajs
                .iter()
                .map(|points| {
                    Trajectory::new(
                        points
                            .iter()
                            .map(|&(x, y, s)| SnapshotPoint { mean: Point2::new(x, y), sigma: s })
                            .collect(),
                    )
                    .unwrap()
                })
                .collect(),
        );
        let dir = tmp_dir("prop");
        let mut store = Store::open(&dir, StoreOptions {
            fsync: FsyncPolicy::Never,
            segment_max_bytes: seg_cap,
        }).unwrap();
        for (i, chunk) in dataset.trajectories().chunks(batch).enumerate() {
            store.append_batch(i as u64, chunk).unwrap();
        }
        store.compact().unwrap();
        let back = store.read_dataset(&ReadFilter::all()).unwrap();
        prop_assert_eq!(back.len(), dataset.len());
        for (a, b) in back.iter().zip(dataset.iter()) {
            prop_assert_eq!(bits(a), bits(b));
        }
        prop_assert_eq!(back.to_json(), dataset.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
