//! The pattern library: confirm a recent velocity window, predict the next
//! velocity.

use std::fmt;
use trajdata::SnapshotPoint;
use trajgeo::{Grid, Vec2};
use trajpattern::scorer::log_match_segment;
use trajpattern::MinedPattern;

/// Errors building a [`PatternLibrary`].
#[derive(Debug, Clone, PartialEq)]
pub enum LibraryError {
    /// The confirm threshold must be a probability in `(0, 1]`.
    BadThreshold,
    /// `delta` must be positive and finite.
    BadDelta,
    /// `min_prob` must be in `(0, 1)`.
    BadMinProb,
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::BadThreshold => write!(f, "confirm threshold must be in (0, 1]"),
            LibraryError::BadDelta => write!(f, "delta must be positive and finite"),
            LibraryError::BadMinProb => write!(f, "min_prob must be in (0, 1)"),
        }
    }
}

impl std::error::Error for LibraryError {}

/// A library of mined *velocity* patterns used to assist prediction.
///
/// Only patterns of length ≥ 2 participate (a singular pattern has no
/// prefix to confirm against). The grid must be the velocity-space grid
/// the patterns were mined on.
///
/// ```
/// use prediction::PatternLibrary;
/// use trajdata::SnapshotPoint;
/// use trajgeo::{BBox, CellId, Grid, Point2};
/// use trajpattern::{MinedPattern, Pattern};
///
/// // Velocity grid over [-0.5, 0.5]²; cells of width 0.1.
/// let grid = Grid::new(
///     BBox::new(Point2::new(-0.5, -0.5), Point2::new(0.5, 0.5)).unwrap(), 10, 10,
/// ).unwrap();
/// // Pattern: cell 55 (v=(0.05,0.05)) twice, then cell 56 (v=(0.15,0.05)).
/// let pattern = Pattern::new(vec![CellId(55), CellId(55), CellId(56)]).unwrap();
/// let lib = PatternLibrary::new(
///     vec![MinedPattern::new(pattern, -0.2)], grid, 0.05, 1e-12, 0.9,
/// ).unwrap();
///
/// // Recent velocities sit exactly on the prefix: the library predicts
/// // the pattern's continuation.
/// let recent = vec![
///     SnapshotPoint::exact(Point2::new(0.05, 0.05)),
///     SnapshotPoint::exact(Point2::new(0.05, 0.05)),
/// ];
/// let v = lib.predict_next_velocity(&recent).unwrap();
/// assert!((v.x - 0.15).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct PatternLibrary {
    patterns: Vec<MinedPattern>,
    grid: Grid,
    delta: f64,
    min_prob: f64,
    /// Log of the confirm probability threshold (paper: ln 0.9).
    confirm_log: f64,
}

impl PatternLibrary {
    /// Builds a library. `confirm_threshold` is the §6.1 footnote's 90 %
    /// by default in the experiments; patterns shorter than 2 positions
    /// are dropped.
    pub fn new(
        patterns: Vec<MinedPattern>,
        grid: Grid,
        delta: f64,
        min_prob: f64,
        confirm_threshold: f64,
    ) -> Result<PatternLibrary, LibraryError> {
        if !(confirm_threshold > 0.0 && confirm_threshold <= 1.0) {
            return Err(LibraryError::BadThreshold);
        }
        if !(delta.is_finite() && delta > 0.0) {
            return Err(LibraryError::BadDelta);
        }
        if !(min_prob > 0.0 && min_prob < 1.0) {
            return Err(LibraryError::BadMinProb);
        }
        let mut patterns: Vec<MinedPattern> = patterns
            .into_iter()
            .filter(|m| m.pattern.len() >= 2)
            .collect();
        // Deterministic matching order: longer first (more context), then
        // by NM.
        patterns.sort_by(|a, b| {
            b.pattern
                .len()
                .cmp(&a.pattern.len())
                .then_with(|| b.nm.partial_cmp(&a.nm).expect("finite NM"))
                .then_with(|| a.pattern.cmp(&b.pattern))
        });
        Ok(PatternLibrary {
            patterns,
            grid,
            delta,
            min_prob,
            confirm_log: confirm_threshold.ln(),
        })
    }

    /// Number of usable (length ≥ 2) patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the library holds no usable patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The usable patterns in matching order (longest first, then by NM) —
    /// the order [`confirm_scores`](Self::confirm_scores) reports in.
    pub fn patterns(&self) -> &[MinedPattern] {
        &self.patterns
    }

    /// Given the recent velocity estimates (oldest → newest), returns the
    /// pattern-predicted next velocity, or `None` when the patterns offer
    /// no unambiguous advice.
    ///
    /// A pattern `P = (p₁,…,p_m)` *confirms* when the last `m−1` recent
    /// velocities match `(p₁,…,p_{m−1})` with Eq. 2 probability above the
    /// threshold. Among confirming patterns, only the most specific ones —
    /// those with the longest confirmed prefix — are consulted; if their
    /// continuations disagree (beyond the δ-indifference), the library
    /// abstains and the caller falls back to its motion model. Without the
    /// agreement rule, near-tied patterns with a shared prefix but
    /// different continuations (e.g. "keep cruising" vs "slow down") would
    /// override predictions the model was already getting right.
    pub fn predict_next_velocity(&self, recent: &[SnapshotPoint]) -> Option<Vec2> {
        // Phase 1: batch-confirm every pattern prefix against the window.
        // Phase 2 replays the selection in library order, so the result is
        // identical to interleaving the two.
        let scores = self.confirm_scores(recent);
        // Patterns are sorted longest-first, so the first confirming
        // pattern fixes the specificity level.
        let mut specificity: Option<usize> = None;
        let mut best: Option<(f64, Vec2)> = None;
        let mut candidates: Vec<Vec2> = Vec::new();
        for (m, score) in self.patterns.iter().zip(scores) {
            let cells = m.pattern.cells();
            let prefix_len = cells.len() - 1;
            let Some(lm) = score else {
                continue;
            };
            if let Some(s) = specificity {
                if prefix_len < s {
                    break; // sorted: only shorter prefixes remain
                }
            }
            if lm < self.confirm_log {
                continue;
            }
            specificity = Some(prefix_len);
            let next = self.grid.center(cells[prefix_len]);
            let v = Vec2::new(next.x, next.y);
            candidates.push(v);
            if best.is_none_or(|(b, _)| lm > b) {
                best = Some((lm, v));
            }
        }
        let (_, winner) = best?;
        // Agreement: every most-specific continuation must lie within the
        // indifference distance of the winner.
        let tol = 2.0 * self.delta;
        if candidates.iter().all(|v| (*v - winner).norm() <= tol) {
            Some(winner)
        } else {
            None
        }
    }

    /// The Eq. 2 confirmation score of every library pattern's prefix
    /// against the recent velocity window, in library order (the batch
    /// phase of [`predict_next_velocity`](Self::predict_next_velocity)).
    ///
    /// An entry is `None` when the pattern cannot apply — its prefix is
    /// empty or longer than the history — or when no finite match exists.
    pub fn confirm_scores(&self, recent: &[SnapshotPoint]) -> Vec<Option<f64>> {
        self.patterns
            .iter()
            .map(|m| {
                let cells = m.pattern.cells();
                let prefix_len = cells.len() - 1;
                if prefix_len == 0 || recent.len() < prefix_len {
                    return None;
                }
                let segment = &recent[recent.len() - prefix_len..];
                log_match_segment(
                    segment,
                    &cells[..prefix_len],
                    &self.grid,
                    self.delta,
                    self.min_prob,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgeo::{BBox, CellId, Point2};
    use trajpattern::Pattern;

    /// Velocity grid over [-0.5, 0.5]²: 10×10 cells of width 0.1.
    fn vgrid() -> Grid {
        Grid::new(
            BBox::new(Point2::new(-0.5, -0.5), Point2::new(0.5, 0.5)).unwrap(),
            10,
            10,
        )
        .unwrap()
    }

    fn lib(patterns: Vec<MinedPattern>) -> PatternLibrary {
        PatternLibrary::new(patterns, vgrid(), 0.08, 1e-12, 0.9).unwrap()
    }

    fn mined(cells: &[u32], nm: f64) -> MinedPattern {
        MinedPattern::new(
            Pattern::new(cells.iter().map(|&c| CellId(c)).collect()).unwrap(),
            nm,
        )
    }

    fn vel(x: f64, y: f64) -> SnapshotPoint {
        SnapshotPoint::new(Point2::new(x, y), 0.01).unwrap()
    }

    #[test]
    fn validation() {
        assert_eq!(
            PatternLibrary::new(vec![], vgrid(), 0.1, 1e-12, 0.0).unwrap_err(),
            LibraryError::BadThreshold
        );
        assert_eq!(
            PatternLibrary::new(vec![], vgrid(), 0.0, 1e-12, 0.9).unwrap_err(),
            LibraryError::BadDelta
        );
        assert_eq!(
            PatternLibrary::new(vec![], vgrid(), 0.1, 0.0, 0.9).unwrap_err(),
            LibraryError::BadMinProb
        );
    }

    #[test]
    fn singular_patterns_are_dropped() {
        let l = lib(vec![mined(&[5], -1.0)]);
        assert!(l.is_empty());
    }

    #[test]
    fn confirming_prefix_predicts_next_cell_center() {
        // Grid cell (cx, cy) center = (-0.5 + (cx+0.5)*0.1, ...).
        // Cell 55 = (5,5) → center (0.05, 0.05). Cell 56 → (0.15, 0.05).
        // Pattern (55, 56, 57): prefix (55, 56), next = 57 → (0.25, 0.05).
        let l = lib(vec![mined(&[55, 56, 57], -0.5)]);
        let recent = [vel(0.05, 0.05), vel(0.15, 0.05)];
        let v = l.predict_next_velocity(&recent).expect("should confirm");
        assert!((v.x - 0.25).abs() < 1e-9 && (v.y - 0.05).abs() < 1e-9);
    }

    #[test]
    fn non_matching_history_yields_none() {
        let l = lib(vec![mined(&[55, 56, 57], -0.5)]);
        // Velocities in a far-away grid region.
        let recent = [vel(-0.45, -0.45), vel(-0.45, -0.45)];
        assert!(l.predict_next_velocity(&recent).is_none());
    }

    #[test]
    fn too_short_history_yields_none() {
        let l = lib(vec![mined(&[55, 56, 57], -0.5)]);
        assert!(l.predict_next_velocity(&[vel(0.05, 0.05)]).is_none());
        assert!(l.predict_next_velocity(&[]).is_none());
    }

    #[test]
    fn best_confirming_pattern_wins() {
        // Two patterns share the first prefix position; the recent window
        // sits exactly on (55, 56) so pattern A confirms better than B
        // whose prefix expects (55, 66).
        let a = mined(&[55, 56, 57], -1.0);
        let b = mined(&[55, 66, 77], -0.1);
        let l = lib(vec![a, b]);
        let recent = [vel(0.05, 0.05), vel(0.15, 0.05)];
        let v = l.predict_next_velocity(&recent).expect("A should confirm");
        assert!((v.x - 0.25).abs() < 1e-9, "expected pattern A's successor");
    }

    #[test]
    fn confirm_scores_align_with_prediction() {
        let l = lib(vec![mined(&[55, 56, 57], -0.5), mined(&[55, 66], -0.1)]);
        let recent = [vel(0.05, 0.05), vel(0.15, 0.05)];
        let scores = l.confirm_scores(&recent);
        assert_eq!(scores.len(), l.len());
        // The 3-cell pattern sorts first and its on-path prefix confirms.
        assert!(scores[0].unwrap() > 0.9_f64.ln());
        // History shorter than any prefix: all entries are None.
        assert!(l.confirm_scores(&[]).iter().all(Option::is_none));
    }

    #[test]
    fn uncertain_history_fails_confirmation() {
        // Same means but huge sigma: the Eq. 2 probability collapses.
        let l = lib(vec![mined(&[55, 56, 57], -0.5)]);
        let fuzzy = [
            SnapshotPoint::new(Point2::new(0.05, 0.05), 0.5).unwrap(),
            SnapshotPoint::new(Point2::new(0.15, 0.05), 0.5).unwrap(),
        ];
        assert!(l.predict_next_velocity(&fuzzy).is_none());
    }
}
