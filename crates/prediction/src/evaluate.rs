//! Mis-prediction evaluation: the Fig. 3 harness.
//!
//! A *mis-prediction* occurs when the server-side prediction is further
//! than the tolerable uncertainty `U` from the object's true location, so
//! a report message must be sent (§6.1: "If the predicted location is too
//! far away from the actual location such that a message has to be sent
//! from the mobile object to the server, this is called a
//! mis-prediction"). Fig. 3 reports the *ratio of reduced
//! mis-predictions* when the prediction module is augmented with mined
//! patterns.

use crate::library::PatternLibrary;
use mobility::{MotionModel, ReportingScheme};
use trajdata::SnapshotPoint;
use trajgeo::Point2;

/// Outcome of evaluating one configuration over a set of test paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EvalResult {
    /// Mis-predictions of the bare prediction module.
    pub base_mispredictions: usize,
    /// Mis-predictions with pattern assistance.
    pub assisted_mispredictions: usize,
    /// Snapshots evaluated (excluding each path's mandatory initial fix).
    pub snapshots: usize,
}

impl EvalResult {
    /// Fig. 3's y-axis: the fraction of mis-predictions removed by the
    /// patterns, `1 − assisted/base`. Zero when the base never
    /// mis-predicts.
    pub fn reduction(&self) -> f64 {
        if self.base_mispredictions == 0 {
            0.0
        } else {
            1.0 - self.assisted_mispredictions as f64 / self.base_mispredictions as f64
        }
    }
}

/// Per-step accounting of how the pattern library behaved during an
/// evaluation — the observability layer behind the Fig. 3 numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FireStats {
    /// Steps where the library produced a prediction.
    pub fires: usize,
    /// Fires whose prediction landed within `U` of the truth.
    pub fires_correct: usize,
    /// Fires at steps where the motion model alone would have
    /// mis-predicted.
    pub fires_at_model_errors: usize,
    /// Mis-predictions avoided: model wrong, pattern right.
    pub saved: usize,
    /// Mis-predictions introduced: model right, pattern wrong.
    pub hurt: usize,
}

impl FireStats {
    /// Net mis-predictions removed by the library (`saved − hurt`,
    /// saturating at zero from below is *not* applied — a harmful library
    /// yields a negative value).
    pub fn net_saved(&self) -> i64 {
        self.saved as i64 - self.hurt as i64
    }

    fn merge(&mut self, other: FireStats) {
        self.fires += other.fires;
        self.fires_correct += other.fires_correct;
        self.fires_at_model_errors += other.fires_at_model_errors;
        self.saved += other.saved;
        self.hurt += other.hurt;
    }
}

/// Counts mis-predictions of `model` over one ground-truth path,
/// optionally assisted by a velocity-pattern library.
///
/// The server-side protocol mirrors `mobility::simulate_reporting` (no
/// message loss — Fig. 3 counts necessary messages): the first snapshot is
/// a mandatory fix; afterwards the prediction is the pattern's next
/// velocity applied to the last estimate whenever the recent velocity
/// window confirms a pattern, the model's prediction otherwise.
pub fn count_mispredictions(
    true_path: &[Point2],
    model: &mut dyn MotionModel,
    scheme: &ReportingScheme,
    library: Option<&PatternLibrary>,
) -> usize {
    count_mispredictions_detailed(true_path, model, scheme, library).0
}

/// Like [`count_mispredictions`], additionally returning the per-step
/// library accounting.
pub fn count_mispredictions_detailed(
    true_path: &[Point2],
    model: &mut dyn MotionModel,
    scheme: &ReportingScheme,
    library: Option<&PatternLibrary>,
) -> (usize, FireStats) {
    model.reset();
    let mut stats = FireStats::default();
    let mut mispredictions = 0usize;
    let mut estimates: Vec<SnapshotPoint> = Vec::with_capacity(true_path.len());
    let mut velocities: Vec<SnapshotPoint> = Vec::new();

    for (i, &truth) in true_path.iter().enumerate() {
        if i == 0 {
            model.advance(Some(truth));
            estimates.push(SnapshotPoint::exact(truth));
            continue;
        }
        let model_pred = model.predict_next();
        let model_ok = model_pred.distance(truth) <= scheme.uncertainty;
        let pred = match library.and_then(|lib| lib.predict_next_velocity(&velocities)) {
            Some(v) => {
                let p = estimates[i - 1].mean + v;
                stats.fires += 1;
                let pattern_ok = p.distance(truth) <= scheme.uncertainty;
                if pattern_ok {
                    stats.fires_correct += 1;
                }
                if !model_ok {
                    stats.fires_at_model_errors += 1;
                    if pattern_ok {
                        stats.saved += 1;
                    }
                } else if !pattern_ok {
                    stats.hurt += 1;
                }
                p
            }
            None => model_pred,
        };
        if pred.distance(truth) > scheme.uncertainty {
            mispredictions += 1;
            model.advance(Some(truth));
            estimates.push(SnapshotPoint::exact(truth));
        } else {
            model.advance(None);
            estimates.push(SnapshotPoint::new(pred, scheme.sigma()).expect("finite prediction"));
        }
        // Velocity estimate between the last two server-side estimates.
        // For pattern confirmation the estimates are treated as *point*
        // values (σ = 0): the Eq. 2 probability of a ≥ 3-position window
        // with dead-reckoned σ = U/c attached could never reach the 90 %
        // confirm threshold, so the paper's integration only makes sense
        // with the δ-indifference absorbing the estimation error.
        let a = &estimates[i - 1];
        let b = &estimates[i];
        let d = b.mean - a.mean;
        velocities.push(SnapshotPoint {
            mean: Point2::new(d.x, d.y),
            sigma: 0.0,
        });
    }
    (mispredictions, stats)
}

/// Evaluates base vs pattern-assisted prediction over a set of test paths.
pub fn evaluate_paths(
    paths: &[Vec<Point2>],
    model: &mut dyn MotionModel,
    scheme: &ReportingScheme,
    library: &PatternLibrary,
) -> EvalResult {
    evaluate_paths_detailed(paths, model, scheme, library).0
}

/// Like [`evaluate_paths`], additionally returning the aggregated library
/// firing statistics of the assisted runs.
pub fn evaluate_paths_detailed(
    paths: &[Vec<Point2>],
    model: &mut dyn MotionModel,
    scheme: &ReportingScheme,
    library: &PatternLibrary,
) -> (EvalResult, FireStats) {
    let mut base = 0usize;
    let mut assisted = 0usize;
    let mut snapshots = 0usize;
    let mut stats = FireStats::default();
    for path in paths {
        base += count_mispredictions(path, model, scheme, None);
        let (a, s) = count_mispredictions_detailed(path, model, scheme, Some(library));
        assisted += a;
        stats.merge(s);
        snapshots += path.len().saturating_sub(1);
    }
    (
        EvalResult {
            base_mispredictions: base,
            assisted_mispredictions: assisted,
            snapshots,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobility::LinearModel;
    use trajgeo::{BBox, Grid};
    use trajpattern::{MinedPattern, Pattern};

    fn scheme() -> ReportingScheme {
        ReportingScheme::new(0.05, 2.0, 0.0).unwrap()
    }

    /// Velocity grid over [-0.45, 0.55]²: cells of width 0.1 whose centers
    /// hit the multiples of 0.1 used by the zig-zag path, so the true
    /// velocities (0.1, 0) and (0, 0.1) are exactly cell centers
    /// (cells 45 and 54 respectively).
    fn vgrid() -> Grid {
        Grid::new(
            BBox::new(Point2::new(-0.45, -0.45), Point2::new(0.55, 0.55)).unwrap(),
            10,
            10,
        )
        .unwrap()
    }

    /// A path that alternates velocity (0.1, 0) then (0, 0.1) every step —
    /// a zig-zag that defeats the linear model at every turn but is a
    /// perfectly regular velocity pattern.
    fn zigzag(n: usize) -> Vec<Point2> {
        let mut p = Point2::new(0.1, 0.1);
        let mut out = vec![p];
        for i in 0..n {
            let v = if i % 2 == 0 {
                trajgeo::Vec2::new(0.1, 0.0)
            } else {
                trajgeo::Vec2::new(0.0, 0.1)
            };
            p = BBox::unit().reflect(p + v);
            out.push(p);
        }
        out
    }

    #[test]
    fn patterns_reduce_zigzag_mispredictions() {
        // Velocity cells: v=(0.1,0) → cell (5,4) = 45; v=(0,0.1) → (4,5)=54.
        // The alternating pattern: (45,54,45) and (54,45,54).
        let lib = PatternLibrary::new(
            vec![
                MinedPattern::new(
                    Pattern::new(
                        vec![45u32, 54, 45]
                            .into_iter()
                            .map(trajgeo::CellId)
                            .collect(),
                    )
                    .unwrap(),
                    -0.1,
                ),
                MinedPattern::new(
                    Pattern::new(
                        vec![54u32, 45, 54]
                            .into_iter()
                            .map(trajgeo::CellId)
                            .collect(),
                    )
                    .unwrap(),
                    -0.1,
                ),
            ],
            vgrid(),
            0.06,
            1e-12,
            0.5,
        )
        .unwrap();
        let paths = vec![zigzag(40)];
        let mut model = LinearModel::new();
        let result = evaluate_paths(&paths, &mut model, &scheme(), &lib);
        assert!(
            result.base_mispredictions > 20,
            "zig-zag must defeat LM: {}",
            result.base_mispredictions
        );
        assert!(
            result.assisted_mispredictions < result.base_mispredictions,
            "patterns must help: {} vs {}",
            result.assisted_mispredictions,
            result.base_mispredictions
        );
        assert!(result.reduction() > 0.3, "reduction {}", result.reduction());
    }

    #[test]
    fn empty_library_changes_nothing() {
        let lib = PatternLibrary::new(vec![], vgrid(), 0.06, 1e-12, 0.9).unwrap();
        let paths = vec![zigzag(30)];
        let mut model = LinearModel::new();
        let result = evaluate_paths(&paths, &mut model, &scheme(), &lib);
        assert_eq!(result.base_mispredictions, result.assisted_mispredictions);
        assert_eq!(result.reduction(), 0.0);
    }

    #[test]
    fn fire_stats_account_for_saves() {
        let lib = PatternLibrary::new(
            vec![
                MinedPattern::new(
                    Pattern::new(
                        vec![45u32, 54, 45]
                            .into_iter()
                            .map(trajgeo::CellId)
                            .collect(),
                    )
                    .unwrap(),
                    -0.1,
                ),
                MinedPattern::new(
                    Pattern::new(
                        vec![54u32, 45, 54]
                            .into_iter()
                            .map(trajgeo::CellId)
                            .collect(),
                    )
                    .unwrap(),
                    -0.1,
                ),
            ],
            vgrid(),
            0.06,
            1e-12,
            0.5,
        )
        .unwrap();
        let paths = vec![zigzag(40)];
        let mut model = LinearModel::new();
        let (result, stats) = evaluate_paths_detailed(&paths, &mut model, &scheme(), &lib);
        assert!(stats.fires > 0, "library must fire on the zig-zag");
        assert!(stats.fires_correct <= stats.fires);
        assert!(stats.saved <= stats.fires_at_model_errors);
        assert!(stats.net_saved() > 0, "library must net-help: {stats:?}");
        // Accounting consistency with the headline numbers: every net save
        // shows up as a removed mis-prediction (dynamics may shift events,
        // so allow slack toward more reduction, not less).
        assert!(
            (result.base_mispredictions - result.assisted_mispredictions) as i64
                >= stats.net_saved() / 2,
            "saves should materialize: {result:?} vs {stats:?}"
        );
    }

    #[test]
    fn reduction_handles_zero_base() {
        let r = EvalResult {
            base_mispredictions: 0,
            assisted_mispredictions: 0,
            snapshots: 10,
        };
        assert_eq!(r.reduction(), 0.0);
    }

    #[test]
    fn straight_line_needs_no_patterns() {
        // LM predicts a straight line perfectly; patterns can't "improve"
        // below the floor of ~1 velocity-establishing report.
        let path: Vec<Point2> = (0..30).map(|i| Point2::new(i as f64 * 0.01, 0.5)).collect();
        let lib = PatternLibrary::new(vec![], vgrid(), 0.06, 1e-12, 0.9).unwrap();
        let mut model = LinearModel::new();
        let result = evaluate_paths(&[path], &mut model, &scheme(), &lib);
        assert!(result.base_mispredictions <= 2);
    }
}
