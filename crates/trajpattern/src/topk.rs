//! Maintaining the dynamic NM threshold ω (§4, observation 2).
//!
//! "If we find a set of patterns Q, then the NM threshold ω should be
//! greater than or equal to the k-th maximum NM of the patterns in Q. …
//! With more patterns discovered, we can update the threshold ω, which
//! could increase the pruning power."

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A finite, totally ordered f64 — NM values are finite by construction
/// (per-position probabilities are floored), so ordering never sees NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Finite(f64);

impl Eq for Finite {}

impl PartialOrd for Finite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NM values are finite")
    }
}

/// Tracks the k-th largest value offered so far.
///
/// ω starts at `-∞` and is monotonically non-decreasing: once `k` values
/// have been offered, ω equals the k-th largest of everything seen.
#[derive(Debug, Clone)]
pub struct ThresholdTracker {
    k: usize,
    // Min-heap of the k largest values (Reverse turns BinaryHeap's
    // max-heap into a min-heap).
    heap: BinaryHeap<Reverse<Finite>>,
}

impl ThresholdTracker {
    /// A tracker for the k-th maximum. `k` must be at least 1.
    pub fn new(k: usize) -> ThresholdTracker {
        assert!(k >= 1, "k must be at least 1");
        ThresholdTracker {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers one value. Non-finite values are rejected (NM values are
    /// finite by construction; a NaN here is a caller bug caught early).
    pub fn offer(&mut self, value: f64) {
        assert!(value.is_finite(), "NM values must be finite, got {value}");
        if self.heap.len() < self.k {
            self.heap.push(Reverse(Finite(value)));
        } else if let Some(&Reverse(Finite(min))) = self.heap.peek() {
            if value > min {
                self.heap.pop();
                self.heap.push(Reverse(Finite(value)));
            }
        }
    }

    /// The current threshold ω: the k-th largest value offered, or `-∞`
    /// while fewer than `k` values have been seen.
    pub fn omega(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap
                .peek()
                .map(|r| r.0 .0)
                .unwrap_or(f64::NEG_INFINITY)
        }
    }

    /// The `k` this tracker was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The retained values (the up-to-`k` largest seen), sorted ascending —
    /// a deterministic snapshot used by checkpointing to rebuild the
    /// tracker exactly.
    pub fn values(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.heap.iter().map(|r| r.0 .0).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("retained values are finite"));
        v
    }

    /// How many values have been retained (at most `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no values have been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_is_kth_maximum() {
        let mut t = ThresholdTracker::new(3);
        assert_eq!(t.omega(), f64::NEG_INFINITY);
        t.offer(-5.0);
        t.offer(-1.0);
        assert_eq!(t.omega(), f64::NEG_INFINITY); // only 2 seen
        t.offer(-3.0);
        assert_eq!(t.omega(), -5.0);
        t.offer(-2.0); // top-3 now {-1,-2,-3}
        assert_eq!(t.omega(), -3.0);
        t.offer(-10.0); // no change
        assert_eq!(t.omega(), -3.0);
    }

    #[test]
    fn omega_is_monotone_nondecreasing() {
        let mut t = ThresholdTracker::new(2);
        let mut prev = f64::NEG_INFINITY;
        for v in [-9.0, -7.0, -8.0, -1.0, -3.0, -2.0, -0.5] {
            t.offer(v);
            let w = t.omega();
            assert!(w >= prev, "omega decreased: {w} < {prev}");
            prev = w;
        }
        assert_eq!(prev, -1.0);
    }

    #[test]
    fn k_equals_one_tracks_maximum() {
        let mut t = ThresholdTracker::new(1);
        t.offer(-4.0);
        assert_eq!(t.omega(), -4.0);
        t.offer(-2.0);
        assert_eq!(t.omega(), -2.0);
        t.offer(-3.0);
        assert_eq!(t.omega(), -2.0);
    }

    #[test]
    fn duplicate_values_each_count() {
        let mut t = ThresholdTracker::new(3);
        t.offer(-1.0);
        t.offer(-1.0);
        t.offer(-1.0);
        assert_eq!(t.omega(), -1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        ThresholdTracker::new(1).offer(f64::NAN);
    }

    #[test]
    fn values_snapshot_rebuilds_tracker() {
        let mut t = ThresholdTracker::new(3);
        for v in [-5.0, -1.0, -3.0, -2.0, -10.0] {
            t.offer(v);
        }
        assert_eq!(t.k(), 3);
        assert_eq!(t.values(), vec![-3.0, -2.0, -1.0]);
        let mut rebuilt = ThresholdTracker::new(t.k());
        for v in t.values() {
            rebuilt.offer(v);
        }
        assert_eq!(rebuilt.omega(), t.omega());
    }
}
