//! **TrajPattern**: mining top-k sequential patterns from imprecise
//! trajectories of mobile objects (Yang & Hu, EDBT 2006).
//!
//! # The problem
//!
//! The input is a set `D` of imprecise trajectories: at each synchronized
//! snapshot an object's true location is a 2-D normal around a predicted
//! mean (see the `trajdata` and `mobility` crates). A *trajectory pattern*
//! is an ordered list of grid-cell centers; its importance is measured by
//! the **normalized match** (NM):
//!
//! ```text
//! M(P,T')  = Π_i Prob(l_i, σ_i, p_i, δ)         (joint probability, Eq. 2)
//! NM(P,T') = log M(P,T') / |P|                  (length-normalized, Eq. 3)
//! NM(P,T)  = max over windows T' ⊆ T of NM(P,T')      (Eq. 4)
//! NM(P)    = Σ_{T∈D} NM(P,T)
//! ```
//!
//! The goal: find the `k` patterns with the highest NM, presented as
//! **pattern groups** of near-identical patterns.
//!
//! # The algorithm
//!
//! The Apriori property fails for NM, but the **min-max property** holds:
//! `NM(P'·P'') ≤ max(NM(P'), NM(P''))` — in fact the proof yields the
//! tighter weighted-mean bound used by [`minmax`]. [`algorithm::mine`]
//! implements the paper's growing process: singular patterns seed a
//! candidate set `Q`; high patterns (NM above the running k-th-best
//! threshold ω) are concatenated with every pattern in `Q`; low patterns
//! survive pruning only if they satisfy the *1-extension property*
//! (Lemma 1). §5's extensions — minimum pattern length and wildcard
//! positions — are available through [`MiningParams`] and [`gapped`].
//!
//! Batch mining, ledger-seeded re-growth ([`mine_seeded`]) and the
//! streaming arrival-delta path all drive the *same* growing loop, housed
//! in [`engine`] and parameterized over an NM oracle ([`NmSource`]) — so
//! pruning-decision parity across the stack holds by construction.
//!
//! # Quick example
//!
//! ```
//! use trajdata::{Dataset, Trajectory};
//! use trajgeo::{BBox, Grid, Point2};
//! use trajpattern::{Miner, MiningParams};
//!
//! // Ten objects sweeping left-to-right across a 4×4 grid.
//! let data: Dataset = (0..10)
//!     .map(|_| {
//!         Trajectory::from_exact((0..4).map(|i| Point2::new(0.125 + i as f64 * 0.25, 0.625)))
//!     })
//!     .collect();
//! let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
//! let outcome = Miner::new(&data, &grid)
//!     .params(MiningParams::new(3, 0.1).unwrap())
//!     .threads(0) // 0 = one scorer worker per core; results are identical
//!     .mine()
//!     .unwrap();
//! assert_eq!(outcome.patterns.len(), 3);
//! ```
//!
//! The free function [`mine`] remains as a one-call compatibility wrapper
//! over the same machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod bruteforce;
pub mod checkpoint;
pub mod engine;
pub mod gapped;
pub mod groups;
pub mod index;
pub mod miner;
pub mod minmax;
pub mod params;
pub mod pattern;
pub mod prune;
pub mod scorer;
pub mod seeded;
pub mod stats;
pub mod topk;

pub use algorithm::{effective_max_len_from, mine, MiningOutcome, MiningStats};
pub use checkpoint::{CheckpointError, FingerprintKind};
pub use engine::{NmSource, SeededSource, SparseSource};
pub use groups::PatternGroup;
pub use index::PatternIndex;
pub use miner::{Error, Miner};
pub use params::{MiningParams, ParamsError};
pub use pattern::{MinedPattern, Pattern};
pub use scorer::{Measure, ScoreRequest, Scorer, ScorerStats};
pub use seeded::{certified_topk, mine_seeded, SeedCertifier, SeedError, SeededOutcome};
