//! Computing match and normalized match (Eq. 2–4 of the paper).
//!
//! Scoring a pattern against the dataset is the dominant cost of mining
//! (the paper's complexity analysis charges `O(MN)` per pattern). The
//! [`Scorer`] therefore:
//!
//! - builds, once per trajectory shard, a *corridor table*: for each
//!   trajectory, the per-snapshot log probabilities
//!   `ln Prob(l, σ, center(cell), δ)` of exactly the cells that can
//!   receive above-floor probability. A snapshot only gives non-floor
//!   probability to cells within `δ + 8σ` of its mean, so one corridor
//!   pass per trajectory replaces the per-pattern dense row fills older
//!   revisions did — every probability evaluated once per (cell,
//!   snapshot), never per pattern;
//! - skips negligible-mass work while scoring: a pattern touching no
//!   corridor cell of a trajectory contributes a constant depending only
//!   on the pattern and trajectory lengths, replicated addition by
//!   addition ([`untouched_window_mean`]) so the result is bit-identical
//!   to the dense fold;
//! - computes all `G` singular-pattern NMs in one sparse streaming pass
//!   ([`Scorer::nm_all_singulars`]) without materializing the `G × ΣL`
//!   table;
//! - scores whole candidate *batches* ([`Scorer::score_batch`]) by
//!   partitioning trajectories into contiguous shards, evaluating shards on
//!   scoped worker threads, and reducing the per-trajectory `NM(P, T)`
//!   contributions in ascending trajectory order — so the result is
//!   bit-identical to the sequential fold for every thread count (the
//!   determinism convention in DESIGN.md §5).
//!
//! The one front door for scoring work is [`Scorer::query`], which
//! returns a [`ScoreRequest`] builder: pick the [`Measure`], optionally
//! attach a [`PatternIndex`](crate::index::PatternIndex) so patterns
//! provably far from every trajectory resolve analytically without
//! touching the tables, then [`ScoreRequest::run`]. The classic entry
//! points ([`Scorer::score_batch`] and friends) remain as thin wrappers;
//! CLI, bench, the stream repair path and the server all construct
//! scoring work through the same builder.
//!
//! Internally the scorer is split into a `Send + Sync` read-only core
//! ([`ScorerCore`]: dataset/grid/δ) shared by all workers, and per-shard
//! mutable state (the shard's corridor tables), so the parallel path
//! needs no locks and no `unsafe`.
//!
//! Per-position probabilities are clamped below by `min_prob` so `log M`
//! stays finite; DESIGN.md §5 explains why this preserves the min-max
//! property exactly.

use crate::pattern::Pattern;
use std::cell::{Cell, RefCell};
use trajdata::{Dataset, SnapshotPoint};
use trajgeo::fxhash::{FxHashMap, FxHashSet};
use trajgeo::stats::prob_within_delta;
use trajgeo::{CellId, Grid};

/// Below this many trajectories the parallel path is all overhead; scoring
/// falls back to the single-shard loop (results are identical either way).
const MIN_TRAJECTORIES_PER_SHARD: usize = 8;

/// The read-only half of the scorer: everything workers share. Contains
/// only borrows of immutable data and plain floats, so it is `Send + Sync`
/// by construction and can be captured by scoped threads.
#[derive(Debug, Clone, Copy)]
struct ScorerCore<'a> {
    data: &'a Dataset,
    grid: &'a Grid,
    delta: f64,
    min_prob: f64,
    floor_log: f64,
}

impl<'a> ScorerCore<'a> {
    /// `ln(max(Prob(l, σ, center(cell), δ), min_prob))` for one snapshot.
    #[inline]
    fn log_prob(&self, sp: &SnapshotPoint, cell: CellId) -> f64 {
        prob_within_delta(sp.mean, sp.sigma, self.grid.center(cell), self.delta)
            .max(self.min_prob)
            .ln()
    }

    /// Builds `shard`'s corridor tables if they are not built yet: per
    /// local trajectory, a probability row for every cell some snapshot
    /// reaches within `δ + 8σ`. Row entries the corridor scan does not
    /// touch are the floor *exactly* (the invariant
    /// [`Scorer::nm_all_singulars`] is built on), so these sparse rows
    /// carry bit-identical values to a dense fill.
    fn build_shard(&self, shard: &mut Shard) {
        if shard.built {
            return;
        }
        let trajs = &self.data.trajectories()[shard.start..shard.end];
        let max_l = trajs.iter().map(|t| t.len()).max().unwrap_or(0);
        shard.floor = vec![self.floor_log; max_l].into_boxed_slice();
        shard.rows = trajs
            .iter()
            .map(|traj| {
                let l = traj.len();
                let mut rows: FxHashMap<CellId, Box<[f64]>> = FxHashMap::default();
                for (t, sp) in traj.points().iter().enumerate() {
                    let radius = self.delta + 8.0 * sp.sigma;
                    for cell in self.grid.cells_within(sp.mean, radius) {
                        let lp = self.log_prob(sp, cell);
                        if lp > self.floor_log {
                            let row = rows
                                .entry(cell)
                                .or_insert_with(|| vec![self.floor_log; l].into_boxed_slice());
                            row[t] = lp;
                        }
                    }
                }
                rows
            })
            .collect();
        shard.built = true;
    }

    /// Best-window mean of `cells` over one shard-local trajectory, read
    /// from the corridor tables. `buf` is caller-owned scratch reused
    /// across calls.
    fn window_mean<'s>(
        &self,
        shard: &'s Shard,
        local: usize,
        cells: &[CellId],
        buf: &mut Vec<&'s [f64]>,
    ) -> f64 {
        let l = self.data.trajectories()[shard.start + local].len();
        let m = cells.len();
        let rows = &shard.rows[local];
        buf.clear();
        let mut near = false;
        for c in cells {
            match rows.get(c) {
                Some(r) => {
                    near = true;
                    buf.push(r);
                }
                None => buf.push(&shard.floor[..l]),
            }
        }
        if near {
            best_window_mean_rows(buf, m, self.floor_log)
        } else {
            untouched_window_mean(m, l, self.floor_log)
        }
    }

    /// Per-trajectory contributions of every pattern in `batch` over one
    /// shard, in (pattern, ascending local trajectory) order.
    fn score_shard(&self, shard: &mut Shard, batch: &[Pattern], kind: BatchKind) -> Vec<Vec<f64>> {
        self.build_shard(shard);
        let shard: &Shard = shard;
        let locals = shard.end - shard.start;
        let mut buf: Vec<&[f64]> = Vec::new();
        let mut out = Vec::with_capacity(batch.len());
        for pattern in batch {
            let m = pattern.len();
            let mut contributions = Vec::with_capacity(locals);
            for local in 0..locals {
                let mean = self.window_mean(shard, local, pattern.cells(), &mut buf);
                contributions.push(match kind {
                    BatchKind::Nm => mean,
                    // best window *sum* (not mean); the match contribution
                    // is its exp.
                    BatchKind::Match => (mean * m as f64).exp(),
                });
            }
            out.push(contributions);
        }
        out
    }

    /// The sparse singular-NM pass over one shard: for each trajectory (in
    /// ascending order) the `(cell, best log-prob)` updates it produces, in
    /// the exact order the sequential pass would apply them.
    fn singular_updates(&self, start: usize, end: usize) -> Vec<(u32, f64)> {
        let mut updates = Vec::new();
        let mut best: FxHashMap<u32, f64> = FxHashMap::default();
        for traj in &self.data.trajectories()[start..end] {
            best.clear();
            for sp in traj.points() {
                let radius = self.delta + 8.0 * sp.sigma;
                for cell in self.grid.cells_within(sp.mean, radius) {
                    let lp = self.log_prob(sp, cell);
                    if lp > self.floor_log {
                        let e = best.entry(cell.0).or_insert(f64::NEG_INFINITY);
                        if lp > *e {
                            *e = lp;
                        }
                    }
                }
            }
            for (&cell, &b) in best.iter() {
                updates.push((cell, b));
            }
        }
        updates
    }
}

/// Which measure a batch computes.
#[derive(Debug, Clone, Copy)]
enum BatchKind {
    /// Normalized match: mean log probability of the best window (Eq. 3+4).
    Nm,
    /// The match measure of Yang et al. \[14\]: expected best-window
    /// occurrence count.
    Match,
}

/// Which measure a [`ScoreRequest`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Normalized match (Eq. 3+4 summed over the dataset) — the mining
    /// measure; what [`Scorer::score_batch`] computes.
    Nm,
    /// The match measure of Yang et al. \[14\]: expected best-window
    /// occurrence count; what [`Scorer::score_batch_match`] computes.
    Match,
}

/// One worker's mutable state: a contiguous trajectory range and its
/// corridor tables — per local trajectory, a map from cell to the full
/// log-probability row, plus one shared all-floor row (sliced to each
/// trajectory's length) standing in for every absent cell.
#[derive(Debug)]
struct Shard {
    start: usize,
    end: usize,
    built: bool,
    rows: Vec<FxHashMap<CellId, Box<[f64]>>>,
    floor: Box<[f64]>,
}

impl Shard {
    /// Drops the (possibly half-built) tables so the next use rebuilds
    /// them from scratch — the degradation path after a worker panic.
    fn reset(&mut self) {
        self.built = false;
        self.rows = Vec::new();
        self.floor = Box::default();
    }
}

/// Pattern scoring engine over one dataset/grid/δ configuration.
///
/// Construct with [`Scorer::new`] for the sequential engine or
/// [`Scorer::with_threads`] for the deterministic parallel one; both
/// produce bit-identical scores (see the module docs). Scoring work is
/// described by a [`ScoreRequest`] from [`Scorer::query`].
pub struct Scorer<'a> {
    core: ScorerCore<'a>,
    threads: usize,
    shards: RefCell<Vec<Shard>>,
    /// Distinct cells referenced by scored patterns — the demand-driven
    /// "cache size" figure surfaced by [`Scorer::cached_cells`], kept
    /// stable across the corridor-table refactor.
    touched: RefCell<FxHashSet<CellId>>,
    evaluations: Cell<u64>,
    degraded: Cell<u64>,
    panic_injection: Cell<Option<usize>>,
}

impl<'a> std::fmt::Debug for Scorer<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scorer")
            .field("trajectories", &self.core.data.len())
            .field("grid_cells", &self.core.grid.num_cells())
            .field("delta", &self.core.delta)
            .field("min_prob", &self.core.min_prob)
            .field("threads", &self.threads)
            .field("cached_cells", &self.cached_cells())
            .finish()
    }
}

impl<'a> Scorer<'a> {
    /// Creates a sequential (single-shard) scorer. `min_prob` must be in
    /// `(0, 1)` (validated by `MiningParams`; debug-asserted here).
    pub fn new(data: &'a Dataset, grid: &'a Grid, delta: f64, min_prob: f64) -> Scorer<'a> {
        Scorer::with_threads(data, grid, delta, min_prob, 1)
    }

    /// Creates a scorer that scores batches on `threads` worker threads
    /// (`0` = one per available CPU). Scores are bit-identical to the
    /// sequential scorer for every thread count: trajectories are split
    /// into contiguous shards and per-trajectory contributions are reduced
    /// in ascending trajectory order.
    pub fn with_threads(
        data: &'a Dataset,
        grid: &'a Grid,
        delta: f64,
        min_prob: f64,
        threads: usize,
    ) -> Scorer<'a> {
        debug_assert!(min_prob > 0.0 && min_prob < 1.0);
        debug_assert!(delta > 0.0);
        let threads = effective_threads(threads);
        // Never split below MIN_TRAJECTORIES_PER_SHARD per worker: tiny
        // shards cost more in spawn/cache duplication than they win.
        let shard_count = (data.len() / MIN_TRAJECTORIES_PER_SHARD).clamp(1, threads);
        let n = data.len();
        let shards = (0..shard_count)
            .map(|s| Shard {
                start: n * s / shard_count,
                end: n * (s + 1) / shard_count,
                built: false,
                rows: Vec::new(),
                floor: Box::default(),
            })
            .collect();
        Scorer {
            core: ScorerCore {
                data,
                grid,
                delta,
                min_prob,
                floor_log: min_prob.ln(),
            },
            threads,
            shards: RefCell::new(shards),
            touched: RefCell::new(FxHashSet::default()),
            evaluations: Cell::new(0),
            degraded: Cell::new(0),
            panic_injection: Cell::new(None),
        }
    }

    /// The dataset being scored.
    #[inline]
    pub fn data(&self) -> &'a Dataset {
        self.core.data
    }

    /// The grid defining pattern positions.
    #[inline]
    pub fn grid(&self) -> &'a Grid {
        self.core.grid
    }

    /// The indifference distance δ.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.core.delta
    }

    /// `ln(min_prob)` — the per-position contribution floor, and also the
    /// NM a pattern receives from a trajectory it cannot fit in.
    #[inline]
    pub fn floor_log(&self) -> f64 {
        self.core.floor_log
    }

    /// The worker-thread count this scorer was built with (≥ 1).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of pattern scorings performed so far (NM or match).
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// How many worker-shard panics were absorbed by rescoring the failed
    /// shard sequentially (see the module docs on graceful degradation).
    /// `0` in a healthy run.
    #[inline]
    pub fn degraded_rescores(&self) -> u64 {
        self.degraded.get()
    }

    /// Number of trajectory shards this scorer partitions work into.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.borrow().len()
    }

    /// Fault-injection hook: make the worker for shard `shard` panic during
    /// the next multi-shard batch, exercising the degradation path (the
    /// shard is then rescored sequentially and counted by
    /// [`Scorer::degraded_rescores`]). Consumed by the next batch; ignored
    /// when the scorer runs single-sharded (there is no worker thread to
    /// isolate). Testing aid — never set in production paths.
    pub fn inject_panic_next_batch(&self, shard: usize) {
        self.panic_injection.set(Some(shard));
    }

    /// Starts a [`ScoreRequest`] over `batch` — the single front door for
    /// scoring work, mirrored by the server's `/v1` `QueryRequest` schema.
    /// Defaults to the NM measure with no index; see [`ScoreRequest`].
    pub fn query<'q>(&'q self, batch: &'q [Pattern]) -> ScoreRequest<'q, 'a> {
        ScoreRequest {
            scorer: self,
            batch,
            measure: Measure::Nm,
            index: None,
        }
    }

    /// `NM(P)` over the whole dataset (Eq. 3 + 4 summed over `D`).
    pub fn nm(&self, pattern: &Pattern) -> f64 {
        self.score_batch(std::slice::from_ref(pattern))[0]
    }

    /// `NM(P)` for every pattern of `batch`, in order. One corridor-table
    /// build per shard (amortized across batches); shards are scored on
    /// scoped worker threads when the scorer was built with more than one.
    pub fn score_batch(&self, batch: &[Pattern]) -> Vec<f64> {
        self.run_batch(batch, BatchKind::Nm)
    }

    /// The *match* measure of Yang et al. \[14\]: `Σ_T max_window M(P,T')`
    /// — the expected number of (best-aligned) occurrences, without length
    /// normalization. Used by the baseline match miner.
    pub fn match_score(&self, pattern: &Pattern) -> f64 {
        self.score_batch_match(std::slice::from_ref(pattern))[0]
    }

    /// Match measure for every pattern of `batch`, in order.
    pub fn score_batch_match(&self, batch: &[Pattern]) -> Vec<f64> {
        self.run_batch(batch, BatchKind::Match)
    }

    fn run_batch(&self, batch: &[Pattern], kind: BatchKind) -> Vec<f64> {
        self.evaluations
            .set(self.evaluations.get() + batch.len() as u64);
        if batch.is_empty() {
            return Vec::new();
        }
        {
            let mut touched = self.touched.borrow_mut();
            for pattern in batch {
                touched.extend(pattern.cells().iter().copied());
            }
        }
        let mut shards = self.shards.borrow_mut();
        let core = self.core;
        let injected = self.panic_injection.take();
        let per_shard: Vec<Vec<Vec<f64>>> = if shards.len() == 1 {
            vec![core.score_shard(&mut shards[0], batch, kind)]
        } else {
            let joined: Vec<std::thread::Result<Vec<Vec<f64>>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .enumerate()
                    .map(|(i, shard)| {
                        let inject = injected == Some(i);
                        scope.spawn(move || {
                            if inject {
                                panic!("injected scorer fault (shard {i})");
                            }
                            core.score_shard(shard, batch, kind)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            // Graceful degradation: a worker panic must not poison the
            // batch. Drop the failed shard's (possibly half-built)
            // corridor tables and rescore that shard on this thread. The
            // rebuild and the reduction below are deterministic, so the
            // result stays bit-identical to a healthy run.
            joined
                .into_iter()
                .enumerate()
                .map(|(i, res)| match res {
                    Ok(contributions) => contributions,
                    Err(_) => {
                        self.degraded.set(self.degraded.get() + 1);
                        shards[i].reset();
                        core.score_shard(&mut shards[i], batch, kind)
                    }
                })
                .collect()
        };
        // Deterministic reduction: fold per-trajectory contributions in
        // ascending trajectory order — shards are contiguous and ordered,
        // so this is the exact sequential summation order.
        batch
            .iter()
            .enumerate()
            .map(|(p, _)| {
                let mut total = 0.0;
                for contributions in per_shard.iter() {
                    for &c in &contributions[p] {
                        total += c;
                    }
                }
                total
            })
            .collect()
    }

    /// The index-pruned batch path behind [`ScoreRequest::run`]: patterns
    /// whose bounding box provably misses every trajectory's probability
    /// corridor are resolved analytically (every position at the floor),
    /// with the same per-trajectory fold order as the dense path — so the
    /// returned scores are bit-identical to an unindexed run.
    fn run_indexed(
        &self,
        batch: &[Pattern],
        kind: BatchKind,
        index: &crate::index::PatternIndex,
    ) -> Vec<f64> {
        let near_mask = index.candidates(self.core.data, self.core.delta);
        if near_mask.iter().all(|&n| n) {
            return self.run_batch(batch, kind);
        }
        let near: Vec<Pattern> = batch
            .iter()
            .zip(&near_mask)
            .filter(|(_, &n)| n)
            .map(|(p, _)| p.clone())
            .collect();
        let far = (batch.len() - near.len()) as u64;
        let near_scores = self.run_batch(&near, kind);
        // Far patterns were still evaluated (analytically): charge them,
        // and record their cells like any scored pattern.
        self.evaluations.set(self.evaluations.get() + far);
        {
            let mut touched = self.touched.borrow_mut();
            for (pattern, &n) in batch.iter().zip(&near_mask) {
                if !n {
                    touched.extend(pattern.cells().iter().copied());
                }
            }
        }
        let lens: Vec<usize> = self
            .core
            .data
            .trajectories()
            .iter()
            .map(|t| t.len())
            .collect();
        let mut near_iter = near_scores.into_iter();
        batch
            .iter()
            .zip(&near_mask)
            .map(|(pattern, &n)| {
                if n {
                    near_iter.next().expect("one score per near pattern")
                } else {
                    far_fold(pattern.len(), &lens, kind, self.core.floor_log)
                }
            })
            .collect()
    }

    /// [`Scorer::score_batch`] with a sparse prefilter, bit-identical to
    /// it. The corridor scan this entry point pioneered is now how *every*
    /// batch is scored, so it no longer earns its keep as a separate path.
    #[deprecated(
        since = "0.6.0",
        note = "corridor skipping is the default for every batch; use `Scorer::query` (or `score_batch`)"
    )]
    pub fn score_batch_sparse(&self, batch: &[Pattern]) -> Vec<f64> {
        self.query(batch).run()
    }

    /// `NM(P, T)` for a single trajectory (Eq. 4); the floor value if the
    /// trajectory is shorter than the pattern.
    pub fn nm_in_trajectory(&self, pattern: &Pattern, traj_index: usize) -> f64 {
        assert!(
            traj_index < self.core.data.len(),
            "trajectory index out of range"
        );
        self.touched
            .borrow_mut()
            .extend(pattern.cells().iter().copied());
        let mut shards = self.shards.borrow_mut();
        let shard = shards
            .iter_mut()
            .find(|s| s.start <= traj_index && traj_index < s.end)
            .expect("shards cover every trajectory");
        self.core.build_shard(shard);
        let shard: &Shard = shard;
        let mut buf: Vec<&[f64]> = Vec::new();
        self.core
            .window_mean(shard, traj_index - shard.start, pattern.cells(), &mut buf)
    }

    /// `NM(P, T_i)` for every trajectory, in ascending trajectory order —
    /// the contribution-ledger hook used by the streaming layer
    /// (`trajstream`). Folding the returned values in order with `total +=
    /// c` reproduces [`Scorer::nm`] bit-for-bit (the reduction convention
    /// of DESIGN.md §5), and each value equals
    /// [`Scorer::nm_in_trajectory`] for that index.
    pub fn nm_contributions(&self, pattern: &Pattern) -> Vec<f64> {
        self.evaluations.set(self.evaluations.get() + 1);
        self.touched
            .borrow_mut()
            .extend(pattern.cells().iter().copied());
        let mut shards = self.shards.borrow_mut();
        let mut out = Vec::with_capacity(self.core.data.len());
        let mut buf: Vec<&[f64]> = Vec::new();
        for shard in shards.iter_mut() {
            self.core.build_shard(shard);
            let shard: &Shard = shard;
            for local in 0..shard.end - shard.start {
                out.push(
                    self.core
                        .window_mean(shard, local, pattern.cells(), &mut buf),
                );
            }
        }
        out
    }

    /// `NM` of a *gapped* pattern (§5): positions `cells` with
    /// `gaps[i] = (min, max)` wildcard snapshots allowed between positions
    /// `i` and `i+1`. Dynamic programming over each trajectory reusing the
    /// corridor tables; normalization is by the number of specified
    /// positions (wildcards contribute probability 1 and no normalization
    /// mass). Callers must pass `gaps.len() == cells.len()-1` with
    /// `min <= max` everywhere (debug-asserted).
    pub fn nm_gapped(&self, cells: &[CellId], gaps: &[(u8, u8)]) -> f64 {
        debug_assert_eq!(gaps.len() + 1, cells.len());
        debug_assert!(gaps.iter().all(|&(lo, hi)| lo <= hi));
        self.evaluations.set(self.evaluations.get() + 1);
        self.touched.borrow_mut().extend(cells.iter().copied());
        let m = cells.len();
        let min_span: usize = m + gaps.iter().map(|&(lo, _)| lo as usize).sum::<usize>();
        let mut total = 0.0;
        let mut shards = self.shards.borrow_mut();
        let mut buf: Vec<&[f64]> = Vec::new();
        for shard in shards.iter_mut() {
            self.core.build_shard(shard);
            let shard: &Shard = shard;
            for local in 0..shard.end - shard.start {
                let l = self.core.data.trajectories()[shard.start + local].len();
                if l < min_span {
                    total += self.core.floor_log;
                    continue;
                }
                let rows = &shard.rows[local];
                buf.clear();
                for c in cells {
                    match rows.get(c) {
                        Some(r) => buf.push(r),
                        None => buf.push(&shard.floor[..l]),
                    }
                }
                // dp[j]: best sum with the current position at snapshot j.
                let mut dp: Vec<f64> = buf[0].to_vec();
                for i in 1..m {
                    let (lo, hi) = gaps[i - 1];
                    let row = buf[i];
                    let mut next = vec![f64::NEG_INFINITY; l];
                    for (j, slot) in next.iter_mut().enumerate() {
                        let mut best_prev = f64::NEG_INFINITY;
                        for g in lo..=hi {
                            let offset = 1 + g as usize;
                            if j >= offset && dp[j - offset] > best_prev {
                                best_prev = dp[j - offset];
                            }
                        }
                        if best_prev > f64::NEG_INFINITY {
                            *slot = best_prev + row[j];
                        }
                    }
                    dp = next;
                }
                let best = dp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                total += if best.is_finite() {
                    best / m as f64
                } else {
                    self.core.floor_log
                };
            }
        }
        total
    }

    /// NM of every singular pattern, indexed by `CellId`. One sparse pass:
    /// memory `O(G + touched cells per trajectory)`, no table building.
    /// Runs sharded on the scorer's worker threads; the per-cell
    /// accumulations are applied in the exact order of the sequential
    /// pass, so results are bit-identical for every thread count.
    pub fn nm_all_singulars(&self) -> Vec<f64> {
        let g = self.core.grid.num_cells() as usize;
        let n = self.core.data.len() as f64;
        let mut totals = vec![self.core.floor_log * n; g];
        let shards = self.shards.borrow();
        let core = self.core;
        let injected = self.panic_injection.take();
        let per_shard: Vec<Vec<(u32, f64)>> = if shards.len() == 1 {
            vec![core.singular_updates(shards[0].start, shards[0].end)]
        } else {
            let ranges: Vec<(usize, usize)> = shards.iter().map(|s| (s.start, s.end)).collect();
            let joined: Vec<std::thread::Result<Vec<(u32, f64)>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .enumerate()
                    .map(|(i, &(start, end))| {
                        let inject = injected == Some(i);
                        scope.spawn(move || {
                            if inject {
                                panic!("injected scorer fault (shard {i})");
                            }
                            core.singular_updates(start, end)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            // Same degradation as `run_batch`: recompute a panicked
            // shard's updates sequentially; application order below is
            // unchanged, so the totals stay bit-identical.
            joined
                .into_iter()
                .zip(ranges)
                .map(|(res, (start, end))| match res {
                    Ok(updates) => updates,
                    Err(_) => {
                        self.degraded.set(self.degraded.get() + 1);
                        core.singular_updates(start, end)
                    }
                })
                .collect()
        };
        for updates in per_shard.iter() {
            for &(cell, b) in updates {
                totals[cell as usize] += b - self.core.floor_log;
            }
        }
        totals
    }

    /// Number of distinct cells referenced by pattern scorings so far —
    /// the demand-driven cache-size figure surfaced in [`ScorerStats`]
    /// (semantics unchanged from the per-cell row-cache era, so persisted
    /// snapshots stay byte-identical).
    pub fn cached_cells(&self) -> usize {
        self.touched.borrow().len()
    }

    /// Snapshot of this scorer's counters, for surfacing in mining output
    /// and server metrics.
    pub fn stats(&self) -> ScorerStats {
        ScorerStats {
            scorings: self.evaluations(),
            cached_cells: self.cached_cells() as u64,
            degraded_rescores: self.degraded_rescores(),
        }
    }
}

/// A batch scoring request under construction — the library-side mirror of
/// the server's `/v1` `QueryRequest`. Built by [`Scorer::query`];
/// configure with [`ScoreRequest::measure`] / [`ScoreRequest::with_index`]
/// and execute with [`ScoreRequest::run`]. Every configuration returns
/// scores bit-identical to the corresponding direct entry point.
#[derive(Debug, Clone, Copy)]
pub struct ScoreRequest<'q, 'a> {
    scorer: &'q Scorer<'a>,
    batch: &'q [Pattern],
    measure: Measure,
    index: Option<&'q crate::index::PatternIndex>,
}

impl<'q, 'a> ScoreRequest<'q, 'a> {
    /// Selects the measure to compute (default: [`Measure::Nm`]).
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }

    /// Attaches a [`PatternIndex`](crate::index::PatternIndex) built over
    /// *exactly this batch* (entry `i` ↔ `batch[i]`; debug-asserted).
    /// Patterns the index proves far from every trajectory resolve
    /// analytically; results are bit-identical with or without the index.
    pub fn with_index(mut self, index: &'q crate::index::PatternIndex) -> Self {
        debug_assert_eq!(
            index.len(),
            self.batch.len(),
            "index must be built over the scored batch"
        );
        self.index = Some(index);
        self
    }

    /// Executes the request, returning one score per batch pattern.
    pub fn run(self) -> Vec<f64> {
        let kind = match self.measure {
            Measure::Nm => BatchKind::Nm,
            Measure::Match => BatchKind::Match,
        };
        match self.index {
            // A misaligned index cannot be trusted; score unindexed.
            Some(index) if index.len() == self.batch.len() && !self.batch.is_empty() => {
                self.scorer.run_indexed(self.batch, kind, index)
            }
            _ => self.scorer.run_batch(self.batch, kind),
        }
    }
}

pub use crate::stats::ScorerStats;

/// Resolves a requested thread count: `0` means one per available CPU.
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Maximum over windows of the mean log probability (Eq. 3+4 for one
/// trajectory) over row slices — window sums accumulate position by
/// position and the best window strictly improves, the canonical fold
/// order every scoring path replicates. Returns `floor_log` if the
/// trajectory is shorter than the pattern.
fn best_window_mean_rows(rows: &[&[f64]], m: usize, floor_log: f64) -> f64 {
    let l = rows[0].len();
    if l < m {
        return floor_log;
    }
    let mut best = f64::NEG_INFINITY;
    for start in 0..=(l - m) {
        let mut sum = 0.0;
        for (j, row) in rows.iter().enumerate() {
            sum += row[start + j];
        }
        if sum > best {
            best = sum;
        }
    }
    best / m as f64
}

/// What [`best_window_mean_rows`] returns when every row entry is
/// `floor_log` (the trajectory never comes near any pattern cell): all
/// window sums are the same sequential fold of `m` floor terms, replicated
/// here addition by addition so the result is bit-identical to the dense
/// evaluation.
fn untouched_window_mean(m: usize, l: usize, floor_log: f64) -> f64 {
    if l < m {
        return floor_log;
    }
    let mut sum = 0.0;
    for _ in 0..m {
        sum += floor_log;
    }
    sum / m as f64
}

/// The whole-dataset fold for a pattern no trajectory comes near: per
/// trajectory the untouched window value, reduced in ascending trajectory
/// order — addition for addition what the dense path computes, so the
/// index-pruned path stays bit-identical.
fn far_fold(m: usize, lens: &[usize], kind: BatchKind, floor_log: f64) -> f64 {
    let mut total = 0.0;
    for &l in lens {
        let mean = untouched_window_mean(m, l, floor_log);
        total += match kind {
            BatchKind::Nm => mean,
            BatchKind::Match => (mean * m as f64).exp(),
        };
    }
    total
}

/// `log M(P, segment)` (Eq. 2 in log space) for an arbitrary snapshot
/// segment *outside* any dataset — used by the prediction module to test
/// whether a recent trajectory fragment "confirms" a pattern (or pattern
/// prefix, hence the cell-slice signature). Returns `None` if the segment
/// length differs from the number of cells.
pub fn log_match_segment(
    segment: &[SnapshotPoint],
    cells: &[trajgeo::CellId],
    grid: &Grid,
    delta: f64,
    min_prob: f64,
) -> Option<f64> {
    if segment.len() != cells.len() || cells.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for (sp, &cell) in segment.iter().zip(cells) {
        sum += prob_within_delta(sp.mean, sp.sigma, grid.center(cell), delta)
            .max(min_prob)
            .ln();
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::PatternIndex;
    use trajdata::Trajectory;
    use trajgeo::{BBox, Point2};

    /// 4×4 unit grid; helper building a dataset of identical L-to-R sweeps.
    fn setup(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    // Cells of row y=0.625 (third row, cy=2) are 8,9,10,11.

    #[test]
    fn nm_prefers_the_true_path() {
        let (data, grid) = setup(5, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let on_path = s.nm(&pat(&[8, 9, 10, 11]));
        let off_path = s.nm(&pat(&[0, 1, 2, 3]));
        assert!(
            on_path > off_path,
            "on-path {on_path} must beat off-path {off_path}"
        );
        // NM values are sums of log-probability means: never positive.
        assert!(on_path <= 0.0);
    }

    #[test]
    fn nm_scales_linearly_with_dataset_size() {
        let (d1, grid) = setup(1, 0.05);
        let (d3, _) = setup(3, 0.05);
        let p = pat(&[8, 9]);
        let nm1 = Scorer::new(&d1, &grid, 0.1, 1e-12).nm(&p);
        let nm3 = Scorer::new(&d3, &grid, 0.1, 1e-12).nm(&p);
        assert!((nm3 - 3.0 * nm1).abs() < 1e-9);
    }

    #[test]
    fn nm_uses_best_window() {
        // Pattern (9,10) occurs in the middle of the sweep; NM must pick
        // that window rather than the first.
        let (data, grid) = setup(1, 0.02);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[9, 10]);
        let nm = s.nm(&p);
        // Compare against manual window enumeration via nm_in_trajectory.
        assert!((s.nm_in_trajectory(&p, 0) - nm).abs() < 1e-12);
        // The best window should be nearly perfect: cells 9,10 sit exactly
        // under snapshots 1,2, and ±0.1 around a cell center with σ=0.02
        // captures almost all mass.
        assert!(nm > (0.99f64).ln(), "nm = {nm}");
    }

    #[test]
    fn too_short_trajectory_contributes_floor() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let short: Dataset = vec![Trajectory::from_exact([Point2::new(0.125, 0.625)])]
            .into_iter()
            .collect();
        let s = Scorer::new(&short, &grid, 0.1, 1e-12);
        let nm = s.nm(&pat(&[8, 9]));
        assert!((nm - (1e-12f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn probability_floor_bounds_nm() {
        let (data, grid) = setup(2, 0.01);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        // A pattern in the far corner: every position hits the floor.
        let nm = s.nm(&pat(&[15, 15, 15]));
        let floor_nm = 2.0 * (1e-12f64).ln();
        assert!((nm - floor_nm).abs() < 1e-6, "nm = {nm}");
    }

    #[test]
    fn match_score_counts_expected_occurrences() {
        let (data, grid) = setup(10, 0.01);
        let s = Scorer::new(&data, &grid, 0.12, 1e-12);
        // Each of the 10 trajectories matches (8,9) nearly perfectly.
        let m = s.match_score(&pat(&[8, 9]));
        assert!(m > 9.0 && m <= 10.0, "match = {m}");
        // The off-path pattern matches essentially never.
        assert!(s.match_score(&pat(&[4, 5])) < 1.0);
    }

    #[test]
    fn match_is_antimonotone_under_extension() {
        // The Apriori property holds for match (it fails for NM) — spot
        // check here; the property test covers random data.
        let (data, grid) = setup(6, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let m2 = s.match_score(&pat(&[8, 9]));
        let m3 = s.match_score(&pat(&[8, 9, 10]));
        let m4 = s.match_score(&pat(&[8, 9, 10, 11]));
        assert!(m2 >= m3 && m3 >= m4, "{m2} >= {m3} >= {m4} violated");
    }

    #[test]
    fn singular_pass_agrees_with_direct_scoring() {
        let (data, grid) = setup(4, 0.07);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let all = s.nm_all_singulars();
        for cell in grid.cells() {
            let direct = s.nm(&Pattern::singular(cell));
            assert!(
                (all[cell.index()] - direct).abs() < 1e-6,
                "cell {cell}: sparse {} vs direct {direct}",
                all[cell.index()]
            );
        }
    }

    #[test]
    fn evaluation_counter_and_cache_grow() {
        let (data, grid) = setup(2, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        assert_eq!(s.evaluations(), 0);
        s.nm(&pat(&[8, 9]));
        s.nm(&pat(&[8, 9]));
        assert_eq!(s.evaluations(), 2);
        assert_eq!(s.cached_cells(), 2);
    }

    #[test]
    fn log_match_segment_matches_pattern_length_only() {
        let (data, grid) = setup(1, 0.05);
        let seg = &data.trajectories()[0].points()[..2];
        let p2 = pat(&[8, 9]);
        let p3 = pat(&[8, 9, 10]);
        assert!(log_match_segment(seg, p2.cells(), &grid, 0.1, 1e-12).is_some());
        assert!(log_match_segment(seg, p3.cells(), &grid, 0.1, 1e-12).is_none());
        // The well-aligned segment has high probability (σ=0.05, δ=0.1:
        // each axis captures ±2σ ≈ 0.954, so each position ≈ 0.911 and the
        // two-position product ≈ 0.83).
        let lm = log_match_segment(seg, p2.cells(), &grid, 0.1, 1e-12).unwrap();
        assert!(lm > (0.8f64).ln(), "lm = {lm}");
    }

    #[test]
    fn nm_in_trajectory_bounds_nm() {
        // NM(P) = Σ_T NM(P,T): verify the identity.
        let (data, grid) = setup(3, 0.06);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[8, 9, 10]);
        let total: f64 = (0..data.len()).map(|i| s.nm_in_trajectory(&p, i)).sum();
        assert!((total - s.nm(&p)).abs() < 1e-9);
    }

    #[test]
    fn nm_contributions_fold_to_nm() {
        let (data, grid) = setup(24, 0.06);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[8, 9, 10]);
        let contribs = s.nm_contributions(&p);
        assert_eq!(contribs.len(), data.len());
        for (i, &c) in contribs.iter().enumerate() {
            assert_eq!(c.to_bits(), s.nm_in_trajectory(&p, i).to_bits());
        }
        let mut total = 0.0;
        for &c in &contribs {
            total += c;
        }
        assert_eq!(total.to_bits(), s.nm(&p).to_bits());
        // Same values from a sharded scorer.
        let par = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 3);
        for (a, b) in contribs.iter().zip(par.nm_contributions(&p)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn score_batch_matches_one_at_a_time() {
        let (data, grid) = setup(7, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let batch = [pat(&[8, 9]), pat(&[9, 10, 11]), pat(&[0, 1]), pat(&[8, 9])];
        let batched = s.score_batch(&batch);
        let fresh = Scorer::new(&data, &grid, 0.1, 1e-12);
        for (p, &b) in batch.iter().zip(&batched) {
            assert_eq!(fresh.nm(p).to_bits(), b.to_bits());
        }
        // One evaluation is charged per pattern, duplicates included.
        assert_eq!(s.evaluations(), 4);
    }

    #[test]
    #[allow(deprecated)]
    fn sparse_batch_is_bit_identical_to_dense() {
        // Mix of on-corridor, partially-near and far patterns, plus a
        // trajectory shorter than some patterns; a larger σ widens the
        // corridor so "near but low" cells are exercised too.
        let (data5, grid) = setup(5, 0.07);
        let mut all = data5.trajectories().to_vec();
        all.push(Trajectory::from_exact([Point2::new(0.125, 0.625)]));
        let data: Dataset = all.into_iter().collect();
        let batch = [
            pat(&[8, 9, 10, 11]),
            pat(&[8, 9]),
            pat(&[0, 1, 2]),
            pat(&[3, 9]),
            pat(&[15]),
            pat(&[12, 13, 14, 15]),
        ];
        let dense = Scorer::new(&data, &grid, 0.1, 1e-12).score_batch(&batch);
        let sparse = Scorer::new(&data, &grid, 0.1, 1e-12).score_batch_sparse(&batch);
        for (p, (d, s)) in batch.iter().zip(dense.iter().zip(&sparse)) {
            assert_eq!(d.to_bits(), s.to_bits(), "pattern {p:?}: {d} vs {s}");
        }
    }

    #[test]
    fn query_builder_matches_direct_entry_points() {
        let (data, grid) = setup(9, 0.05);
        let batch = [pat(&[8, 9]), pat(&[0, 1, 2]), pat(&[15]), pat(&[9, 10])];
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let via_builder = s.query(&batch).run();
        let direct = Scorer::new(&data, &grid, 0.1, 1e-12).score_batch(&batch);
        for (a, b) in via_builder.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let via_builder = s.query(&batch).measure(Measure::Match).run();
        let direct = Scorer::new(&data, &grid, 0.1, 1e-12).score_batch_match(&batch);
        for (a, b) in via_builder.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn indexed_query_is_bit_identical_and_charges_every_pattern() {
        // Far patterns (bottom row 12..16 vs data on row 8..12) take the
        // analytic path; scores and evaluation counts must not change.
        let (data, grid) = setup(10, 0.04);
        let batch = [
            pat(&[8, 9, 10]),
            pat(&[12, 13]),
            pat(&[15]),
            pat(&[8, 9]),
            pat(&[0, 1, 2, 3]),
        ];
        let index = PatternIndex::build(&batch, &grid);
        let plain = Scorer::new(&data, &grid, 0.1, 1e-12);
        let want = plain.score_batch(&batch);
        let indexed = Scorer::new(&data, &grid, 0.1, 1e-12);
        let got = indexed.query(&batch).with_index(&index).run();
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
        assert_eq!(indexed.evaluations(), plain.evaluations());
        assert_eq!(indexed.cached_cells(), plain.cached_cells());
        // Match measure through the same indexed path.
        let want = plain.score_batch_match(&batch);
        let got = indexed
            .query(&batch)
            .measure(Measure::Match)
            .with_index(&index)
            .run();
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn parallel_scores_are_bit_identical() {
        // 4 workers over 32 trajectories: both measures, every pattern,
        // down to the last bit. (The dedicated proptest covers random
        // data; this is the deterministic spot check.)
        let (data, grid) = setup(32, 0.05);
        let seq = Scorer::new(&data, &grid, 0.1, 1e-12);
        let par = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        assert_eq!(par.threads(), 4);
        let batch = [pat(&[8, 9, 10]), pat(&[0, 1]), pat(&[15]), pat(&[8, 9])];
        for (s, p) in seq.score_batch(&batch).iter().zip(par.score_batch(&batch)) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        for (s, p) in seq
            .score_batch_match(&batch)
            .iter()
            .zip(par.score_batch_match(&batch))
        {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        for (s, p) in seq.nm_all_singulars().iter().zip(par.nm_all_singulars()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        assert_eq!(
            seq.nm_gapped(&[CellId(8), CellId(10)], &[(0, 2)]).to_bits(),
            par.nm_gapped(&[CellId(8), CellId(10)], &[(0, 2)]).to_bits()
        );
    }

    #[test]
    fn thread_count_zero_means_auto() {
        let (data, grid) = setup(2, 0.05);
        let s = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 0);
        assert!(s.threads() >= 1);
    }

    #[test]
    fn worker_panic_degrades_to_identical_scores() {
        let (data, grid) = setup(32, 0.05);
        let healthy = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        let faulty = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        assert_eq!(faulty.num_shards(), 4);
        let batch = [pat(&[8, 9, 10]), pat(&[0, 1]), pat(&[15])];
        let want = healthy.score_batch(&batch);
        faulty.inject_panic_next_batch(2);
        let got = faulty.score_batch(&batch);
        assert_eq!(faulty.degraded_rescores(), 1);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
        // The injection is consumed: the next batch runs healthy.
        let again = faulty.score_batch(&batch);
        assert_eq!(faulty.degraded_rescores(), 1);
        for (w, g) in want.iter().zip(&again) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn singular_pass_survives_worker_panic() {
        let (data, grid) = setup(32, 0.05);
        let healthy = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        let faulty = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        let want = healthy.nm_all_singulars();
        faulty.inject_panic_next_batch(0);
        let got = faulty.nm_all_singulars();
        assert_eq!(faulty.degraded_rescores(), 1);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn injection_on_single_shard_scorer_is_ignored() {
        let (data, grid) = setup(4, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        assert_eq!(s.num_shards(), 1);
        s.inject_panic_next_batch(0);
        let nm = s.nm(&pat(&[8, 9]));
        assert!(nm.is_finite());
        assert_eq!(s.degraded_rescores(), 0);
    }
}
