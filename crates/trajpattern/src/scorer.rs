//! Computing match and normalized match (Eq. 2–4 of the paper).
//!
//! Scoring a pattern against the dataset is the dominant cost of mining
//! (the paper's complexity analysis charges `O(MN)` per pattern). The
//! [`Scorer`] therefore:
//!
//! - lazily caches, per grid cell, the table of per-snapshot log
//!   probabilities `ln Prob(l, σ, center(cell), δ)` the first time a cell
//!   appears in a scored pattern (patterns reuse few distinct cells, so the
//!   cache stays small);
//! - computes all `G` singular-pattern NMs in one *sparse* streaming pass
//!   ([`Scorer::nm_all_singulars`]) without materializing the `G × ΣL`
//!   table: a snapshot only gives non-floor probability to cells within
//!   `δ + 8σ` of its mean;
//! - scores whole candidate *batches* ([`Scorer::score_batch`]) by
//!   partitioning trajectories into contiguous shards, evaluating shards on
//!   scoped worker threads, and reducing the per-trajectory `NM(P, T)`
//!   contributions in ascending trajectory order — so the result is
//!   bit-identical to the sequential fold for every thread count (the
//!   determinism convention in DESIGN.md §5).
//!
//! Internally the scorer is split into a `Send + Sync` read-only core
//! ([`ScorerCore`]: dataset/grid/δ) shared by all workers, and per-shard
//! mutable state (the shard's slice of every cell-row cache), so the
//! parallel path needs no locks and no `unsafe`.
//!
//! Per-position probabilities are clamped below by `min_prob` so `log M`
//! stays finite; DESIGN.md §5 explains why this preserves the min-max
//! property exactly.

use crate::pattern::Pattern;
use std::cell::{Cell, RefCell};
use trajdata::{Dataset, SnapshotPoint};
use trajgeo::fxhash::{FxHashMap, FxHashSet};
use trajgeo::stats::prob_within_delta;
use trajgeo::{CellId, Grid};

/// Below this many trajectories the parallel path is all overhead; scoring
/// falls back to the single-shard loop (results are identical either way).
const MIN_TRAJECTORIES_PER_SHARD: usize = 8;

/// The read-only half of the scorer: everything workers share. Contains
/// only borrows of immutable data and plain floats, so it is `Send + Sync`
/// by construction and can be captured by scoped threads.
#[derive(Debug, Clone, Copy)]
struct ScorerCore<'a> {
    data: &'a Dataset,
    grid: &'a Grid,
    delta: f64,
    min_prob: f64,
    floor_log: f64,
}

impl<'a> ScorerCore<'a> {
    /// `ln(max(Prob(l, σ, center(cell), δ), min_prob))` for one snapshot.
    #[inline]
    fn log_prob(&self, sp: &SnapshotPoint, cell: CellId) -> f64 {
        prob_within_delta(sp.mean, sp.sigma, self.grid.center(cell), self.delta)
            .max(self.min_prob)
            .ln()
    }

    /// Fills `shard`'s row cache for every cell of `cells` (rows cover only
    /// the shard's trajectory range, indexed locally).
    fn ensure_cached(&self, shard: &mut Shard, cells: &[CellId]) {
        for &cell in cells {
            if shard.rows.contains_key(&cell) {
                continue;
            }
            let per_traj: Vec<Box<[f64]>> = self.data.trajectories()[shard.start..shard.end]
                .iter()
                .map(|t| {
                    t.points()
                        .iter()
                        .map(|sp| self.log_prob(sp, cell))
                        .collect::<Vec<f64>>()
                        .into_boxed_slice()
                })
                .collect();
            shard.rows.insert(cell, per_traj);
        }
    }

    /// Per-trajectory contributions of every pattern in `batch` over one
    /// shard, in (pattern, ascending local trajectory) order.
    fn score_shard(&self, shard: &mut Shard, batch: &[Pattern], kind: BatchKind) -> Vec<Vec<f64>> {
        batch
            .iter()
            .map(|pattern| {
                self.ensure_cached(shard, pattern.cells());
                let cell_rows: Vec<&Vec<Box<[f64]>>> = pattern
                    .cells()
                    .iter()
                    .map(|c| shard.rows.get(c).expect("ensured above"))
                    .collect();
                let m = pattern.len();
                (0..shard.end - shard.start)
                    .map(|local| {
                        let mean = best_window_mean(&cell_rows, local, m, self.floor_log);
                        match kind {
                            BatchKind::Nm => mean,
                            // best window *sum* (not mean); the match
                            // contribution is its exp.
                            BatchKind::Match => (mean * m as f64).exp(),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The sparse singular-NM pass over one shard: for each trajectory (in
    /// ascending order) the `(cell, best log-prob)` updates it produces, in
    /// the exact order the sequential pass would apply them.
    fn singular_updates(&self, start: usize, end: usize) -> Vec<(u32, f64)> {
        let mut updates = Vec::new();
        let mut best: FxHashMap<u32, f64> = FxHashMap::default();
        for traj in &self.data.trajectories()[start..end] {
            best.clear();
            for sp in traj.points() {
                let radius = self.delta + 8.0 * sp.sigma;
                for cell in self.grid.cells_within(sp.mean, radius) {
                    let lp = self.log_prob(sp, cell);
                    if lp > self.floor_log {
                        let e = best.entry(cell.0).or_insert(f64::NEG_INFINITY);
                        if lp > *e {
                            *e = lp;
                        }
                    }
                }
            }
            for (&cell, &b) in best.iter() {
                updates.push((cell, b));
            }
        }
        updates
    }
}

/// Which measure a batch computes.
#[derive(Debug, Clone, Copy)]
enum BatchKind {
    /// Normalized match: mean log probability of the best window (Eq. 3+4).
    Nm,
    /// The match measure of Yang et al. \[14\]: expected best-window
    /// occurrence count.
    Match,
}

/// One worker's mutable state: a contiguous trajectory range and the
/// shard-local slice of every cell-row cache (rows indexed by
/// `trajectory_index - start`).
#[derive(Debug)]
struct Shard {
    start: usize,
    end: usize,
    rows: FxHashMap<CellId, Vec<Box<[f64]>>>,
}

/// Pattern scoring engine over one dataset/grid/δ configuration.
///
/// Construct with [`Scorer::new`] for the sequential engine or
/// [`Scorer::with_threads`] for the deterministic parallel one; both
/// produce bit-identical scores (see the module docs).
pub struct Scorer<'a> {
    core: ScorerCore<'a>,
    threads: usize,
    shards: RefCell<Vec<Shard>>,
    evaluations: Cell<u64>,
    degraded: Cell<u64>,
    panic_injection: Cell<Option<usize>>,
}

impl<'a> std::fmt::Debug for Scorer<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scorer")
            .field("trajectories", &self.core.data.len())
            .field("grid_cells", &self.core.grid.num_cells())
            .field("delta", &self.core.delta)
            .field("min_prob", &self.core.min_prob)
            .field("threads", &self.threads)
            .field("cached_cells", &self.cached_cells())
            .finish()
    }
}

impl<'a> Scorer<'a> {
    /// Creates a sequential (single-shard) scorer. `min_prob` must be in
    /// `(0, 1)` (validated by `MiningParams`; debug-asserted here).
    pub fn new(data: &'a Dataset, grid: &'a Grid, delta: f64, min_prob: f64) -> Scorer<'a> {
        Scorer::with_threads(data, grid, delta, min_prob, 1)
    }

    /// Creates a scorer that scores batches on `threads` worker threads
    /// (`0` = one per available CPU). Scores are bit-identical to the
    /// sequential scorer for every thread count: trajectories are split
    /// into contiguous shards and per-trajectory contributions are reduced
    /// in ascending trajectory order.
    pub fn with_threads(
        data: &'a Dataset,
        grid: &'a Grid,
        delta: f64,
        min_prob: f64,
        threads: usize,
    ) -> Scorer<'a> {
        debug_assert!(min_prob > 0.0 && min_prob < 1.0);
        debug_assert!(delta > 0.0);
        let threads = effective_threads(threads);
        // Never split below MIN_TRAJECTORIES_PER_SHARD per worker: tiny
        // shards cost more in spawn/cache duplication than they win.
        let shard_count = (data.len() / MIN_TRAJECTORIES_PER_SHARD).clamp(1, threads);
        let n = data.len();
        let shards = (0..shard_count)
            .map(|s| Shard {
                start: n * s / shard_count,
                end: n * (s + 1) / shard_count,
                rows: FxHashMap::default(),
            })
            .collect();
        Scorer {
            core: ScorerCore {
                data,
                grid,
                delta,
                min_prob,
                floor_log: min_prob.ln(),
            },
            threads,
            shards: RefCell::new(shards),
            evaluations: Cell::new(0),
            degraded: Cell::new(0),
            panic_injection: Cell::new(None),
        }
    }

    /// The dataset being scored.
    #[inline]
    pub fn data(&self) -> &'a Dataset {
        self.core.data
    }

    /// The grid defining pattern positions.
    #[inline]
    pub fn grid(&self) -> &'a Grid {
        self.core.grid
    }

    /// The indifference distance δ.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.core.delta
    }

    /// `ln(min_prob)` — the per-position contribution floor, and also the
    /// NM a pattern receives from a trajectory it cannot fit in.
    #[inline]
    pub fn floor_log(&self) -> f64 {
        self.core.floor_log
    }

    /// The worker-thread count this scorer was built with (≥ 1).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of pattern scorings performed so far (NM or match).
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// How many worker-shard panics were absorbed by rescoring the failed
    /// shard sequentially (see the module docs on graceful degradation).
    /// `0` in a healthy run.
    #[inline]
    pub fn degraded_rescores(&self) -> u64 {
        self.degraded.get()
    }

    /// Number of trajectory shards this scorer partitions work into.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.borrow().len()
    }

    /// Fault-injection hook: make the worker for shard `shard` panic during
    /// the next multi-shard batch, exercising the degradation path (the
    /// shard is then rescored sequentially and counted by
    /// [`Scorer::degraded_rescores`]). Consumed by the next batch; ignored
    /// when the scorer runs single-sharded (there is no worker thread to
    /// isolate). Testing aid — never set in production paths.
    pub fn inject_panic_next_batch(&self, shard: usize) {
        self.panic_injection.set(Some(shard));
    }

    /// `NM(P)` over the whole dataset (Eq. 3 + 4 summed over `D`).
    pub fn nm(&self, pattern: &Pattern) -> f64 {
        self.score_batch(std::slice::from_ref(pattern))[0]
    }

    /// `NM(P)` for every pattern of `batch`, in order. One cache-fill pass
    /// per shard; shards are scored on scoped worker threads when the
    /// scorer was built with more than one.
    pub fn score_batch(&self, batch: &[Pattern]) -> Vec<f64> {
        self.run_batch(batch, BatchKind::Nm)
    }

    /// The *match* measure of Yang et al. \[14\]: `Σ_T max_window M(P,T')`
    /// — the expected number of (best-aligned) occurrences, without length
    /// normalization. Used by the baseline match miner.
    pub fn match_score(&self, pattern: &Pattern) -> f64 {
        self.score_batch_match(std::slice::from_ref(pattern))[0]
    }

    /// Match measure for every pattern of `batch`, in order.
    pub fn score_batch_match(&self, batch: &[Pattern]) -> Vec<f64> {
        self.run_batch(batch, BatchKind::Match)
    }

    fn run_batch(&self, batch: &[Pattern], kind: BatchKind) -> Vec<f64> {
        self.evaluations
            .set(self.evaluations.get() + batch.len() as u64);
        if batch.is_empty() {
            return Vec::new();
        }
        let mut shards = self.shards.borrow_mut();
        let core = self.core;
        let injected = self.panic_injection.take();
        let per_shard: Vec<Vec<Vec<f64>>> = if shards.len() == 1 {
            vec![core.score_shard(&mut shards[0], batch, kind)]
        } else {
            let joined: Vec<std::thread::Result<Vec<Vec<f64>>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter_mut()
                    .enumerate()
                    .map(|(i, shard)| {
                        let inject = injected == Some(i);
                        scope.spawn(move || {
                            if inject {
                                panic!("injected scorer fault (shard {i})");
                            }
                            core.score_shard(shard, batch, kind)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            // Graceful degradation: a worker panic must not poison the
            // batch. Drop the failed shard's (possibly half-built) row
            // cache and rescore that shard on this thread. The reduction
            // below is unchanged, so the result stays bit-identical to a
            // healthy run.
            joined
                .into_iter()
                .enumerate()
                .map(|(i, res)| match res {
                    Ok(contributions) => contributions,
                    Err(_) => {
                        self.degraded.set(self.degraded.get() + 1);
                        shards[i].rows.clear();
                        core.score_shard(&mut shards[i], batch, kind)
                    }
                })
                .collect()
        };
        // Deterministic reduction: fold per-trajectory contributions in
        // ascending trajectory order — shards are contiguous and ordered,
        // so this is the exact sequential summation order.
        batch
            .iter()
            .enumerate()
            .map(|(p, _)| {
                let mut total = 0.0;
                for contributions in per_shard.iter() {
                    for &c in &contributions[p] {
                        total += c;
                    }
                }
                total
            })
            .collect()
    }

    /// [`Scorer::score_batch`] with a sparse prefilter, bit-identical to
    /// it: per trajectory, only cells within `δ + 8σ` of some snapshot can
    /// receive above-floor probability (the same corridor invariant
    /// [`Scorer::nm_all_singulars`] is built on), so a pattern touching
    /// none of them contributes a constant depending only on the pattern
    /// and trajectory lengths — no probability rows are computed for it.
    /// Runs sequentially; it exists for workloads where most of the batch
    /// is far from most of the data, like the streaming layer's ledger
    /// delta update against one arriving trajectory, where it turns an
    /// `O(cells × ΣL)` pass into one over the corridor only.
    pub fn score_batch_sparse(&self, batch: &[Pattern]) -> Vec<f64> {
        self.evaluations
            .set(self.evaluations.get() + batch.len() as u64);
        let core = self.core;
        let mut totals = vec![0.0; batch.len()];
        // Per-trajectory probability rows for corridor cells only, built
        // straight from the corridor scan (entries the scan does not reach
        // are the floor exactly, by the invariant above). Cells with no
        // above-floor entry share one all-floor row.
        let mut rows: FxHashMap<CellId, Box<[f64]>> = FxHashMap::default();
        let mut floor_row: Vec<f64> = Vec::new();
        for traj in core.data.trajectories() {
            let l = traj.len();
            floor_row.clear();
            floor_row.resize(l, core.floor_log);
            rows.clear();
            for (t, sp) in traj.points().iter().enumerate() {
                let radius = core.delta + 8.0 * sp.sigma;
                for cell in core.grid.cells_within(sp.mean, radius) {
                    let lp = core.log_prob(sp, cell);
                    if lp > core.floor_log {
                        let row = rows
                            .entry(cell)
                            .or_insert_with(|| vec![core.floor_log; l].into_boxed_slice());
                        row[t] = lp;
                    }
                }
            }
            // Fold order per pattern is still ascending trajectory, so the
            // running totals match `score_batch`'s reduction.
            let mut cell_rows: Vec<&[f64]> = Vec::new();
            for (pattern, total) in batch.iter().zip(totals.iter_mut()) {
                let m = pattern.len();
                cell_rows.clear();
                let mut near = false;
                for c in pattern.cells() {
                    match rows.get(c) {
                        Some(r) => {
                            near = true;
                            cell_rows.push(r);
                        }
                        None => cell_rows.push(&floor_row),
                    }
                }
                *total += if near {
                    best_window_mean_rows(&cell_rows, m, core.floor_log)
                } else {
                    untouched_window_mean(m, l, core.floor_log)
                };
            }
        }
        totals
    }

    /// `NM(P, T)` for a single trajectory (Eq. 4); the floor value if the
    /// trajectory is shorter than the pattern.
    pub fn nm_in_trajectory(&self, pattern: &Pattern, traj_index: usize) -> f64 {
        assert!(
            traj_index < self.core.data.len(),
            "trajectory index out of range"
        );
        let mut shards = self.shards.borrow_mut();
        let shard = shards
            .iter_mut()
            .find(|s| s.start <= traj_index && traj_index < s.end)
            .expect("shards cover every trajectory");
        self.core.ensure_cached(shard, pattern.cells());
        let cell_rows: Vec<&Vec<Box<[f64]>>> = pattern
            .cells()
            .iter()
            .map(|c| shard.rows.get(c).expect("ensured above"))
            .collect();
        best_window_mean(
            &cell_rows,
            traj_index - shard.start,
            pattern.len(),
            self.core.floor_log,
        )
    }

    /// `NM(P, T_i)` for every trajectory, in ascending trajectory order —
    /// the contribution-ledger hook used by the streaming layer
    /// (`trajstream`). Folding the returned values in order with `total +=
    /// c` reproduces [`Scorer::nm`] bit-for-bit (the reduction convention
    /// of DESIGN.md §5), and each value equals
    /// [`Scorer::nm_in_trajectory`] for that index.
    pub fn nm_contributions(&self, pattern: &Pattern) -> Vec<f64> {
        self.evaluations.set(self.evaluations.get() + 1);
        let mut shards = self.shards.borrow_mut();
        let mut out = Vec::with_capacity(self.core.data.len());
        for shard in shards.iter_mut() {
            self.core.ensure_cached(shard, pattern.cells());
            let cell_rows: Vec<&Vec<Box<[f64]>>> = pattern
                .cells()
                .iter()
                .map(|c| shard.rows.get(c).expect("ensured above"))
                .collect();
            for local in 0..shard.end - shard.start {
                out.push(best_window_mean(
                    &cell_rows,
                    local,
                    pattern.len(),
                    self.core.floor_log,
                ));
            }
        }
        out
    }

    /// `NM` of a *gapped* pattern (§5): positions `cells` with
    /// `gaps[i] = (min, max)` wildcard snapshots allowed between positions
    /// `i` and `i+1`. Dynamic programming over each trajectory reusing the
    /// per-cell probability row cache; normalization is by the number of
    /// specified positions (wildcards contribute probability 1 and no
    /// normalization mass). Callers must pass `gaps.len() == cells.len()-1`
    /// with `min <= max` everywhere (debug-asserted).
    pub fn nm_gapped(&self, cells: &[CellId], gaps: &[(u8, u8)]) -> f64 {
        debug_assert_eq!(gaps.len() + 1, cells.len());
        debug_assert!(gaps.iter().all(|&(lo, hi)| lo <= hi));
        self.evaluations.set(self.evaluations.get() + 1);
        let m = cells.len();
        let min_span: usize = m + gaps.iter().map(|&(lo, _)| lo as usize).sum::<usize>();
        let mut total = 0.0;
        let mut shards = self.shards.borrow_mut();
        for shard in shards.iter_mut() {
            self.core.ensure_cached(shard, cells);
            let cell_rows: Vec<&Vec<Box<[f64]>>> = cells
                .iter()
                .map(|c| shard.rows.get(c).expect("ensured above"))
                .collect();
            // `local` indexes every row in `cell_rows`, not just the first.
            #[allow(clippy::needless_range_loop)]
            for local in 0..shard.end - shard.start {
                let l = cell_rows[0][local].len();
                if l < min_span {
                    total += self.core.floor_log;
                    continue;
                }
                // dp[j]: best sum with the current position at snapshot j.
                let mut dp: Vec<f64> = cell_rows[0][local].to_vec();
                for i in 1..m {
                    let (lo, hi) = gaps[i - 1];
                    let row = &cell_rows[i][local];
                    let mut next = vec![f64::NEG_INFINITY; l];
                    for (j, slot) in next.iter_mut().enumerate() {
                        let mut best_prev = f64::NEG_INFINITY;
                        for g in lo..=hi {
                            let offset = 1 + g as usize;
                            if j >= offset && dp[j - offset] > best_prev {
                                best_prev = dp[j - offset];
                            }
                        }
                        if best_prev > f64::NEG_INFINITY {
                            *slot = best_prev + row[j];
                        }
                    }
                    dp = next;
                }
                let best = dp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                total += if best.is_finite() {
                    best / m as f64
                } else {
                    self.core.floor_log
                };
            }
        }
        total
    }

    /// NM of every singular pattern, indexed by `CellId`. One sparse pass:
    /// memory `O(G + touched cells per trajectory)`, no row caching. Runs
    /// sharded on the scorer's worker threads; the per-cell accumulations
    /// are applied in the exact order of the sequential pass, so results
    /// are bit-identical for every thread count.
    pub fn nm_all_singulars(&self) -> Vec<f64> {
        let g = self.core.grid.num_cells() as usize;
        let n = self.core.data.len() as f64;
        let mut totals = vec![self.core.floor_log * n; g];
        let shards = self.shards.borrow();
        let core = self.core;
        let injected = self.panic_injection.take();
        let per_shard: Vec<Vec<(u32, f64)>> = if shards.len() == 1 {
            vec![core.singular_updates(shards[0].start, shards[0].end)]
        } else {
            let ranges: Vec<(usize, usize)> = shards.iter().map(|s| (s.start, s.end)).collect();
            let joined: Vec<std::thread::Result<Vec<(u32, f64)>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .enumerate()
                    .map(|(i, &(start, end))| {
                        let inject = injected == Some(i);
                        scope.spawn(move || {
                            if inject {
                                panic!("injected scorer fault (shard {i})");
                            }
                            core.singular_updates(start, end)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
            // Same degradation as `run_batch`: recompute a panicked
            // shard's updates sequentially; application order below is
            // unchanged, so the totals stay bit-identical.
            joined
                .into_iter()
                .zip(ranges)
                .map(|(res, (start, end))| match res {
                    Ok(updates) => updates,
                    Err(_) => {
                        self.degraded.set(self.degraded.get() + 1);
                        core.singular_updates(start, end)
                    }
                })
                .collect()
        };
        for updates in per_shard.iter() {
            for &(cell, b) in updates {
                totals[cell as usize] += b - self.core.floor_log;
            }
        }
        totals
    }

    /// Number of distinct cells whose probability rows are cached (across
    /// all shards).
    pub fn cached_cells(&self) -> usize {
        let shards = self.shards.borrow();
        if shards.len() == 1 {
            return shards[0].rows.len();
        }
        let mut distinct: FxHashSet<CellId> = FxHashSet::default();
        for shard in shards.iter() {
            distinct.extend(shard.rows.keys().copied());
        }
        distinct.len()
    }

    /// Snapshot of this scorer's counters, for surfacing in mining output
    /// and server metrics.
    pub fn stats(&self) -> ScorerStats {
        ScorerStats {
            scorings: self.evaluations(),
            cached_cells: self.cached_cells() as u64,
            degraded_rescores: self.degraded_rescores(),
        }
    }
}

pub use crate::stats::ScorerStats;

/// Resolves a requested thread count: `0` means one per available CPU.
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Maximum over windows of the mean log probability (Eq. 3+4 for one
/// trajectory), given per-cell row tables. Returns `floor_log` if the
/// trajectory is shorter than the pattern.
fn best_window_mean(
    cell_rows: &[&Vec<Box<[f64]>>],
    traj_index: usize,
    m: usize,
    floor_log: f64,
) -> f64 {
    let l = cell_rows[0][traj_index].len();
    if l < m {
        return floor_log;
    }
    let mut best = f64::NEG_INFINITY;
    for start in 0..=(l - m) {
        let mut sum = 0.0;
        for (j, rows) in cell_rows.iter().enumerate() {
            sum += rows[traj_index][start + j];
        }
        if sum > best {
            best = sum;
        }
    }
    best / m as f64
}

/// [`best_window_mean`] over one trajectory's row slices directly — the
/// same arithmetic in the same order (window sums accumulate position by
/// position, best window strictly improves), so results are bit-identical.
fn best_window_mean_rows(rows: &[&[f64]], m: usize, floor_log: f64) -> f64 {
    let l = rows[0].len();
    if l < m {
        return floor_log;
    }
    let mut best = f64::NEG_INFINITY;
    for start in 0..=(l - m) {
        let mut sum = 0.0;
        for (j, row) in rows.iter().enumerate() {
            sum += row[start + j];
        }
        if sum > best {
            best = sum;
        }
    }
    best / m as f64
}

/// What [`best_window_mean`] returns when every row entry is `floor_log`
/// (the trajectory never comes near any pattern cell): all window sums are
/// the same sequential fold of `m` floor terms, replicated here addition
/// by addition so the result is bit-identical to the dense evaluation.
fn untouched_window_mean(m: usize, l: usize, floor_log: f64) -> f64 {
    if l < m {
        return floor_log;
    }
    let mut sum = 0.0;
    for _ in 0..m {
        sum += floor_log;
    }
    sum / m as f64
}

/// `log M(P, segment)` (Eq. 2 in log space) for an arbitrary snapshot
/// segment *outside* any dataset — used by the prediction module to test
/// whether a recent trajectory fragment "confirms" a pattern (or pattern
/// prefix, hence the cell-slice signature). Returns `None` if the segment
/// length differs from the number of cells.
pub fn log_match_segment(
    segment: &[SnapshotPoint],
    cells: &[trajgeo::CellId],
    grid: &Grid,
    delta: f64,
    min_prob: f64,
) -> Option<f64> {
    if segment.len() != cells.len() || cells.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for (sp, &cell) in segment.iter().zip(cells) {
        sum += prob_within_delta(sp.mean, sp.sigma, grid.center(cell), delta)
            .max(min_prob)
            .ln();
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::Trajectory;
    use trajgeo::{BBox, Point2};

    /// 4×4 unit grid; helper building a dataset of identical L-to-R sweeps.
    fn setup(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    // Cells of row y=0.625 (third row, cy=2) are 8,9,10,11.

    #[test]
    fn nm_prefers_the_true_path() {
        let (data, grid) = setup(5, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let on_path = s.nm(&pat(&[8, 9, 10, 11]));
        let off_path = s.nm(&pat(&[0, 1, 2, 3]));
        assert!(
            on_path > off_path,
            "on-path {on_path} must beat off-path {off_path}"
        );
        // NM values are sums of log-probability means: never positive.
        assert!(on_path <= 0.0);
    }

    #[test]
    fn nm_scales_linearly_with_dataset_size() {
        let (d1, grid) = setup(1, 0.05);
        let (d3, _) = setup(3, 0.05);
        let p = pat(&[8, 9]);
        let nm1 = Scorer::new(&d1, &grid, 0.1, 1e-12).nm(&p);
        let nm3 = Scorer::new(&d3, &grid, 0.1, 1e-12).nm(&p);
        assert!((nm3 - 3.0 * nm1).abs() < 1e-9);
    }

    #[test]
    fn nm_uses_best_window() {
        // Pattern (9,10) occurs in the middle of the sweep; NM must pick
        // that window rather than the first.
        let (data, grid) = setup(1, 0.02);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[9, 10]);
        let nm = s.nm(&p);
        // Compare against manual window enumeration via nm_in_trajectory.
        assert!((s.nm_in_trajectory(&p, 0) - nm).abs() < 1e-12);
        // The best window should be nearly perfect: cells 9,10 sit exactly
        // under snapshots 1,2, and ±0.1 around a cell center with σ=0.02
        // captures almost all mass.
        assert!(nm > (0.99f64).ln(), "nm = {nm}");
    }

    #[test]
    fn too_short_trajectory_contributes_floor() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let short: Dataset = vec![Trajectory::from_exact([Point2::new(0.125, 0.625)])]
            .into_iter()
            .collect();
        let s = Scorer::new(&short, &grid, 0.1, 1e-12);
        let nm = s.nm(&pat(&[8, 9]));
        assert!((nm - (1e-12f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn probability_floor_bounds_nm() {
        let (data, grid) = setup(2, 0.01);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        // A pattern in the far corner: every position hits the floor.
        let nm = s.nm(&pat(&[15, 15, 15]));
        let floor_nm = 2.0 * (1e-12f64).ln();
        assert!((nm - floor_nm).abs() < 1e-6, "nm = {nm}");
    }

    #[test]
    fn match_score_counts_expected_occurrences() {
        let (data, grid) = setup(10, 0.01);
        let s = Scorer::new(&data, &grid, 0.12, 1e-12);
        // Each of the 10 trajectories matches (8,9) nearly perfectly.
        let m = s.match_score(&pat(&[8, 9]));
        assert!(m > 9.0 && m <= 10.0, "match = {m}");
        // The off-path pattern matches essentially never.
        assert!(s.match_score(&pat(&[4, 5])) < 1.0);
    }

    #[test]
    fn match_is_antimonotone_under_extension() {
        // The Apriori property holds for match (it fails for NM) — spot
        // check here; the property test covers random data.
        let (data, grid) = setup(6, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let m2 = s.match_score(&pat(&[8, 9]));
        let m3 = s.match_score(&pat(&[8, 9, 10]));
        let m4 = s.match_score(&pat(&[8, 9, 10, 11]));
        assert!(m2 >= m3 && m3 >= m4, "{m2} >= {m3} >= {m4} violated");
    }

    #[test]
    fn singular_pass_agrees_with_direct_scoring() {
        let (data, grid) = setup(4, 0.07);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let all = s.nm_all_singulars();
        for cell in grid.cells() {
            let direct = s.nm(&Pattern::singular(cell));
            assert!(
                (all[cell.index()] - direct).abs() < 1e-6,
                "cell {cell}: sparse {} vs direct {direct}",
                all[cell.index()]
            );
        }
    }

    #[test]
    fn evaluation_counter_and_cache_grow() {
        let (data, grid) = setup(2, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        assert_eq!(s.evaluations(), 0);
        s.nm(&pat(&[8, 9]));
        s.nm(&pat(&[8, 9]));
        assert_eq!(s.evaluations(), 2);
        assert_eq!(s.cached_cells(), 2);
    }

    #[test]
    fn log_match_segment_matches_pattern_length_only() {
        let (data, grid) = setup(1, 0.05);
        let seg = &data.trajectories()[0].points()[..2];
        let p2 = pat(&[8, 9]);
        let p3 = pat(&[8, 9, 10]);
        assert!(log_match_segment(seg, p2.cells(), &grid, 0.1, 1e-12).is_some());
        assert!(log_match_segment(seg, p3.cells(), &grid, 0.1, 1e-12).is_none());
        // The well-aligned segment has high probability (σ=0.05, δ=0.1:
        // each axis captures ±2σ ≈ 0.954, so each position ≈ 0.911 and the
        // two-position product ≈ 0.83).
        let lm = log_match_segment(seg, p2.cells(), &grid, 0.1, 1e-12).unwrap();
        assert!(lm > (0.8f64).ln(), "lm = {lm}");
    }

    #[test]
    fn nm_in_trajectory_bounds_nm() {
        // NM(P) = Σ_T NM(P,T): verify the identity.
        let (data, grid) = setup(3, 0.06);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[8, 9, 10]);
        let total: f64 = (0..data.len()).map(|i| s.nm_in_trajectory(&p, i)).sum();
        assert!((total - s.nm(&p)).abs() < 1e-9);
    }

    #[test]
    fn nm_contributions_fold_to_nm() {
        let (data, grid) = setup(24, 0.06);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[8, 9, 10]);
        let contribs = s.nm_contributions(&p);
        assert_eq!(contribs.len(), data.len());
        for (i, &c) in contribs.iter().enumerate() {
            assert_eq!(c.to_bits(), s.nm_in_trajectory(&p, i).to_bits());
        }
        let mut total = 0.0;
        for &c in &contribs {
            total += c;
        }
        assert_eq!(total.to_bits(), s.nm(&p).to_bits());
        // Same values from a sharded scorer.
        let par = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 3);
        for (a, b) in contribs.iter().zip(par.nm_contributions(&p)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn score_batch_matches_one_at_a_time() {
        let (data, grid) = setup(7, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let batch = [pat(&[8, 9]), pat(&[9, 10, 11]), pat(&[0, 1]), pat(&[8, 9])];
        let batched = s.score_batch(&batch);
        let fresh = Scorer::new(&data, &grid, 0.1, 1e-12);
        for (p, &b) in batch.iter().zip(&batched) {
            assert_eq!(fresh.nm(p).to_bits(), b.to_bits());
        }
        // One evaluation is charged per pattern, duplicates included.
        assert_eq!(s.evaluations(), 4);
    }

    #[test]
    fn sparse_batch_is_bit_identical_to_dense() {
        // Mix of on-corridor, partially-near and far patterns, plus a
        // trajectory shorter than some patterns; a larger σ widens the
        // corridor so "near but low" cells are exercised too.
        let (data5, grid) = setup(5, 0.07);
        let mut all = data5.trajectories().to_vec();
        all.push(Trajectory::from_exact([Point2::new(0.125, 0.625)]));
        let data: Dataset = all.into_iter().collect();
        let batch = [
            pat(&[8, 9, 10, 11]),
            pat(&[8, 9]),
            pat(&[0, 1, 2]),
            pat(&[3, 9]),
            pat(&[15]),
            pat(&[12, 13, 14, 15]),
        ];
        let dense = Scorer::new(&data, &grid, 0.1, 1e-12).score_batch(&batch);
        let sparse = Scorer::new(&data, &grid, 0.1, 1e-12).score_batch_sparse(&batch);
        for (p, (d, s)) in batch.iter().zip(dense.iter().zip(&sparse)) {
            assert_eq!(d.to_bits(), s.to_bits(), "pattern {p:?}: {d} vs {s}");
        }
    }

    #[test]
    fn parallel_scores_are_bit_identical() {
        // 4 workers over 32 trajectories: both measures, every pattern,
        // down to the last bit. (The dedicated proptest covers random
        // data; this is the deterministic spot check.)
        let (data, grid) = setup(32, 0.05);
        let seq = Scorer::new(&data, &grid, 0.1, 1e-12);
        let par = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        assert_eq!(par.threads(), 4);
        let batch = [pat(&[8, 9, 10]), pat(&[0, 1]), pat(&[15]), pat(&[8, 9])];
        for (s, p) in seq.score_batch(&batch).iter().zip(par.score_batch(&batch)) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        for (s, p) in seq
            .score_batch_match(&batch)
            .iter()
            .zip(par.score_batch_match(&batch))
        {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        for (s, p) in seq.nm_all_singulars().iter().zip(par.nm_all_singulars()) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        assert_eq!(
            seq.nm_gapped(&[CellId(8), CellId(10)], &[(0, 2)]).to_bits(),
            par.nm_gapped(&[CellId(8), CellId(10)], &[(0, 2)]).to_bits()
        );
    }

    #[test]
    fn thread_count_zero_means_auto() {
        let (data, grid) = setup(2, 0.05);
        let s = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 0);
        assert!(s.threads() >= 1);
    }

    #[test]
    fn worker_panic_degrades_to_identical_scores() {
        let (data, grid) = setup(32, 0.05);
        let healthy = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        let faulty = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        assert_eq!(faulty.num_shards(), 4);
        let batch = [pat(&[8, 9, 10]), pat(&[0, 1]), pat(&[15])];
        let want = healthy.score_batch(&batch);
        faulty.inject_panic_next_batch(2);
        let got = faulty.score_batch(&batch);
        assert_eq!(faulty.degraded_rescores(), 1);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
        // The injection is consumed: the next batch runs healthy.
        let again = faulty.score_batch(&batch);
        assert_eq!(faulty.degraded_rescores(), 1);
        for (w, g) in want.iter().zip(&again) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn singular_pass_survives_worker_panic() {
        let (data, grid) = setup(32, 0.05);
        let healthy = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        let faulty = Scorer::with_threads(&data, &grid, 0.1, 1e-12, 4);
        let want = healthy.nm_all_singulars();
        faulty.inject_panic_next_batch(0);
        let got = faulty.nm_all_singulars();
        assert_eq!(faulty.degraded_rescores(), 1);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn injection_on_single_shard_scorer_is_ignored() {
        let (data, grid) = setup(4, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        assert_eq!(s.num_shards(), 1);
        s.inject_panic_next_batch(0);
        let nm = s.nm(&pat(&[8, 9]));
        assert!(nm.is_finite());
        assert_eq!(s.degraded_rescores(), 0);
    }
}
