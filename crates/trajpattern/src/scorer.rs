//! Computing match and normalized match (Eq. 2–4 of the paper).
//!
//! Scoring a pattern against the dataset is the dominant cost of mining
//! (the paper's complexity analysis charges `O(MN)` per pattern). The
//! [`Scorer`] therefore:
//!
//! - lazily caches, per grid cell, the full table of per-snapshot log
//!   probabilities `ln Prob(l, σ, center(cell), δ)` the first time a cell
//!   appears in a scored pattern (patterns reuse few distinct cells, so the
//!   cache stays small);
//! - computes all `G` singular-pattern NMs in one *sparse* streaming pass
//!   ([`Scorer::nm_all_singulars`]) without materializing the `G × ΣL`
//!   table: a snapshot only gives non-floor probability to cells within
//!   `δ + 8σ` of its mean.
//!
//! Per-position probabilities are clamped below by `min_prob` so `log M`
//! stays finite; DESIGN.md §5 explains why this preserves the min-max
//! property exactly.

use crate::pattern::Pattern;
use std::cell::{Cell, RefCell};
use trajdata::{Dataset, SnapshotPoint};
use trajgeo::fxhash::FxHashMap;
use trajgeo::stats::prob_within_delta;
use trajgeo::{CellId, Grid};

/// Pattern scoring engine over one dataset/grid/δ configuration.
pub struct Scorer<'a> {
    data: &'a Dataset,
    grid: &'a Grid,
    delta: f64,
    min_prob: f64,
    floor_log: f64,
    /// Per-cell cache: for each trajectory, the dense row of per-snapshot
    /// log probabilities.
    rows: RefCell<FxHashMap<CellId, Vec<Box<[f64]>>>>,
    evaluations: Cell<u64>,
}

impl<'a> std::fmt::Debug for Scorer<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scorer")
            .field("trajectories", &self.data.len())
            .field("grid_cells", &self.grid.num_cells())
            .field("delta", &self.delta)
            .field("min_prob", &self.min_prob)
            .field("cached_cells", &self.rows.borrow().len())
            .finish()
    }
}

impl<'a> Scorer<'a> {
    /// Creates a scorer. `min_prob` must be in `(0, 1)` (validated by
    /// `MiningParams`; debug-asserted here).
    pub fn new(data: &'a Dataset, grid: &'a Grid, delta: f64, min_prob: f64) -> Scorer<'a> {
        debug_assert!(min_prob > 0.0 && min_prob < 1.0);
        debug_assert!(delta > 0.0);
        Scorer {
            data,
            grid,
            delta,
            min_prob,
            floor_log: min_prob.ln(),
            rows: RefCell::new(FxHashMap::default()),
            evaluations: Cell::new(0),
        }
    }

    /// The dataset being scored.
    #[inline]
    pub fn data(&self) -> &'a Dataset {
        self.data
    }

    /// The grid defining pattern positions.
    #[inline]
    pub fn grid(&self) -> &'a Grid {
        self.grid
    }

    /// The indifference distance δ.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// `ln(min_prob)` — the per-position contribution floor, and also the
    /// NM a pattern receives from a trajectory it cannot fit in.
    #[inline]
    pub fn floor_log(&self) -> f64 {
        self.floor_log
    }

    /// Number of pattern scorings performed so far (NM or match).
    #[inline]
    pub fn evaluations(&self) -> u64 {
        self.evaluations.get()
    }

    /// `NM(P)` over the whole dataset (Eq. 3 + 4 summed over `D`).
    pub fn nm(&self, pattern: &Pattern) -> f64 {
        self.evaluations.set(self.evaluations.get() + 1);
        self.ensure_cached(pattern.cells());
        let rows = self.rows.borrow();
        let cell_rows: Vec<&Vec<Box<[f64]>>> = pattern
            .cells()
            .iter()
            .map(|c| rows.get(c).expect("ensured above"))
            .collect();
        let m = pattern.len();
        let mut total = 0.0;
        for ti in 0..self.data.len() {
            total += best_window_mean(&cell_rows, ti, m, self.floor_log);
        }
        total
    }

    /// `NM(P, T)` for a single trajectory (Eq. 4); the floor value if the
    /// trajectory is shorter than the pattern.
    pub fn nm_in_trajectory(&self, pattern: &Pattern, traj_index: usize) -> f64 {
        assert!(traj_index < self.data.len(), "trajectory index out of range");
        self.ensure_cached(pattern.cells());
        let rows = self.rows.borrow();
        let cell_rows: Vec<&Vec<Box<[f64]>>> = pattern
            .cells()
            .iter()
            .map(|c| rows.get(c).expect("ensured above"))
            .collect();
        best_window_mean(&cell_rows, traj_index, pattern.len(), self.floor_log)
    }

    /// The *match* measure of Yang et al. \[14\]: `Σ_T max_window M(P,T')`
    /// — the expected number of (best-aligned) occurrences, without length
    /// normalization. Used by the baseline match miner.
    pub fn match_score(&self, pattern: &Pattern) -> f64 {
        self.evaluations.set(self.evaluations.get() + 1);
        self.ensure_cached(pattern.cells());
        let rows = self.rows.borrow();
        let cell_rows: Vec<&Vec<Box<[f64]>>> = pattern
            .cells()
            .iter()
            .map(|c| rows.get(c).expect("ensured above"))
            .collect();
        let m = pattern.len();
        let mut total = 0.0;
        for ti in 0..self.data.len() {
            // best window *sum* (not mean); match contribution is its exp.
            let mean = best_window_mean(&cell_rows, ti, m, self.floor_log);
            total += (mean * m as f64).exp();
        }
        total
    }

    /// `NM` of a *gapped* pattern (§5): positions `cells` with
    /// `gaps[i] = (min, max)` wildcard snapshots allowed between positions
    /// `i` and `i+1`. Dynamic programming over each trajectory reusing the
    /// per-cell probability row cache; normalization is by the number of
    /// specified positions (wildcards contribute probability 1 and no
    /// normalization mass). Callers must pass `gaps.len() == cells.len()-1`
    /// with `min <= max` everywhere (debug-asserted).
    pub fn nm_gapped(&self, cells: &[CellId], gaps: &[(u8, u8)]) -> f64 {
        debug_assert_eq!(gaps.len() + 1, cells.len());
        debug_assert!(gaps.iter().all(|&(lo, hi)| lo <= hi));
        self.evaluations.set(self.evaluations.get() + 1);
        self.ensure_cached(cells);
        let rows = self.rows.borrow();
        let cell_rows: Vec<&Vec<Box<[f64]>>> = cells
            .iter()
            .map(|c| rows.get(c).expect("ensured above"))
            .collect();
        let m = cells.len();
        let min_span: usize =
            m + gaps.iter().map(|&(lo, _)| lo as usize).sum::<usize>();
        let mut total = 0.0;
        for ti in 0..self.data.len() {
            let l = cell_rows[0][ti].len();
            if l < min_span {
                total += self.floor_log;
                continue;
            }
            // dp[j]: best sum with the current position at snapshot j.
            let mut dp: Vec<f64> = cell_rows[0][ti].to_vec();
            for i in 1..m {
                let (lo, hi) = gaps[i - 1];
                let row = &cell_rows[i][ti];
                let mut next = vec![f64::NEG_INFINITY; l];
                for (j, slot) in next.iter_mut().enumerate() {
                    let mut best_prev = f64::NEG_INFINITY;
                    for g in lo..=hi {
                        let offset = 1 + g as usize;
                        if j >= offset && dp[j - offset] > best_prev {
                            best_prev = dp[j - offset];
                        }
                    }
                    if best_prev > f64::NEG_INFINITY {
                        *slot = best_prev + row[j];
                    }
                }
                dp = next;
            }
            let best = dp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            total += if best.is_finite() {
                best / m as f64
            } else {
                self.floor_log
            };
        }
        total
    }

    /// NM of every singular pattern, indexed by `CellId`. One sparse pass:
    /// memory `O(G + touched cells per trajectory)`, no row caching.
    pub fn nm_all_singulars(&self) -> Vec<f64> {
        let g = self.grid.num_cells() as usize;
        let n = self.data.len() as f64;
        let mut totals = vec![self.floor_log * n; g];
        let mut best: FxHashMap<u32, f64> = FxHashMap::default();
        for traj in self.data.iter() {
            best.clear();
            for sp in traj.points() {
                let radius = self.delta + 8.0 * sp.sigma;
                for cell in self.grid.cells_within(sp.mean, radius) {
                    let lp = self.log_prob(sp, cell);
                    if lp > self.floor_log {
                        let e = best.entry(cell.0).or_insert(f64::NEG_INFINITY);
                        if lp > *e {
                            *e = lp;
                        }
                    }
                }
            }
            for (&cell, &b) in best.iter() {
                totals[cell as usize] += b - self.floor_log;
            }
        }
        totals
    }

    /// `ln(max(Prob(l, σ, center(cell), δ), min_prob))` for one snapshot.
    #[inline]
    fn log_prob(&self, sp: &SnapshotPoint, cell: CellId) -> f64 {
        prob_within_delta(sp.mean, sp.sigma, self.grid.center(cell), self.delta)
            .max(self.min_prob)
            .ln()
    }

    /// Fills the per-cell row cache for every cell of `cells`.
    fn ensure_cached(&self, cells: &[CellId]) {
        let mut rows = self.rows.borrow_mut();
        for &cell in cells {
            if rows.contains_key(&cell) {
                continue;
            }
            let per_traj: Vec<Box<[f64]>> = self
                .data
                .iter()
                .map(|t| {
                    t.points()
                        .iter()
                        .map(|sp| self.log_prob(sp, cell))
                        .collect::<Vec<f64>>()
                        .into_boxed_slice()
                })
                .collect();
            rows.insert(cell, per_traj);
        }
    }

    /// Number of distinct cells whose probability rows are cached.
    pub fn cached_cells(&self) -> usize {
        self.rows.borrow().len()
    }
}

/// Maximum over windows of the mean log probability (Eq. 3+4 for one
/// trajectory), given per-cell row tables. Returns `floor_log` if the
/// trajectory is shorter than the pattern.
fn best_window_mean(
    cell_rows: &[&Vec<Box<[f64]>>],
    traj_index: usize,
    m: usize,
    floor_log: f64,
) -> f64 {
    let l = cell_rows[0][traj_index].len();
    if l < m {
        return floor_log;
    }
    let mut best = f64::NEG_INFINITY;
    for start in 0..=(l - m) {
        let mut sum = 0.0;
        for (j, rows) in cell_rows.iter().enumerate() {
            sum += rows[traj_index][start + j];
        }
        if sum > best {
            best = sum;
        }
    }
    best / m as f64
}

/// `log M(P, segment)` (Eq. 2 in log space) for an arbitrary snapshot
/// segment *outside* any dataset — used by the prediction module to test
/// whether a recent trajectory fragment "confirms" a pattern (or pattern
/// prefix, hence the cell-slice signature). Returns `None` if the segment
/// length differs from the number of cells.
pub fn log_match_segment(
    segment: &[SnapshotPoint],
    cells: &[trajgeo::CellId],
    grid: &Grid,
    delta: f64,
    min_prob: f64,
) -> Option<f64> {
    if segment.len() != cells.len() || cells.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for (sp, &cell) in segment.iter().zip(cells) {
        sum += prob_within_delta(sp.mean, sp.sigma, grid.center(cell), delta)
            .max(min_prob)
            .ln();
    }
    Some(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::Trajectory;
    use trajgeo::{BBox, Point2};

    /// 4×4 unit grid; helper building a dataset of identical L-to-R sweeps.
    fn setup(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(
                                Point2::new(0.125 + i as f64 * 0.25, 0.625),
                                sigma,
                            )
                            .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    // Cells of row y=0.625 (third row, cy=2) are 8,9,10,11.

    #[test]
    fn nm_prefers_the_true_path() {
        let (data, grid) = setup(5, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let on_path = s.nm(&pat(&[8, 9, 10, 11]));
        let off_path = s.nm(&pat(&[0, 1, 2, 3]));
        assert!(
            on_path > off_path,
            "on-path {on_path} must beat off-path {off_path}"
        );
        // NM values are sums of log-probability means: never positive.
        assert!(on_path <= 0.0);
    }

    #[test]
    fn nm_scales_linearly_with_dataset_size() {
        let (d1, grid) = setup(1, 0.05);
        let (d3, _) = setup(3, 0.05);
        let p = pat(&[8, 9]);
        let nm1 = Scorer::new(&d1, &grid, 0.1, 1e-12).nm(&p);
        let nm3 = Scorer::new(&d3, &grid, 0.1, 1e-12).nm(&p);
        assert!((nm3 - 3.0 * nm1).abs() < 1e-9);
    }

    #[test]
    fn nm_uses_best_window() {
        // Pattern (9,10) occurs in the middle of the sweep; NM must pick
        // that window rather than the first.
        let (data, grid) = setup(1, 0.02);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[9, 10]);
        let nm = s.nm(&p);
        // Compare against manual window enumeration via nm_in_trajectory.
        assert!((s.nm_in_trajectory(&p, 0) - nm).abs() < 1e-12);
        // The best window should be nearly perfect: cells 9,10 sit exactly
        // under snapshots 1,2, and ±0.1 around a cell center with σ=0.02
        // captures almost all mass.
        assert!(nm > (0.99f64).ln(), "nm = {nm}");
    }

    #[test]
    fn too_short_trajectory_contributes_floor() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let short: Dataset = vec![Trajectory::from_exact([Point2::new(0.125, 0.625)])]
            .into_iter()
            .collect();
        let s = Scorer::new(&short, &grid, 0.1, 1e-12);
        let nm = s.nm(&pat(&[8, 9]));
        assert!((nm - (1e-12f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn probability_floor_bounds_nm() {
        let (data, grid) = setup(2, 0.01);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        // A pattern in the far corner: every position hits the floor.
        let nm = s.nm(&pat(&[15, 15, 15]));
        let floor_nm = 2.0 * (1e-12f64).ln();
        assert!((nm - floor_nm).abs() < 1e-6, "nm = {nm}");
    }

    #[test]
    fn match_score_counts_expected_occurrences() {
        let (data, grid) = setup(10, 0.01);
        let s = Scorer::new(&data, &grid, 0.12, 1e-12);
        // Each of the 10 trajectories matches (8,9) nearly perfectly.
        let m = s.match_score(&pat(&[8, 9]));
        assert!(m > 9.0 && m <= 10.0, "match = {m}");
        // The off-path pattern matches essentially never.
        assert!(s.match_score(&pat(&[4, 5])) < 1.0);
    }

    #[test]
    fn match_is_antimonotone_under_extension() {
        // The Apriori property holds for match (it fails for NM) — spot
        // check here; the property test covers random data.
        let (data, grid) = setup(6, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let m2 = s.match_score(&pat(&[8, 9]));
        let m3 = s.match_score(&pat(&[8, 9, 10]));
        let m4 = s.match_score(&pat(&[8, 9, 10, 11]));
        assert!(m2 >= m3 && m3 >= m4, "{m2} >= {m3} >= {m4} violated");
    }

    #[test]
    fn singular_pass_agrees_with_direct_scoring() {
        let (data, grid) = setup(4, 0.07);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let all = s.nm_all_singulars();
        for cell in grid.cells() {
            let direct = s.nm(&Pattern::singular(cell));
            assert!(
                (all[cell.index()] - direct).abs() < 1e-6,
                "cell {cell}: sparse {} vs direct {direct}",
                all[cell.index()]
            );
        }
    }

    #[test]
    fn evaluation_counter_and_cache_grow() {
        let (data, grid) = setup(2, 0.05);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        assert_eq!(s.evaluations(), 0);
        s.nm(&pat(&[8, 9]));
        s.nm(&pat(&[8, 9]));
        assert_eq!(s.evaluations(), 2);
        assert_eq!(s.cached_cells(), 2);
    }

    #[test]
    fn log_match_segment_matches_pattern_length_only() {
        let (data, grid) = setup(1, 0.05);
        let seg = &data.trajectories()[0].points()[..2];
        let p2 = pat(&[8, 9]);
        let p3 = pat(&[8, 9, 10]);
        assert!(log_match_segment(seg, p2.cells(), &grid, 0.1, 1e-12).is_some());
        assert!(log_match_segment(seg, p3.cells(), &grid, 0.1, 1e-12).is_none());
        // The well-aligned segment has high probability (σ=0.05, δ=0.1:
        // each axis captures ±2σ ≈ 0.954, so each position ≈ 0.911 and the
        // two-position product ≈ 0.83).
        let lm = log_match_segment(seg, p2.cells(), &grid, 0.1, 1e-12).unwrap();
        assert!(lm > (0.8f64).ln(), "lm = {lm}");
    }

    #[test]
    fn nm_in_trajectory_bounds_nm() {
        // NM(P) = Σ_T NM(P,T): verify the identity.
        let (data, grid) = setup(3, 0.06);
        let s = Scorer::new(&data, &grid, 0.1, 1e-12);
        let p = pat(&[8, 9, 10]);
        let total: f64 = (0..data.len()).map(|i| s.nm_in_trajectory(&p, i)).sum();
        assert!((total - s.nm(&p)).abs() < 1e-9);
    }
}
