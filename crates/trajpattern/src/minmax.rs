//! The min-max property and the tighter weighted-mean bound (§3.5).
//!
//! Property 1 of the paper: for `P = P'·P''`,
//! `NM(P) ≤ max(NM(P'), NM(P''))`. The proof actually establishes the
//! stronger inequality
//!
//! ```text
//! (i+j)·NM(P) ≤ i·NM(P') + j·NM(P'')
//! ```
//!
//! i.e. `NM(P)` is bounded by the *length-weighted mean* of the parts' NMs
//! (which in turn is bounded by their max). The miner uses the weighted
//! mean as its candidate-pruning bound — it is strictly tighter, free to
//! evaluate, and exact (the property is measure-shape independent: it only
//! uses that a window sum splits into two window sums over sub-windows of
//! the same trajectory).

/// The weighted-mean upper bound on `NM(P'·P'')`:
/// `(len1·nm1 + len2·nm2) / (len1 + len2)`.
///
/// Panics in debug builds if either length is zero.
#[inline]
pub fn weighted_mean_bound(nm1: f64, len1: usize, nm2: f64, len2: usize) -> f64 {
    debug_assert!(len1 > 0 && len2 > 0);
    (len1 as f64 * nm1 + len2 as f64 * nm2) / (len1 + len2) as f64
}

/// The (looser) min-max bound of Property 1: `max(NM(P'), NM(P''))`.
#[inline]
pub fn min_max_bound(nm1: f64, nm2: f64) -> f64 {
    nm1.max(nm2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_is_between_parts() {
        let b = weighted_mean_bound(-2.0, 1, -4.0, 3);
        assert!((b - (-3.5)).abs() < 1e-12);
        assert!(b <= min_max_bound(-2.0, -4.0));
        assert!(b >= (-4.0f64).min(-2.0));
    }

    #[test]
    fn equal_parts_give_same_value() {
        assert_eq!(weighted_mean_bound(-1.5, 4, -1.5, 2), -1.5);
        assert_eq!(min_max_bound(-1.5, -1.5), -1.5);
    }

    #[test]
    fn weighted_mean_never_exceeds_min_max() {
        // Deterministic sweep over a small grid of values/lengths.
        for &nm1 in &[-10.0, -3.5, -0.1] {
            for &nm2 in &[-8.0, -1.0, -0.5] {
                for len1 in 1..5usize {
                    for len2 in 1..5usize {
                        let wm = weighted_mean_bound(nm1, len1, nm2, len2);
                        assert!(
                            wm <= min_max_bound(nm1, nm2) + 1e-12,
                            "wm {wm} > minmax for ({nm1},{len1},{nm2},{len2})"
                        );
                    }
                }
            }
        }
    }
}
