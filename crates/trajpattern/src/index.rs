//! Pattern spatial index: which patterns can a trajectory come near?
//!
//! [`PatternIndex`] stores, per pattern, the axis-aligned rectangle
//! enclosing the pattern's cell centers, in a
//! [`HybridIndex`](trajgeo::index::HybridIndex) (geohash buckets for the
//! compact majority, an STR R-tree for long spans). A query asks: which
//! patterns intersect a trajectory's *probability corridor* — the
//! bounding box of its snapshot means expanded by the largest `δ + 8σ`
//! radius any snapshot carries?
//!
//! The answer is conservative in exactly the direction scoring needs.
//! If a pattern's rectangle misses the corridor, every one of its cell
//! centers is farther (in L∞) than `δ + 8σ` from every snapshot mean, so
//! by the corridor invariant (see `Scorer::nm_all_singulars`) every
//! position probability is clamped to the floor and the pattern's score
//! is a closed-form function of the pattern and trajectory lengths. False
//! positives merely get scored normally. Either way the result is
//! bit-identical to an unindexed run, which is what lets the engine's
//! `NmSource` impls and the server's `/v1` routes consult the index
//! unconditionally.

use crate::pattern::Pattern;
use trajdata::Dataset;
use trajgeo::index::{HybridIndex, Rect};
use trajgeo::Grid;

/// `Grid::cells_within` widens its radius by `r·1e-9 + 1e-12` to absorb
/// floating-point noise; the index widens strictly more so its notion of
/// "far" never contradicts the corridor scan's.
fn widen(r: f64) -> f64 {
    r * (1.0 + 1e-6) + 1e-9
}

/// A spatial index over one batch of patterns (entry `i` ↔ pattern `i`).
#[derive(Debug, Clone)]
pub struct PatternIndex {
    index: HybridIndex,
    len: usize,
}

impl PatternIndex {
    /// Indexes every pattern of `batch` by the bounding box of its cell
    /// centers on `grid`.
    pub fn build(batch: &[Pattern], grid: &Grid) -> PatternIndex {
        let entries = batch
            .iter()
            .enumerate()
            .map(|(i, pattern)| {
                let mut cells = pattern.cells().iter();
                let first = cells.next().expect("patterns are non-empty");
                let rect = cells.fold(Rect::point(grid.center(*first)), |r, &c| {
                    r.union(Rect::point(grid.center(c)))
                });
                (rect, i as u32)
            })
            .collect();
        PatternIndex {
            index: HybridIndex::build(entries),
            len: batch.len(),
        }
    }

    /// Number of indexed patterns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-pattern mask: `true` if some trajectory's probability corridor
    /// reaches the pattern's rectangle (the pattern *may* score above
    /// all-floor), `false` if the pattern is provably at the floor for
    /// every position of every trajectory.
    pub fn candidates(&self, data: &Dataset, delta: f64) -> Vec<bool> {
        let mut mask = vec![false; self.len];
        for traj in data.trajectories() {
            let points = traj.points();
            let Some(first) = points.first() else {
                continue;
            };
            let mut rect = Rect::point(first.mean);
            let mut radius = 0.0f64;
            for sp in points {
                rect = rect.union(Rect::point(sp.mean));
                radius = radius.max(delta + 8.0 * sp.sigma);
            }
            for id in self.index.query(&rect.expanded(widen(radius))) {
                mask[id as usize] = true;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{SnapshotPoint, Trajectory};
    use trajgeo::{BBox, CellId, Point2};

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    fn sweep(y: f64, sigma: f64) -> Trajectory {
        Trajectory::new(
            (0..4)
                .map(|i| {
                    SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, y), sigma).unwrap()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn far_patterns_are_excluded_and_near_ones_kept() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = vec![sweep(0.625, 0.01)].into_iter().collect();
        // Row y=0.625 is cells 8..12; row y=0.125 (cells 0..4) is 0.5 away
        // — far beyond δ + 8σ = 0.13.
        let batch = [pat(&[8, 9, 10, 11]), pat(&[0, 1]), pat(&[9]), pat(&[3])];
        let index = PatternIndex::build(&batch, &grid);
        assert_eq!(index.len(), 4);
        let mask = index.candidates(&data, 0.05);
        assert_eq!(mask, vec![true, false, true, false]);
    }

    #[test]
    fn huge_sigma_makes_everything_a_candidate() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = vec![sweep(0.625, 0.5)].into_iter().collect();
        let batch = [pat(&[0]), pat(&[15]), pat(&[3, 7])];
        let mask = PatternIndex::build(&batch, &grid).candidates(&data, 0.05);
        assert!(mask.iter().all(|&m| m), "corridor covers the whole grid");
    }

    #[test]
    fn candidate_set_is_a_superset_of_cells_within() {
        // Every cell the corridor scan reaches must be a candidate as a
        // singular pattern — the conservative direction the scorer needs.
        let grid = Grid::new(BBox::unit(), 8, 8).unwrap();
        let data: Dataset = vec![sweep(0.40625, 0.06)].into_iter().collect();
        let batch: Vec<Pattern> = grid.cells().map(Pattern::singular).collect();
        let delta = 0.07;
        let mask = PatternIndex::build(&batch, &grid).candidates(&data, delta);
        for traj in data.trajectories() {
            for sp in traj.points() {
                for cell in grid.cells_within(sp.mean, delta + 8.0 * sp.sigma) {
                    assert!(mask[cell.index()], "cell {cell} reached but not candidate");
                }
            }
        }
    }
}
