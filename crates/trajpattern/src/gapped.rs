//! Wildcard positions and gaps (§5 of the paper).
//!
//! "It is desirable to find patterns with some wild card positions or
//! gaps. A wild card position represented by the '*' symbol can be
//! considered as a 'don't care' position … A gap can be viewed as a
//! variant number of consecutive '*'s. When computing the NM of a pattern,
//! the dynamic programming technique can be used."
//!
//! A [`GappedPattern`] is a list of specified positions with a *gap
//! constraint* between consecutive positions: position `i+1` must occur
//! between `min+1` and `max+1` snapshots after position `i` (a gap of `g`
//! means `g` wildcard snapshots in between; `(0, 0)` recovers contiguous
//! patterns). Wildcard snapshots contribute probability 1 (log 0) and do
//! **not** count toward the normalization length — otherwise padding any
//! pattern with '*'s would raise its NM for free.
//!
//! NM with flexible gaps is computed by dynamic programming over each
//! trajectory in `O(L · m · max_gap)`.

use crate::pattern::{MinedPattern, Pattern};
use crate::scorer::Scorer;
use std::fmt;
use trajdata::Dataset;
use trajgeo::stats::prob_within_delta;
use trajgeo::{CellId, Grid};

/// A pattern with gap constraints between consecutive positions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GappedPattern {
    positions: Vec<CellId>,
    /// `gaps[i]` = (min, max) wildcard snapshots between positions i, i+1.
    gaps: Vec<(u8, u8)>,
}

/// Errors constructing a [`GappedPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GappedError {
    /// A gapped pattern needs at least one position.
    Empty,
    /// There must be exactly `positions.len() - 1` gap constraints.
    GapCountMismatch,
    /// A gap constraint had `min > max`.
    InvalidGap {
        /// Which gap constraint is invalid.
        index: usize,
    },
}

impl fmt::Display for GappedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GappedError::Empty => write!(f, "gapped pattern needs at least one position"),
            GappedError::GapCountMismatch => {
                write!(f, "need exactly positions-1 gap constraints")
            }
            GappedError::InvalidGap { index } => {
                write!(f, "gap constraint {index} has min > max")
            }
        }
    }
}

impl std::error::Error for GappedError {}

impl GappedPattern {
    /// Builds a gapped pattern from positions and per-adjacency gap
    /// bounds.
    pub fn new(positions: Vec<CellId>, gaps: Vec<(u8, u8)>) -> Result<GappedPattern, GappedError> {
        if positions.is_empty() {
            return Err(GappedError::Empty);
        }
        if gaps.len() + 1 != positions.len() {
            return Err(GappedError::GapCountMismatch);
        }
        if let Some(index) = gaps.iter().position(|&(lo, hi)| lo > hi) {
            return Err(GappedError::InvalidGap { index });
        }
        Ok(GappedPattern { positions, gaps })
    }

    /// A contiguous pattern (all gaps `(0,0)`).
    pub fn contiguous(pattern: &Pattern) -> GappedPattern {
        GappedPattern {
            positions: pattern.cells().to_vec(),
            gaps: vec![(0, 0); pattern.len() - 1],
        }
    }

    /// Joins two contiguous patterns with a fixed run of `g` wildcards in
    /// between.
    pub fn join_with_gap(a: &Pattern, b: &Pattern, g: u8) -> GappedPattern {
        let mut positions = a.cells().to_vec();
        positions.extend_from_slice(b.cells());
        let mut gaps = vec![(0, 0); a.len() - 1];
        gaps.push((g, g));
        gaps.extend(vec![(0, 0); b.len() - 1]);
        GappedPattern { positions, gaps }
    }

    /// Number of *specified* positions (the normalization length `m`).
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// The specified positions.
    pub fn positions(&self) -> &[CellId] {
        &self.positions
    }

    /// The gap constraints.
    pub fn gaps(&self) -> &[(u8, u8)] {
        &self.gaps
    }

    /// Minimum number of snapshots the pattern spans.
    pub fn min_span(&self) -> usize {
        self.positions.len() + self.gaps.iter().map(|&(lo, _)| lo as usize).sum::<usize>()
    }

    /// `NM(P)` over `data`: for each trajectory, the best gap-respecting
    /// alignment of all positions (DP), normalized by the number of
    /// specified positions; floor for trajectories the pattern cannot fit.
    pub fn nm(&self, data: &Dataset, grid: &Grid, delta: f64, min_prob: f64) -> f64 {
        let floor_log = min_prob.ln();
        let centers: Vec<_> = self.positions.iter().map(|&c| grid.center(c)).collect();
        let m = self.positions.len();
        let mut total = 0.0;
        for traj in data.iter() {
            let l = traj.len();
            if l < self.min_span() {
                total += floor_log;
                continue;
            }
            // dp[j] = best log-prob sum with the current position aligned
            // at snapshot j.
            let mut dp = vec![f64::NEG_INFINITY; l];
            for (j, sp) in traj.points().iter().enumerate() {
                dp[j] = prob_within_delta(sp.mean, sp.sigma, centers[0], delta)
                    .max(min_prob)
                    .ln();
            }
            for (i, center) in centers.iter().enumerate().skip(1) {
                let (lo, hi) = self.gaps[i - 1];
                let mut next = vec![f64::NEG_INFINITY; l];
                for (j, sp) in traj.points().iter().enumerate() {
                    // Previous position at j - 1 - g for g in lo..=hi.
                    let mut best_prev = f64::NEG_INFINITY;
                    for g in lo..=hi {
                        let offset = 1 + g as usize;
                        if j >= offset && dp[j - offset] > best_prev {
                            best_prev = dp[j - offset];
                        }
                    }
                    if best_prev > f64::NEG_INFINITY {
                        next[j] = best_prev
                            + prob_within_delta(sp.mean, sp.sigma, *center, delta)
                                .max(min_prob)
                                .ln();
                    }
                }
                dp = next;
            }
            let best = dp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            total += if best.is_finite() {
                best / m as f64
            } else {
                floor_log
            };
        }
        total
    }
}

impl fmt::Display for GappedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.positions.iter().enumerate() {
            if i > 0 {
                let (lo, hi) = self.gaps[i - 1];
                write!(f, ", ")?;
                if lo == hi {
                    for _ in 0..lo {
                        write!(f, "*, ")?;
                    }
                } else if hi > 0 {
                    write!(f, "*{{{lo},{hi}}}, ")?;
                }
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A gapped pattern with its NM.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MinedGappedPattern {
    /// The pattern.
    pub pattern: GappedPattern,
    /// Its NM over the dataset it was mined from.
    pub nm: f64,
}

/// §5 wildcard *mining*: starts from the contiguous top-k and repeatedly
/// joins the current pool's patterns with `1..=max_gap` wildcards between
/// them, keeping the best `k` gapped patterns, until a fixpoint (or the
/// iteration cap). Scoring reuses the [`Scorer`]'s per-cell probability
/// rows, so each join costs one DP pass over the data.
///
/// This realizes the paper's "for each pattern P in Q, we can add between
/// 0 and d '*' symbols" as a post-mining growing process; leading/trailing
/// wildcards are omitted because under length normalization they only
/// restrict the alignment without adding information.
pub fn mine_gapped(
    scorer: &Scorer<'_>,
    base: &[MinedPattern],
    max_gap: u8,
    k: usize,
    max_iters: usize,
) -> Vec<MinedGappedPattern> {
    let mut pool: Vec<MinedGappedPattern> = base
        .iter()
        .map(|m| MinedGappedPattern {
            pattern: GappedPattern::contiguous(&m.pattern),
            nm: m.nm,
        })
        .collect();
    sort_dedup_truncate(&mut pool, k);
    if max_gap == 0 {
        return pool;
    }

    let mut seen: std::collections::HashSet<GappedPattern> =
        pool.iter().map(|m| m.pattern.clone()).collect();
    for _ in 0..max_iters {
        let snapshot = pool.clone();
        let mut grew = false;
        for a in &snapshot {
            for b in &snapshot {
                for g in 1..=max_gap {
                    let joined = join_gapped(&a.pattern, &b.pattern, g);
                    if !seen.insert(joined.clone()) {
                        continue;
                    }
                    let mut positions = Vec::new();
                    let mut gaps = Vec::new();
                    flatten(&joined, &mut positions, &mut gaps);
                    let nm = scorer.nm_gapped(&positions, &gaps);
                    pool.push(MinedGappedPattern {
                        pattern: joined,
                        nm,
                    });
                    grew = true;
                }
            }
        }
        sort_dedup_truncate(&mut pool, k);
        if !grew {
            break;
        }
        // Fixpoint check: if the pool didn't change, stop.
        if pool.len() == snapshot.len()
            && pool
                .iter()
                .zip(&snapshot)
                .all(|(x, y)| x.pattern == y.pattern)
        {
            break;
        }
    }
    pool
}

/// End-to-end §5 wildcard mining: runs the shared growing engine
/// ([`crate::algorithm::mine_with_scorer`]) for the contiguous top-k base,
/// then grows wildcards with [`mine_gapped`].
///
/// With `max_gap == 0` the result is exactly the engine's contiguous top-k
/// wrapped as [`GappedPattern::contiguous`], bit-for-bit — the gapped
/// miner is a strict extension of the batch miner, not a parallel
/// implementation (see the `engine_parity` test).
pub fn mine_gapped_topk(
    scorer: &Scorer<'_>,
    params: &crate::params::MiningParams,
    max_gap: u8,
    max_iters: usize,
) -> Result<Vec<MinedGappedPattern>, crate::params::ParamsError> {
    let base = crate::algorithm::mine_with_scorer(scorer, params)?;
    Ok(mine_gapped(
        scorer,
        &base.patterns,
        max_gap,
        params.k,
        max_iters,
    ))
}

/// Joins two gapped patterns with a fixed run of `g` wildcards between
/// them.
fn join_gapped(a: &GappedPattern, b: &GappedPattern, g: u8) -> GappedPattern {
    let mut positions = a.positions().to_vec();
    positions.extend_from_slice(b.positions());
    let mut gaps = a.gaps().to_vec();
    gaps.push((g, g));
    gaps.extend_from_slice(b.gaps());
    GappedPattern::new(positions, gaps).expect("joining valid patterns is valid")
}

fn flatten(p: &GappedPattern, positions: &mut Vec<CellId>, gaps: &mut Vec<(u8, u8)>) {
    positions.extend_from_slice(p.positions());
    gaps.extend_from_slice(p.gaps());
}

fn sort_dedup_truncate(pool: &mut Vec<MinedGappedPattern>, k: usize) {
    pool.sort_by(|x, y| {
        y.nm.partial_cmp(&x.nm)
            .expect("NM values are finite")
            .then_with(|| x.pattern.positions().cmp(y.pattern.positions()))
            .then_with(|| x.pattern.gaps().cmp(y.pattern.gaps()))
    });
    pool.dedup_by(|a, b| a.pattern == b.pattern);
    pool.truncate(k);
}

/// §5 wildcard extension, realized as a one-shot refinement pass: joins
/// every ordered pair of mined contiguous patterns with `0..=max_gap`
/// wildcards in between, scores each join by DP, and returns the `k` best
/// gapped patterns (the inputs themselves compete as 0-gap joins of
/// themselves — i.e. the contiguous originals are included).
pub fn refine_with_gaps(
    mined: &[MinedPattern],
    data: &Dataset,
    grid: &Grid,
    delta: f64,
    min_prob: f64,
    max_gap: u8,
    k: usize,
) -> Vec<MinedGappedPattern> {
    let mut out: Vec<MinedGappedPattern> = Vec::new();
    for m in mined {
        let gp = GappedPattern::contiguous(&m.pattern);
        out.push(MinedGappedPattern {
            pattern: gp,
            nm: m.nm,
        });
    }
    for a in mined {
        for b in mined {
            for g in 1..=max_gap {
                let gp = GappedPattern::join_with_gap(&a.pattern, &b.pattern, g);
                let nm = gp.nm(data, grid, delta, min_prob);
                out.push(MinedGappedPattern { pattern: gp, nm });
            }
        }
    }
    out.sort_by(|x, y| {
        y.nm.partial_cmp(&x.nm)
            .expect("NM values are finite")
            .then_with(|| x.pattern.positions().cmp(y.pattern.positions()))
    });
    out.dedup_by(|a, b| a.pattern == b.pattern);
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{SnapshotPoint, Trajectory};
    use trajgeo::{BBox, Point2};

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    /// 5×1 grid; objects visit cells 0,1,2,3,4 — except the middle snapshot
    /// wanders unpredictably (uniformly different rows per object).
    fn detour_data() -> (Dataset, Grid) {
        let grid = Grid::new(
            BBox::new(Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)).unwrap(),
            5,
            5,
        )
        .unwrap();
        let data: Dataset = (0..6)
            .map(|i| {
                let detour_y = 0.5 + (i % 5) as f64; // varies per object
                Trajectory::new(vec![
                    SnapshotPoint::new(Point2::new(0.5, 0.5), 0.1).unwrap(),
                    SnapshotPoint::new(Point2::new(1.5, 0.5), 0.1).unwrap(),
                    SnapshotPoint::new(Point2::new(2.5, detour_y), 0.1).unwrap(),
                    SnapshotPoint::new(Point2::new(3.5, 0.5), 0.1).unwrap(),
                    SnapshotPoint::new(Point2::new(4.5, 0.5), 0.1).unwrap(),
                ])
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    #[test]
    fn engine_parity_with_zero_gap() {
        // mine_gapped_topk with max_gap = 0 is the shared growing engine's
        // contiguous top-k, bit-for-bit — the gapped miner rides on
        // mine_with_scorer, it does not re-implement the loop.
        let (data, grid) = detour_data();
        let params = crate::params::MiningParams::new(6, 0.4)
            .unwrap()
            .with_max_len(4)
            .unwrap();
        let scorer = crate::scorer::Scorer::new(&data, &grid, params.delta, params.min_prob);
        let base = crate::algorithm::mine_with_scorer(&scorer, &params).unwrap();
        let gapped = mine_gapped_topk(&scorer, &params, 0, 8).unwrap();
        assert_eq!(gapped.len(), base.patterns.len());
        for (g, m) in gapped.iter().zip(&base.patterns) {
            assert_eq!(g.pattern, GappedPattern::contiguous(&m.pattern));
            assert_eq!(g.nm.to_bits(), m.nm.to_bits());
        }
    }

    #[test]
    fn gapped_topk_grows_wildcards_over_the_engine_base() {
        // End-to-end: the one-call entry finds the detour-bridging pattern
        // that the contiguous engine base cannot express.
        let (data, grid) = detour_data();
        let params = crate::params::MiningParams::new(4, 0.4)
            .unwrap()
            .with_max_len(4)
            .unwrap();
        let scorer = crate::scorer::Scorer::new(&data, &grid, params.delta, params.min_prob);
        let out = mine_gapped_topk(&scorer, &params, 1, 8).unwrap();
        assert!(!out.is_empty());
        assert!(
            out.iter()
                .any(|m| !m.pattern.gaps().iter().all(|&(lo, hi)| lo == 0 && hi == 0)),
            "expected at least one genuinely gapped pattern in the top-k"
        );
        for w in out.windows(2) {
            assert!(w[0].nm >= w[1].nm);
        }
    }

    #[test]
    fn construction_validates() {
        assert_eq!(GappedPattern::new(vec![], vec![]), Err(GappedError::Empty));
        assert_eq!(
            GappedPattern::new(vec![CellId(0), CellId(1)], vec![]),
            Err(GappedError::GapCountMismatch)
        );
        assert_eq!(
            GappedPattern::new(vec![CellId(0), CellId(1)], vec![(3, 1)]),
            Err(GappedError::InvalidGap { index: 0 })
        );
        let ok = GappedPattern::new(vec![CellId(0), CellId(1)], vec![(0, 2)]).unwrap();
        assert_eq!(ok.min_span(), 2);
    }

    #[test]
    fn contiguous_gapped_matches_plain_nm() {
        let (data, grid) = detour_data();
        let p = pat(&[0, 1]);
        let gp = GappedPattern::contiguous(&p);
        let scorer = crate::scorer::Scorer::new(&data, &grid, 0.4, 1e-12);
        let plain = scorer.nm(&p);
        let gapped = gp.nm(&data, &grid, 0.4, 1e-12);
        assert!(
            (plain - gapped).abs() < 1e-9,
            "plain {plain} vs gapped {gapped}"
        );
    }

    #[test]
    fn wildcard_bridges_the_detour() {
        // Cells along the bottom row are 0,1,2,3,4. The contiguous pattern
        // (0,1,2,3,4) is hurt by the detour at snapshot 2; the gapped
        // pattern (0,1,*,3,4) skips it.
        let (data, grid) = detour_data();
        let contiguous = GappedPattern::contiguous(&pat(&[0, 1, 2, 3, 4]));
        let skipping = GappedPattern::join_with_gap(&pat(&[0, 1]), &pat(&[3, 4]), 1);
        let nm_contig = contiguous.nm(&data, &grid, 0.4, 1e-12);
        let nm_skip = skipping.nm(&data, &grid, 0.4, 1e-12);
        assert!(
            nm_skip > nm_contig,
            "skipping {nm_skip} should beat contiguous {nm_contig}"
        );
    }

    #[test]
    fn flexible_gap_at_least_as_good_as_any_fixed_gap() {
        let (data, grid) = detour_data();
        let a = pat(&[0, 1]);
        let b = pat(&[3, 4]);
        let flexible = GappedPattern::new(
            vec![CellId(0), CellId(1), CellId(3), CellId(4)],
            vec![(0, 0), (0, 2), (0, 0)],
        )
        .unwrap();
        let nm_flex = flexible.nm(&data, &grid, 0.4, 1e-12);
        for g in 0..=2u8 {
            let fixed = GappedPattern::join_with_gap(&a, &b, g);
            let nm_fixed = fixed.nm(&data, &grid, 0.4, 1e-12);
            assert!(
                nm_flex >= nm_fixed - 1e-9,
                "flex {nm_flex} < fixed(g={g}) {nm_fixed}"
            );
        }
    }

    #[test]
    fn too_short_trajectory_scores_floor() {
        let grid = Grid::new(BBox::unit(), 2, 2).unwrap();
        let data: Dataset = vec![Trajectory::from_exact([Point2::new(0.25, 0.25)])]
            .into_iter()
            .collect();
        let gp = GappedPattern::join_with_gap(&pat(&[0]), &pat(&[1]), 2);
        assert_eq!(gp.min_span(), 4);
        let nm = gp.nm(&data, &grid, 0.1, 1e-12);
        assert!((nm - (1e-12f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn scorer_gapped_matches_standalone_dp() {
        let (data, grid) = detour_data();
        let scorer = crate::scorer::Scorer::new(&data, &grid, 0.4, 1e-12);
        let gp = GappedPattern::join_with_gap(&pat(&[0, 1]), &pat(&[3, 4]), 1);
        let standalone = gp.nm(&data, &grid, 0.4, 1e-12);
        let cached = scorer.nm_gapped(gp.positions(), gp.gaps());
        assert!(
            (standalone - cached).abs() < 1e-9,
            "standalone {standalone} vs cached {cached}"
        );
    }

    #[test]
    fn mine_gapped_finds_the_detour_bridge() {
        let (data, grid) = detour_data();
        let scorer = crate::scorer::Scorer::new(&data, &grid, 0.4, 1e-12);
        let base: Vec<MinedPattern> = [&[0u32, 1][..], &[3, 4][..], &[0, 1, 2, 3, 4][..]]
            .iter()
            .map(|ids| {
                let p = Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap();
                let nm = scorer.nm(&p);
                MinedPattern::new(p, nm)
            })
            .collect();
        let mined = mine_gapped(&scorer, &base, 2, 4, 3);
        assert_eq!(mined.len(), 4);
        for w in mined.windows(2) {
            assert!(w[0].nm >= w[1].nm);
        }
        // The wildcard bridge (0,1,*,3,4) must beat the contiguous
        // detour-crossing pattern and appear in the gapped top-k.
        let has_bridge = mined.iter().any(|m| {
            m.pattern.positions().len() == 4
                && m.pattern.gaps().iter().any(|&(lo, hi)| lo == 1 && hi == 1)
        });
        assert!(has_bridge, "expected a bridged pattern in {mined:?}");
    }

    #[test]
    fn mine_gapped_zero_gap_returns_base() {
        let (data, grid) = detour_data();
        let scorer = crate::scorer::Scorer::new(&data, &grid, 0.4, 1e-12);
        let p = pat(&[0, 1]);
        let base = vec![MinedPattern::new(p.clone(), scorer.nm(&p))];
        let mined = mine_gapped(&scorer, &base, 0, 5, 3);
        assert_eq!(mined.len(), 1);
        assert_eq!(mined[0].pattern, GappedPattern::contiguous(&p));
    }

    #[test]
    fn refine_returns_sorted_topk_including_originals() {
        let (data, grid) = detour_data();
        let scorer = crate::scorer::Scorer::new(&data, &grid, 0.4, 1e-12);
        let mined = vec![
            MinedPattern::new(pat(&[0, 1]), scorer.nm(&pat(&[0, 1]))),
            MinedPattern::new(pat(&[3, 4]), scorer.nm(&pat(&[3, 4]))),
        ];
        let refined = refine_with_gaps(&mined, &data, &grid, 0.4, 1e-12, 2, 5);
        assert_eq!(refined.len(), 5);
        for w in refined.windows(2) {
            assert!(w[0].nm >= w[1].nm);
        }
    }

    #[test]
    fn display_shows_wildcards() {
        let gp = GappedPattern::join_with_gap(&pat(&[1]), &pat(&[2]), 2);
        assert_eq!(gp.to_string(), "(c1, *, *, c2)");
        let flex = GappedPattern::new(vec![CellId(1), CellId(2)], vec![(0, 3)]).unwrap();
        assert_eq!(flex.to_string(), "(c1, *{0,3}, c2)");
    }
}
