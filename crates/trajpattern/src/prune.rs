//! The 1-extension pruning of §4.1 (Definition 5 and Lemma 1).
//!
//! Low patterns are kept in the candidate set `Q` only if they satisfy the
//! *1-extension property*: either the pattern is singular, or removing its
//! first or last position yields a *high* pattern. Lemma 1 guarantees this
//! retains enough building blocks: every high pattern is the concatenation
//! of a high pattern with either a high pattern or a 1-extension low
//! pattern.

use crate::pattern::Pattern;
use trajgeo::fxhash::FxHashSet;

/// Whether `p` satisfies the 1-extension property with respect to the set
/// of high patterns `high` (Definition 5): any singular pattern qualifies;
/// a longer pattern qualifies iff dropping its first **or** last position
/// yields a member of `high`.
pub fn is_one_extension(p: &Pattern, high: &FxHashSet<Pattern>) -> bool {
    if p.is_singular() {
        return true;
    }
    if let Some(head) = p.drop_last() {
        if high.contains(&head) {
            return true;
        }
    }
    if let Some(tail) = p.drop_first() {
        if high.contains(&tail) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgeo::CellId;

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    fn high_set(patterns: &[&[u32]]) -> FxHashSet<Pattern> {
        patterns.iter().map(|ids| pat(ids)).collect()
    }

    #[test]
    fn singulars_always_qualify() {
        let high = high_set(&[]);
        assert!(is_one_extension(&pat(&[5]), &high));
    }

    #[test]
    fn prefix_high_qualifies() {
        // Figure 2(a): the pattern's (j-1)-prefix is high.
        let high = high_set(&[&[1, 2]]);
        assert!(is_one_extension(&pat(&[1, 2, 3]), &high));
    }

    #[test]
    fn suffix_high_qualifies() {
        let high = high_set(&[&[2, 3]]);
        assert!(is_one_extension(&pat(&[1, 2, 3]), &high));
    }

    #[test]
    fn interior_high_subpattern_does_not_qualify() {
        // Figure 2(b): only *first-or-last-removed* sub-patterns count.
        let high = high_set(&[&[2]]);
        assert!(!is_one_extension(&pat(&[1, 2, 3]), &high));
    }

    #[test]
    fn no_high_subpattern_fails() {
        let high = high_set(&[&[7, 8]]);
        assert!(!is_one_extension(&pat(&[1, 2, 3]), &high));
    }
}
