//! Mining parameters (§3.3, §4, §5 of the paper).

use std::fmt;

/// Default floor applied to each per-position probability before taking
/// logs, so `log M` stays finite (see DESIGN.md §5).
pub const DEFAULT_MIN_PROB: f64 = 1e-12;

/// Parameters of a TrajPattern mining run.
///
/// Marked `#[non_exhaustive]` so new knobs can be added without a breaking
/// release: construct via [`MiningParams::new`] and the `with_*` builders
/// instead of a struct literal.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub struct MiningParams {
    /// Number of patterns to mine (`k`).
    pub k: usize,
    /// Indifference distance `δ`: a location within δ of a pattern position
    /// is considered to match it.
    pub delta: f64,
    /// Floor applied to each per-position probability (keeps `log M`
    /// finite). Must be in `(0, 1)`.
    pub min_prob: f64,
    /// Minimum pattern length `d` (§5: "find patterns longer than a certain
    /// threshold d"). `1` recovers the unconstrained problem.
    pub min_len: usize,
    /// Hard cap on pattern length, a safety bound on the growing process
    /// (patterns longer than any trajectory are meaningless anyway).
    pub max_len: usize,
    /// Maximum similar-pattern distance `γ` for pattern groups (§3.4).
    /// `None` disables group discovery.
    pub gamma: Option<f64>,
    /// Apply the weighted-mean upper bound (derived from the min-max proof)
    /// to skip scoring hopeless candidates. Exact — never discards a true
    /// top-k pattern. Disable only for ablation.
    pub use_bound_prune: bool,
    /// Apply Lemma 1's 1-extension pruning to low patterns in `Q`.
    /// Disable only for ablation (Q then grows much faster).
    pub use_one_extension_prune: bool,
    /// Safety limit on growing iterations.
    pub max_iters: usize,
    /// Worker threads used by the batch scorer. `0` means "auto" (one per
    /// available core); `1` scores sequentially. Any value yields
    /// bit-identical results (see DESIGN.md §5).
    pub threads: usize,
}

/// Parameter validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// `k` must be at least 1.
    ZeroK,
    /// `delta` must be positive and finite.
    BadDelta,
    /// `min_prob` must be in `(0, 1)`.
    BadMinProb,
    /// `min_len` must be at least 1 and no greater than `max_len`.
    BadLengths,
    /// `gamma` must be positive and finite when present.
    BadGamma,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::ZeroK => write!(f, "k must be at least 1"),
            ParamsError::BadDelta => write!(f, "delta must be positive and finite"),
            ParamsError::BadMinProb => write!(f, "min_prob must be in (0, 1)"),
            ParamsError::BadLengths => {
                write!(f, "min_len must satisfy 1 <= min_len <= max_len")
            }
            ParamsError::BadGamma => write!(f, "gamma must be positive and finite"),
        }
    }
}

impl std::error::Error for ParamsError {}

impl MiningParams {
    /// Creates parameters with the given `k` and `δ` and sensible defaults
    /// for everything else (no length constraint, groups disabled, all
    /// prunings on).
    pub fn new(k: usize, delta: f64) -> Result<MiningParams, ParamsError> {
        let p = MiningParams {
            k,
            delta,
            min_prob: DEFAULT_MIN_PROB,
            min_len: 1,
            max_len: 24,
            gamma: None,
            use_bound_prune: true,
            use_one_extension_prune: true,
            max_iters: 64,
            threads: 1,
        };
        p.validate()?;
        Ok(p)
    }

    /// Sets the minimum pattern length (§5 extension).
    pub fn with_min_len(mut self, d: usize) -> Result<MiningParams, ParamsError> {
        self.min_len = d;
        self.validate()?;
        Ok(self)
    }

    /// Sets the maximum pattern length cap.
    pub fn with_max_len(mut self, m: usize) -> Result<MiningParams, ParamsError> {
        self.max_len = m;
        self.validate()?;
        Ok(self)
    }

    /// Enables pattern-group discovery with maximum similar-pattern
    /// distance `γ`.
    pub fn with_gamma(mut self, gamma: f64) -> Result<MiningParams, ParamsError> {
        self.gamma = Some(gamma);
        self.validate()?;
        Ok(self)
    }

    /// Overrides the probability floor.
    pub fn with_min_prob(mut self, min_prob: f64) -> Result<MiningParams, ParamsError> {
        self.min_prob = min_prob;
        self.validate()?;
        Ok(self)
    }

    /// Sets the scorer worker-thread count (`0` = auto, `1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Result<MiningParams, ParamsError> {
        self.threads = threads;
        self.validate()?;
        Ok(self)
    }

    /// Validates the full parameter set.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if self.k == 0 {
            return Err(ParamsError::ZeroK);
        }
        if !(self.delta.is_finite() && self.delta > 0.0) {
            return Err(ParamsError::BadDelta);
        }
        if !(self.min_prob > 0.0 && self.min_prob < 1.0) {
            return Err(ParamsError::BadMinProb);
        }
        if self.min_len == 0 || self.min_len > self.max_len {
            return Err(ParamsError::BadLengths);
        }
        if let Some(g) = self.gamma {
            if !(g.is_finite() && g > 0.0) {
                return Err(ParamsError::BadGamma);
            }
        }
        Ok(())
    }

    /// The log of the probability floor — the smallest possible
    /// per-position contribution to `log M`.
    #[inline]
    pub fn floor_log(&self) -> f64 {
        self.min_prob.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let p = MiningParams::new(10, 0.01).unwrap();
        assert_eq!(p.k, 10);
        assert_eq!(p.min_len, 1);
        assert!(p.use_bound_prune && p.use_one_extension_prune);
        assert!(p.floor_log() < 0.0);
    }

    #[test]
    fn rejects_bad_values() {
        assert_eq!(MiningParams::new(0, 0.01), Err(ParamsError::ZeroK));
        assert_eq!(MiningParams::new(1, 0.0), Err(ParamsError::BadDelta));
        assert_eq!(MiningParams::new(1, f64::NAN), Err(ParamsError::BadDelta));
        assert_eq!(
            MiningParams::new(1, 0.01).unwrap().with_min_len(0),
            Err(ParamsError::BadLengths)
        );
        assert_eq!(
            MiningParams::new(1, 0.01).unwrap().with_min_len(100),
            Err(ParamsError::BadLengths)
        );
        assert_eq!(
            MiningParams::new(1, 0.01).unwrap().with_gamma(-1.0),
            Err(ParamsError::BadGamma)
        );
        assert_eq!(
            MiningParams::new(1, 0.01).unwrap().with_min_prob(1.5),
            Err(ParamsError::BadMinProb)
        );
    }

    #[test]
    fn builder_chains() {
        let p = MiningParams::new(5, 0.02)
            .unwrap()
            .with_min_len(4)
            .unwrap()
            .with_max_len(10)
            .unwrap()
            .with_gamma(0.05)
            .unwrap();
        assert_eq!(p.min_len, 4);
        assert_eq!(p.max_len, 10);
        assert_eq!(p.gamma, Some(0.05));
    }

    #[test]
    fn threads_default_and_builder() {
        let p = MiningParams::new(3, 0.01).unwrap();
        assert_eq!(p.threads, 1);
        let p = p.with_threads(0).unwrap();
        assert_eq!(p.threads, 0);
        let p = p.with_threads(4).unwrap();
        assert_eq!(p.threads, 4);
    }
}
