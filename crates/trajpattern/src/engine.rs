//! The shared growth engine: one candidate/prune/top-k loop for every
//! miner in the stack.
//!
//! Historically the batch miner ([`crate::mine`]), the seeded re-growth
//! behind the streaming repair path ([`crate::mine_seeded`]), and the
//! checkpointing session API ([`crate::Miner`]) each carried their own
//! copy of the growing process — the same candidate enumeration, the same
//! weighted-mean bound, the same τ pruning, duplicated. This module is
//! the single implementation all of them drive. It is parameterized over
//! an [`NmSource`]: anything that can score patterns and describe the
//! data enough for the exactness arguments (grid, longest trajectory,
//! singular NMs) can power a growth run.
//!
//! Three sources exist:
//!
//! - [`Scorer`] itself — the dense batch source used by `mine`;
//! - [`SeededSource`] — a scorer plus an exact-NM memo over a seed set
//!   (the streaming ledger's folded sums). The memo is a safety net: the
//!   growth loop only scores candidates absent from its store, and every
//!   seed starts *in* the store, so a correctly seeded run never consults
//!   it — but if it did, the exact ledger value would come back instead
//!   of a recomputation;
//! - [`SparseSource`] — the arrival-delta source the streaming ledger
//!   uses to score its patterns against a single new trajectory (kept as
//!   a named wrapper for clarity; scoring itself is the same unified
//!   corridor path).
//!
//! Every source funnels batches through [`indexed_score`]: large batches
//! get a [`PatternIndex`](crate::index::PatternIndex) over their bounding
//! boxes so patterns far from every trajectory resolve analytically —
//! bit-identical either way, so exactness arguments are untouched.
//!
//! Because every caller shares [`grow_level`] *and* [`init_state`], a
//! pruning decision (bound, τ, 1-extension) can never differ between the
//! batch, seeded, resumed, and streaming paths: parity is true by
//! construction, not by test. The bit-identity suites
//! (`parallel_determinism`, `stream_batch_identity`, `checkpoint_resume`)
//! pin it end to end anyway.

use crate::groups::discover_groups;
use crate::minmax::weighted_mean_bound;
use crate::params::MiningParams;
use crate::pattern::{MinedPattern, Pattern};
use crate::prune::is_one_extension;
use crate::scorer::Scorer;
use crate::topk::ThresholdTracker;
use std::fmt;
use trajgeo::fxhash::{FxHashMap, FxHashSet};
use trajgeo::Grid;

pub use crate::algorithm::{MiningOutcome, MiningStats};

/// Below this many patterns, building a spatial index costs more than the
/// window scans it could skip; such batches score unindexed (the scores
/// are bit-identical either way, so the cutoff is pure tuning).
const INDEX_BATCH_THRESHOLD: usize = 32;

/// Scores `batch` through [`Scorer::query`], attaching a
/// [`crate::index::PatternIndex`] over the batch when it is large enough
/// to pay for one. This is the one batch-scoring funnel every engine
/// source uses, so index-pruning behavior cannot diverge between the
/// batch, seeded, and streaming paths.
pub fn indexed_score(scorer: &Scorer<'_>, batch: &[Pattern]) -> Vec<f64> {
    if batch.len() < INDEX_BATCH_THRESHOLD {
        return scorer.query(batch).run();
    }
    let index = crate::index::PatternIndex::build(batch, scorer.grid());
    scorer.query(batch).with_index(&index).run()
}

/// What the growth engine needs from a scoring backend: exact NM values
/// plus enough shape information (grid, longest trajectory) for the
/// pruning thresholds to stay exact.
///
/// Implementations must be *exact and deterministic*: `score_batch` must
/// return, bit for bit, the NM the dense [`Scorer`] would compute for the
/// same pattern over the same data — every exactness argument in the
/// crate (bound pruning, τ, certification) leans on that.
pub trait NmSource {
    /// The grid patterns are defined over.
    fn grid(&self) -> &Grid;

    /// Length of the longest trajectory in the data (0 when empty) —
    /// determines the effective maximum pattern length.
    fn longest_trajectory(&self) -> usize;

    /// `NM(P)` for every singular pattern, indexed by cell.
    fn nm_all_singulars(&self) -> Vec<f64>;

    /// Exact NM for each pattern of `batch`, in order.
    fn score_batch(&self, batch: &[Pattern]) -> Vec<f64>;

    /// Up to `k` genuine length-`min_len` bootstrap patterns read off the
    /// data (see [`seed_patterns`]).
    fn seed_patterns(&self, min_len: usize, k: usize) -> Vec<Pattern>;

    /// Total pattern scorings performed so far (monotone counter).
    fn evaluations(&self) -> u64;

    /// Worker-shard panics absorbed by sequential rescoring so far.
    fn degraded_rescores(&self) -> u64;

    /// Scorer telemetry for [`MiningOutcome::scorer`].
    fn scorer_stats(&self) -> crate::ScorerStats;
}

impl NmSource for Scorer<'_> {
    fn grid(&self) -> &Grid {
        Scorer::grid(self)
    }

    fn longest_trajectory(&self) -> usize {
        self.data().iter().map(|t| t.len()).max().unwrap_or(0)
    }

    fn nm_all_singulars(&self) -> Vec<f64> {
        Scorer::nm_all_singulars(self)
    }

    fn score_batch(&self, batch: &[Pattern]) -> Vec<f64> {
        indexed_score(self, batch)
    }

    fn seed_patterns(&self, min_len: usize, k: usize) -> Vec<Pattern> {
        seed_patterns(self, min_len, k)
    }

    fn evaluations(&self) -> u64 {
        Scorer::evaluations(self)
    }

    fn degraded_rescores(&self) -> u64 {
        Scorer::degraded_rescores(self)
    }

    fn scorer_stats(&self) -> crate::ScorerStats {
        Scorer::stats(self)
    }
}

/// A [`Scorer`] augmented with an exact-NM memo over an already-scored
/// seed set — the source behind [`crate::mine_seeded`].
///
/// The memo holds the caller's exact values (in streaming, the ledger's
/// folded sums). A batch probe answers from the memo where it can and
/// forwards only the misses to the scorer, preserving order — so
/// [`NmSource::evaluations`] (which delegates to the scorer) counts only
/// genuine data touches, which is exactly the `newly_scored` contract.
pub struct SeededSource<'s, 'a> {
    scorer: &'s Scorer<'a>,
    memo: FxHashMap<Pattern, f64>,
}

impl<'s, 'a> SeededSource<'s, 'a> {
    /// Wraps `scorer` with a memo of the seed's exact NMs.
    pub fn new(scorer: &'s Scorer<'a>, seed: &[MinedPattern]) -> SeededSource<'s, 'a> {
        let memo = seed
            .iter()
            .map(|m| (m.pattern.clone(), m.nm))
            .collect::<FxHashMap<_, _>>();
        SeededSource { scorer, memo }
    }

    /// The wrapped scorer.
    pub fn scorer(&self) -> &'s Scorer<'a> {
        self.scorer
    }
}

impl NmSource for SeededSource<'_, '_> {
    fn grid(&self) -> &Grid {
        self.scorer.grid()
    }

    fn longest_trajectory(&self) -> usize {
        NmSource::longest_trajectory(self.scorer)
    }

    fn nm_all_singulars(&self) -> Vec<f64> {
        self.scorer.nm_all_singulars()
    }

    fn score_batch(&self, batch: &[Pattern]) -> Vec<f64> {
        if batch.iter().all(|p| !self.memo.contains_key(p)) {
            // The growth loop's case: nothing memoized, one batch —
            // bit-identical to scoring through the plain scorer.
            return indexed_score(self.scorer, batch);
        }
        let misses: Vec<Pattern> = batch
            .iter()
            .filter(|p| !self.memo.contains_key(*p))
            .cloned()
            .collect();
        let mut scored = indexed_score(self.scorer, &misses).into_iter();
        batch
            .iter()
            .map(|p| match self.memo.get(p) {
                Some(&nm) => nm,
                None => scored.next().expect("one score per miss"),
            })
            .collect()
    }

    fn seed_patterns(&self, min_len: usize, k: usize) -> Vec<Pattern> {
        seed_patterns(self.scorer, min_len, k)
    }

    fn evaluations(&self) -> u64 {
        self.scorer.evaluations()
    }

    fn degraded_rescores(&self) -> u64 {
        self.scorer.degraded_rescores()
    }

    fn scorer_stats(&self) -> crate::ScorerStats {
        self.scorer.stats()
    }
}

/// The arrival-delta source: the streaming ledger scores every tracked
/// pattern against a one-trajectory dataset, where most patterns never
/// come near the newcomer and resolve to the floor constant. Corridor
/// skipping (once this wrapper's private superpower, as
/// `score_batch_sparse`) is now how every batch scores, so this is a thin
/// alias over the shared [`indexed_score`] funnel, kept for the streaming
/// call sites' readability.
pub struct SparseSource<'s, 'a>(&'s Scorer<'a>);

impl<'s, 'a> SparseSource<'s, 'a> {
    /// Wraps `scorer`.
    pub fn new(scorer: &'s Scorer<'a>) -> SparseSource<'s, 'a> {
        SparseSource(scorer)
    }
}

impl NmSource for SparseSource<'_, '_> {
    fn grid(&self) -> &Grid {
        self.0.grid()
    }

    fn longest_trajectory(&self) -> usize {
        NmSource::longest_trajectory(self.0)
    }

    fn nm_all_singulars(&self) -> Vec<f64> {
        self.0.nm_all_singulars()
    }

    fn score_batch(&self, batch: &[Pattern]) -> Vec<f64> {
        indexed_score(self.0, batch)
    }

    fn seed_patterns(&self, min_len: usize, k: usize) -> Vec<Pattern> {
        seed_patterns(self.0, min_len, k)
    }

    fn evaluations(&self) -> u64 {
        self.0.evaluations()
    }

    fn degraded_rescores(&self) -> u64 {
        self.0.degraded_rescores()
    }

    fn scorer_stats(&self) -> crate::ScorerStats {
        self.0.stats()
    }
}

/// Why a seed set was rejected by [`init_state`] (and therefore by
/// [`crate::mine_seeded`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SeedError {
    /// The mining parameters were invalid.
    Params(crate::params::ParamsError),
    /// The seed does not contain every singular pattern of the grid —
    /// without them neither `nm_best` nor Lemma-1 reachability holds.
    MissingSingulars {
        /// Singular seeds provided.
        have: usize,
        /// Grid cells (singulars required).
        need: usize,
    },
    /// The same pattern appears twice in the seed.
    Duplicate(String),
    /// A seed NM is NaN or infinite.
    NonFinite(String),
    /// A seed pattern references a cell outside the grid.
    CellOutOfRange(String),
}

impl fmt::Display for SeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedError::Params(e) => write!(f, "invalid mining parameters: {e}"),
            SeedError::MissingSingulars { have, need } => write!(
                f,
                "seed must contain every singular pattern: have {have}, grid has {need} cells"
            ),
            SeedError::Duplicate(p) => write!(f, "duplicate seed pattern {p}"),
            SeedError::NonFinite(p) => write!(f, "seed pattern {p} has a non-finite NM"),
            SeedError::CellOutOfRange(p) => {
                write!(f, "seed pattern {p} references a cell outside the grid")
            }
        }
    }
}

impl std::error::Error for SeedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeedError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::params::ParamsError> for SeedError {
    fn from(e: crate::params::ParamsError) -> Self {
        SeedError::Params(e)
    }
}

/// Pattern interner: dense u32 ids for cheap pair bookkeeping.
#[derive(Default)]
pub(crate) struct Store {
    patterns: Vec<Pattern>,
    ids: FxHashMap<Pattern, u32>,
    nms: Vec<f64>,
    lens: Vec<u32>,
}

impl Store {
    pub(crate) fn add(&mut self, p: Pattern, nm: f64) -> u32 {
        debug_assert!(!self.ids.contains_key(&p));
        let id = self.patterns.len() as u32;
        self.lens.push(p.len() as u32);
        self.nms.push(nm);
        self.ids.insert(p.clone(), id);
        self.patterns.push(p);
        id
    }

    #[inline]
    pub(crate) fn id_of(&self, p: &Pattern) -> Option<u32> {
        self.ids.get(p).copied()
    }

    #[inline]
    pub(crate) fn get(&self, id: u32) -> &Pattern {
        &self.patterns[id as usize]
    }

    #[inline]
    pub(crate) fn nm(&self, id: u32) -> f64 {
        self.nms[id as usize]
    }

    #[inline]
    pub(crate) fn len(&self, id: u32) -> u32 {
        self.lens[id as usize]
    }

    /// Number of interned patterns (ids are `0..count`).
    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.patterns.len()
    }

    /// Patterns in id order — the checkpoint codec serializes (and
    /// re-adds) them in exactly this order so ids survive a round-trip.
    #[inline]
    pub(crate) fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }
}

/// Everything the growing process carries between levels. A checkpoint is
/// a serialization of this struct; [`run_growth`] advances it one level at
/// a time so mining can stop and resume at any level boundary with
/// bit-identical results.
pub(crate) struct GrowthState {
    /// Every pattern ever scored (dense ids, with NM and length).
    pub(crate) store: Store,
    /// The active candidate set Q (ids into the store).
    pub(crate) q: FxHashSet<u32>,
    /// Ordered pairs already attempted: `(a << 32) | b`.
    pub(crate) tried: FxHashSet<u64>,
    /// ω over qualifying patterns (length ≥ min_len).
    pub(crate) qual_tracker: ThresholdTracker,
    /// Cached `qual_tracker.omega()` as of the last level boundary.
    pub(crate) omega: f64,
    /// Current high set `H` (NM ≥ ω).
    pub(crate) high: FxHashSet<u32>,
    /// Highs whose (h × Q) pairs have been fully enumerated.
    pub(crate) enumerated_high: FxHashSet<u32>,
    /// Q members not yet enumerated as the "any" side of a pair, in
    /// insertion order.
    pub(crate) fresh: Vec<u32>,
    /// Best NM overall (attained by a singular, by min-max).
    pub(crate) nm_best: f64,
    /// Counters so far (`stats.iterations` is the level number).
    pub(crate) stats: MiningStats,
    /// Whether the high set reached a fixpoint.
    pub(crate) converged: bool,
}

/// The outcome of mining nothing (empty dataset or empty grid).
pub(crate) fn empty_outcome() -> MiningOutcome {
    MiningOutcome {
        patterns: Vec::new(),
        groups: Vec::new(),
        stats: MiningStats::default(),
        scorer: crate::ScorerStats::default(),
    }
}

/// The effective maximum pattern length for `source`'s data: patterns
/// longer than the longest trajectory only ever score the floor, so
/// growing past it is wasted.
pub(crate) fn effective_max_len<S: NmSource + ?Sized>(source: &S, params: &MiningParams) -> usize {
    effective_max_len_from(params, source.longest_trajectory())
}

/// [`effective_max_len`] for callers that already know the longest
/// trajectory length (e.g. a streaming window) and don't want to build a
/// scorer just to ask: `min(params.max_len, longest.max(1))`.
pub fn effective_max_len_from(params: &MiningParams, longest: usize) -> usize {
    params.max_len.min(longest.max(1))
}

/// Level 0 of the growing process, for both entry modes:
///
/// - **empty `seed`** — a from-scratch (batch) mine: score every singular
///   pattern and seed ω from them;
/// - **non-empty `seed`** — seeded re-growth: the validated seed becomes
///   the store and the whole of `Q` with an *empty* pair memo, so growth
///   re-enumerates every pair against current thresholds (see
///   [`crate::mine_seeded`] for the exactness argument).
///
/// Both modes then share the same tail verbatim: the `min_len > 1`
/// bootstrap (seed ω with genuine length-`min_len` windows read off the
/// data — their true NMs are valid lower-bound evidence for ω, so pruning
/// stays exact), the initial high set `H = {NM ≥ ω}`, and everything
/// marked fresh. Before this function existed the two modes carried
/// duplicate copies of that tail; now a threshold decision at level 0
/// cannot differ between them.
pub(crate) fn init_state<S: NmSource + ?Sized>(
    source: &S,
    params: &MiningParams,
    seed: &[MinedPattern],
) -> Result<GrowthState, SeedError> {
    let grid = source.grid();
    let mut stats = MiningStats::default();
    let degraded_base = source.degraded_rescores();

    let mut store = Store::default();
    let mut q: FxHashSet<u32> = FxHashSet::default();

    // ω over *qualifying* patterns (length ≥ min_len). §5: "The NM
    // threshold ω is set to the minimum NM of the set of k patterns with
    // the most NM of length at least d."
    let mut qual_tracker = ThresholdTracker::new(params.k);
    let mut nm_best = f64::NEG_INFINITY;

    if seed.is_empty() {
        // Initialization: all singular patterns.
        let singular_nms = source.nm_all_singulars();
        stats.nm_evaluations += grid.num_cells() as u64;
        for cell in grid.cells() {
            let nm = singular_nms[cell.index()];
            let id = store.add(Pattern::singular(cell), nm);
            q.insert(id);
            if params.min_len <= 1 {
                qual_tracker.offer(nm);
            }
            nm_best = nm_best.max(nm);
        }
    } else {
        let num_cells = grid.num_cells() as usize;
        let max_len = effective_max_len(source, params);
        let mut singulars_seen = 0usize;
        for m in seed {
            if !m.nm.is_finite() {
                return Err(SeedError::NonFinite(m.pattern.to_string()));
            }
            if m.pattern.cells().iter().any(|c| c.index() >= num_cells) {
                return Err(SeedError::CellOutOfRange(m.pattern.to_string()));
            }
            if m.pattern.is_singular() {
                singulars_seen += 1;
                nm_best = nm_best.max(m.nm);
            } else if m.pattern.len() > max_len {
                // The batch miner never generates patterns longer than the
                // longest trajectory; keeping them would perturb
                // tie-breaking.
                continue;
            }
            if store.id_of(&m.pattern).is_some() {
                return Err(SeedError::Duplicate(m.pattern.to_string()));
            }
            let id = store.add(m.pattern.clone(), m.nm);
            q.insert(id);
            if m.pattern.len() >= params.min_len {
                qual_tracker.offer(m.nm);
            }
        }
        if singulars_seen != num_cells {
            return Err(SeedError::MissingSingulars {
                have: singulars_seen,
                need: num_cells,
            });
        }
    }

    // min_len > 1 bootstrap: until k qualifying patterns exist, ω is -∞
    // and nothing can be pruned, which explodes on large grids. Seed the
    // tracker with genuine length-min_len patterns read directly off the
    // data (most frequent discretized windows) — their true NMs are valid
    // lower-bound evidence for ω, so pruning stays exact.
    if params.min_len > 1 {
        let seeds: Vec<Pattern> = source
            .seed_patterns(params.min_len, params.k)
            .into_iter()
            .filter(|p| store.id_of(p).is_none())
            .collect();
        let nms = source.score_batch(&seeds);
        stats.candidates_scored += seeds.len() as u64;
        stats.nm_evaluations += seeds.len() as u64;
        for (p, nm) in seeds.into_iter().zip(nms) {
            let id = store.add(p, nm);
            q.insert(id);
            qual_tracker.offer(nm);
        }
    }
    stats.degraded_shard_rescores += source.degraded_rescores() - degraded_base;

    let omega = qual_tracker.omega();
    let high: FxHashSet<u32> = q
        .iter()
        .copied()
        .filter(|&id| store.nm(id) >= omega)
        .collect();
    let fresh: Vec<u32> = {
        let mut v: Vec<u32> = q.iter().copied().collect();
        v.sort_unstable();
        v
    };

    Ok(GrowthState {
        store,
        q,
        tried: FxHashSet::default(),
        qual_tracker,
        omega,
        high,
        enumerated_high: FxHashSet::default(),
        fresh,
        nm_best,
        stats,
        converged: false,
    })
}

/// Runs growth levels until the high set converges or `max_iters` is
/// reached, calling `on_level` after every completed level (this is the
/// checkpoint hook). `state.stats.iterations` counts completed levels, so
/// resuming a restored state continues exactly where it stopped.
pub(crate) fn run_growth<S: NmSource + ?Sized, E>(
    source: &S,
    params: &MiningParams,
    state: &mut GrowthState,
    mut on_level: impl FnMut(&GrowthState) -> Result<(), E>,
) -> Result<(), E> {
    while !state.converged && state.stats.iterations < params.max_iters {
        grow_level(source, params, state);
        on_level(state)?;
    }
    Ok(())
}

/// One growing level: enumerate new pairs, bound-prune, batch-score,
/// re-threshold, re-mark, and prune Q.
pub(crate) fn grow_level<S: NmSource + ?Sized>(
    source: &S,
    params: &MiningParams,
    state: &mut GrowthState,
) {
    let max_len = effective_max_len(source, params);
    let degraded_base = source.degraded_rescores();
    state.stats.iterations += 1;

    let fresh_vec: Vec<u32> = {
        let mut v: Vec<u32> = state
            .fresh
            .iter()
            .copied()
            .filter(|id| state.q.contains(id))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut fresh_high_vec: Vec<u32> = state
        .high
        .iter()
        .copied()
        .filter(|id| !state.enumerated_high.contains(id))
        .collect();
    fresh_high_vec.sort_unstable();
    let mut high_vec: Vec<u32> = state.high.iter().copied().collect();
    high_vec.sort_unstable();
    let mut q_vec: Vec<u32> = state.q.iter().copied().collect();
    q_vec.sort_unstable();

    let mut next_fresh: Vec<u32> = Vec::new();

    // Candidates surviving the bound check are *collected* here and
    // scored in one batch after pair enumeration. This is exact: ω and
    // τ are deliberately read once per iteration (the seed code also
    // refreshed them only after enumeration), so no pruning decision
    // inside the loop can depend on a score produced within it.
    let mut pending: Vec<Pattern> = Vec::new();
    let mut pending_ids: FxHashMap<Pattern, usize> = FxHashMap::default();

    // One candidate pair (ordered): bound-check, dedupe, enqueue.
    macro_rules! try_pair {
        ($a:expr, $b:expr) => {{
            let a: u32 = $a;
            let b: u32 = $b;
            let la = state.store.len(a);
            let lb = state.store.len(b);
            let total_len = (la + lb) as usize;
            if total_len <= max_len {
                let key = ((a as u64) << 32) | b as u64;
                if state.tried.insert(key) {
                    state.stats.candidates_generated += 1;
                    // Candidate shapes high·singular / singular·high
                    // are the Lemma-1 building blocks: prune them
                    // against the composability threshold τ, others
                    // against ω.
                    let one_ext_shape = (lb == 1 && state.high.contains(&a))
                        || (la == 1 && state.high.contains(&b));
                    let mut pruned = false;
                    if params.use_bound_prune {
                        let bound = weighted_mean_bound(
                            state.store.nm(a),
                            la as usize,
                            state.store.nm(b),
                            lb as usize,
                        );
                        let threshold = if one_ext_shape {
                            tau(total_len, state.omega, state.nm_best, max_len)
                        } else {
                            state.omega
                        };
                        if bound < threshold {
                            state.stats.candidates_bound_pruned += 1;
                            pruned = true;
                        }
                    }
                    if !pruned {
                        let cand = state.store.get(a).concat(state.store.get(b));
                        match state.store.id_of(&cand) {
                            Some(id) => {
                                if state.q.insert(id) {
                                    next_fresh.push(id);
                                }
                            }
                            None => {
                                // Defer scoring to the per-iteration
                                // batch; dedupe within the batch so a
                                // candidate reachable through several
                                // pairs is scored once.
                                if !pending_ids.contains_key(&cand) {
                                    pending_ids.insert(cand.clone(), pending.len());
                                    pending.push(cand);
                                }
                            }
                        }
                    }
                }
            }
        }};
    }

    // New Q members × current highs, both orders.
    for &h in &high_vec {
        for &x in &fresh_vec {
            try_pair!(h, x);
            try_pair!(x, h);
        }
    }
    // Newly promoted highs × all of Q, both orders.
    for &h in &fresh_high_vec {
        for &x in &q_vec {
            try_pair!(h, x);
            try_pair!(x, h);
        }
    }
    state.enumerated_high.extend(fresh_high_vec);

    // Batch-score everything enqueued this iteration (in enumeration
    // order, so store ids — and therefore the whole run — are
    // identical to one-at-a-time scoring).
    let nms = source.score_batch(&pending);
    state.stats.candidates_scored += pending.len() as u64;
    state.stats.nm_evaluations += pending.len() as u64;
    for (cand, nm) in pending.into_iter().zip(nms) {
        let total_len = cand.len();
        let id = state.store.add(cand, nm);
        if total_len >= params.min_len {
            state.qual_tracker.offer(nm);
        }
        state.q.insert(id);
        next_fresh.push(id);
    }

    // Re-threshold and re-mark.
    state.omega = state.qual_tracker.omega();
    let high_new: FxHashSet<u32> = state
        .q
        .iter()
        .copied()
        .filter(|&id| state.store.nm(id) >= state.omega)
        .collect();

    // Prune low patterns: keep only 1-extension lows above τ.
    if params.use_one_extension_prune {
        let high_patterns: FxHashSet<Pattern> = high_new
            .iter()
            .map(|&id| state.store.get(id).clone())
            .collect();
        let omega_snapshot = state.omega;
        let nm_best = state.nm_best;
        let store = &state.store;
        state.q.retain(|&id| {
            if high_new.contains(&id) {
                return true;
            }
            if !is_one_extension(store.get(id), &high_patterns) {
                return false;
            }
            !params.use_bound_prune
                || store.nm(id) >= tau(store.len(id) as usize, omega_snapshot, nm_best, max_len)
        });
    }

    state.converged = high_new == state.high;
    state.high = high_new;
    state.fresh = next_fresh;
    state.stats.degraded_shard_rescores += source.degraded_rescores() - degraded_base;
}

/// Extracts the final top-k answer (and groups) from a finished — or
/// deliberately interrupted — growth state.
pub(crate) fn finish<S: NmSource + ?Sized>(
    source: &S,
    params: &MiningParams,
    mut state: GrowthState,
) -> MiningOutcome {
    state.stats.final_queue_size = state.q.len();
    state.stats.nm_evaluations = source.evaluations().max(state.stats.nm_evaluations);
    let store = &state.store;

    // Final answer: best k qualifying patterns over everything scored.
    let mut order: Vec<u32> = (0..store.count() as u32)
        .filter(|&id| store.len(id) as usize >= params.min_len)
        .collect();
    order.sort_unstable_by(|&a, &b| {
        store
            .nm(b)
            .partial_cmp(&store.nm(a))
            .expect("NM values are finite")
            .then_with(|| store.get(a).cmp(store.get(b)))
    });
    order.truncate(params.k);
    let qualifying: Vec<MinedPattern> = order
        .into_iter()
        .map(|id| MinedPattern::new(store.get(id).clone(), store.nm(id)))
        .collect();

    let groups = match params.gamma {
        Some(gamma) => discover_groups(&qualifying, source.grid(), gamma),
        None => Vec::new(),
    };

    MiningOutcome {
        patterns: qualifying,
        groups,
        stats: state.stats,
        scorer: source.scorer_stats(),
    }
}

/// Harvests up to `k` seed patterns of exactly `min_len` positions from
/// the data itself: each trajectory's snapshot means are discretized to
/// cells and every contiguous window becomes a candidate; the most
/// frequent distinct windows are returned (deterministic order).
///
/// Used to bootstrap the qualifying threshold ω when mining with a
/// minimum-length constraint (§5) — the seeds are genuine patterns, so the
/// ω they establish is a valid (exact) pruning threshold. The baseline
/// miners share this bootstrap for a fair comparison.
pub fn seed_patterns(scorer: &Scorer<'_>, min_len: usize, k: usize) -> Vec<Pattern> {
    let grid = scorer.grid();
    let mut counts: FxHashMap<Vec<trajgeo::CellId>, u32> = FxHashMap::default();
    for traj in scorer.data().iter() {
        if traj.len() < min_len {
            continue;
        }
        let cells: Vec<trajgeo::CellId> = traj
            .points()
            .iter()
            .map(|sp| grid.locate(sp.mean))
            .collect();
        for w in cells.windows(min_len) {
            *counts.entry(w.to_vec()).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(Vec<trajgeo::CellId>, u32)> = counts.into_iter().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(k)
        .map(|(cells, _)| Pattern::new(cells).expect("windows are non-empty"))
        .collect()
}

/// The composability threshold τ for a (potential) low building block of
/// length `len`: a pattern below τ cannot participate in any high pattern
/// of length ≤ `max_len` (see the [`crate::algorithm`] module docs). `-∞`
/// while ω is unset.
pub(crate) fn tau(len: usize, omega: f64, nm_best: f64, max_len: usize) -> f64 {
    if !omega.is_finite() {
        return f64::NEG_INFINITY;
    }
    let slack = max_len.saturating_sub(len) as f64;
    omega + slack * (omega - nm_best) / len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{Dataset, SnapshotPoint, Trajectory};
    use trajgeo::{BBox, Point2};

    fn sweep_data(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    #[test]
    fn tau_is_no_higher_than_omega() {
        let omega = -2.0;
        let best = -0.5;
        for len in 1..8 {
            let t = tau(len, omega, best, 8);
            assert!(t <= omega + 1e-12, "tau({len}) = {t} > omega");
        }
        // Unset omega disables the threshold.
        assert_eq!(tau(3, f64::NEG_INFINITY, best, 8), f64::NEG_INFINITY);
    }

    #[test]
    fn sparse_source_matches_dense_scoring_bit_for_bit() {
        let (data, grid) = sweep_data(3, 0.04);
        let params = MiningParams::new(4, 0.1).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let patterns: Vec<Pattern> = grid
            .cells()
            .map(Pattern::singular)
            .chain(grid.cells().map(|c| {
                Pattern::singular(c).concat(&Pattern::singular(trajgeo::CellId(
                    (c.0 + 1) % grid.num_cells(),
                )))
            }))
            .collect();
        let dense = NmSource::score_batch(&scorer, &patterns);
        let sparse = SparseSource::new(&scorer).score_batch(&patterns);
        assert_eq!(dense.len(), sparse.len());
        for (a, b) in dense.iter().zip(&sparse) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn seeded_source_answers_from_the_memo() {
        let (data, grid) = sweep_data(4, 0.05);
        let params = MiningParams::new(3, 0.1).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let p0 = Pattern::singular(trajgeo::CellId(8));
        let p1 = Pattern::singular(trajgeo::CellId(9));
        let memo_value = -123.456;
        let seed = vec![MinedPattern::new(p0.clone(), memo_value)];
        let source = SeededSource::new(&scorer, &seed);
        let evals_before = NmSource::evaluations(&source);
        let out = source.score_batch(&[p0.clone(), p1.clone()]);
        // The memoized pattern comes back verbatim; the miss is scored
        // against the data (and counted), in order.
        assert_eq!(out[0].to_bits(), memo_value.to_bits());
        assert_eq!(
            out[1].to_bits(),
            Scorer::score_batch(&scorer, std::slice::from_ref(&p1))[0].to_bits()
        );
        assert_eq!(NmSource::evaluations(&source) - evals_before, 2);
    }

    #[test]
    fn batch_init_rejects_nothing_and_seeds_omega() {
        let (data, grid) = sweep_data(5, 0.05);
        let params = MiningParams::new(4, 0.1).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let state = init_state(&scorer, &params, &[]).unwrap();
        assert_eq!(state.store.count(), grid.num_cells() as usize);
        assert!(state.omega.is_finite());
        assert!(!state.high.is_empty());
        assert_eq!(state.fresh.len(), state.q.len());
    }

    #[test]
    fn seeded_init_shares_the_batch_tail() {
        // A seed of exactly the singulars must produce a level-0 state
        // identical (store contents, ω, high set, fresh) to batch init.
        let (data, grid) = sweep_data(6, 0.04);
        let params = MiningParams::new(5, 0.1).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let batch = init_state(&scorer, &params, &[]).unwrap();
        let singular_nms = Scorer::nm_all_singulars(&scorer);
        let seed: Vec<MinedPattern> = grid
            .cells()
            .map(|c| MinedPattern::new(Pattern::singular(c), singular_nms[c.index()]))
            .collect();
        let seeded = init_state(&scorer, &params, &seed).unwrap();
        assert_eq!(batch.store.count(), seeded.store.count());
        for id in 0..batch.store.count() as u32 {
            assert_eq!(batch.store.get(id), seeded.store.get(id));
            assert_eq!(batch.store.nm(id).to_bits(), seeded.store.nm(id).to_bits());
        }
        assert_eq!(batch.omega.to_bits(), seeded.omega.to_bits());
        assert_eq!(batch.high, seeded.high);
        assert_eq!(batch.fresh, seeded.fresh);
        assert_eq!(batch.nm_best.to_bits(), seeded.nm_best.to_bits());
    }
}
