//! Versioned checkpoint files for interruptible mining runs.
//!
//! After every growth level the [`crate::Miner`] can serialize the full
//! [`GrowthState`] — candidate set Q, pair memo, threshold ω tracker,
//! current high set, counters — to a small text file, and
//! [`crate::Miner`]'s resume path restores it so mining continues exactly
//! where it stopped. The format is dependency-free (like the CSV codec):
//! line-based text, one section per state field, with every `f64` written
//! as its 16-digit hex bit pattern so round-trips are bit-exact.
//!
//! ```text
//! trajpattern-checkpoint v1
//! fingerprint <k> <delta> <min_prob> <min_len> <max_len> <bound> <one_ext> <traj> <snapshots> <cells>
//! omega <hex64>
//! nm_best <hex64>
//! converged <0|1>
//! stats <iterations> <generated> <scored> <bound_pruned> <queue> <nm_evals> <degraded>
//! tracker <n> <hex64>…
//! patterns <n>
//! p <nm hex64> <cell>…           (× n, in store-id order)
//! q <n> <id>…
//! high <n> <id>…
//! enumerated <n> <id>…
//! fresh <n> <id>…
//! tried <n> <key>…
//! end
//! ```
//!
//! The fingerprint binds a checkpoint to the run configuration that wrote
//! it: resuming under different parameters, data, or grid would silently
//! produce garbage, so mismatches are rejected with
//! [`CheckpointError::Incompatible`]. `max_iters`, `threads`, and `gamma`
//! are deliberately *excluded* — they don't affect per-level state, and
//! excluding `max_iters` is what lets a run be interrupted early (low
//! `max_iters`) and resumed with the full budget. Loading validates every
//! value (finite NMs, in-range cell and pattern ids, ω consistent with the
//! tracker) so a corrupted file yields a typed [`CheckpointError::Format`]
//! instead of a panic deep in the mining loop.

use crate::algorithm::MiningStats;
use crate::engine::{GrowthState, Store};
use crate::params::MiningParams;
use crate::pattern::Pattern;
use crate::topk::ThresholdTracker;
use std::fmt;
use std::path::{Path, PathBuf};
use trajdata::Dataset;
use trajgeo::fxhash::FxHashSet;
use trajgeo::{CellId, Grid};

/// First line of every v1 checkpoint file.
pub const VERSION_LINE: &str = "trajpattern-checkpoint v1";

/// Errors reading or writing a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The operating-system error message.
        message: String,
    },
    /// The file exists but its contents are not a valid checkpoint.
    Format {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file's version line is not one this build understands.
    Version {
        /// The version line actually found.
        found: String,
    },
    /// The checkpoint was written under a different configuration
    /// (parameters, dataset, or grid) and cannot be resumed here.
    Incompatible {
        /// The first fingerprint field that differs.
        field: &'static str,
        /// Whether the mismatch is in the mining *parameters* or in the
        /// *data* (dataset / grid) half of the fingerprint.
        kind: FingerprintKind,
        /// The mismatching value recorded in the checkpoint file.
        checkpoint_value: String,
        /// The corresponding value of the current run.
        run_value: String,
    },
}

/// Which half of the fingerprint a field belongs to — lets resume errors
/// say *what category* of mismatch occurred, so a user knows whether to
/// fix their flags (params) or their input file (data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FingerprintKind {
    /// A mining parameter (`k`, `δ`, `min_prob`, length bounds, prunings).
    Params,
    /// The dataset or grid (trajectory count, snapshot count, grid cells).
    Data,
}

impl fmt::Display for FingerprintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FingerprintKind::Params => write!(f, "params"),
            FingerprintKind::Data => write!(f, "data"),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O error at {}: {message}", path.display())
            }
            CheckpointError::Format { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
            CheckpointError::Version { found } => {
                write!(
                    f,
                    "unsupported checkpoint version: '{found}' (expected '{VERSION_LINE}')"
                )
            }
            CheckpointError::Incompatible {
                field,
                kind,
                checkpoint_value,
                run_value,
            } => {
                write!(
                    f,
                    "checkpoint is incompatible with this run: {kind} fingerprint \
                     field '{field}' differs (checkpoint has {checkpoint_value}, \
                     this run has {run_value})"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The run configuration a checkpoint is bound to. Two runs with equal
/// fingerprints walk identical growth levels, so a checkpoint from one can
/// seamlessly continue in the other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Fingerprint {
    k: usize,
    delta_bits: u64,
    min_prob_bits: u64,
    min_len: usize,
    max_len: usize,
    bound_prune: bool,
    one_ext_prune: bool,
    num_trajectories: usize,
    total_snapshots: usize,
    grid_cells: u32,
}

impl Fingerprint {
    pub(crate) fn new(params: &MiningParams, data: &Dataset, grid: &Grid) -> Fingerprint {
        Fingerprint {
            k: params.k,
            delta_bits: params.delta.to_bits(),
            min_prob_bits: params.min_prob.to_bits(),
            min_len: params.min_len,
            max_len: params.max_len,
            bound_prune: params.use_bound_prune,
            one_ext_prune: params.use_one_extension_prune,
            num_trajectories: data.len(),
            total_snapshots: data.iter().map(|t| t.len()).sum(),
            grid_cells: grid.num_cells(),
        }
    }
}

use trajio::f64_hex as hex;

fn err(line: usize, message: impl Into<String>) -> CheckpointError {
    CheckpointError::Format {
        line,
        message: message.into(),
    }
}

/// Serializes `state` to the v1 text format.
pub(crate) fn encode(state: &GrowthState, fp: &Fingerprint) -> String {
    let mut out = String::new();
    out.push_str(VERSION_LINE);
    out.push('\n');
    out.push_str(&format!(
        "fingerprint {} {} {} {} {} {} {} {} {} {}\n",
        fp.k,
        trajio::bits_hex(fp.delta_bits),
        trajio::bits_hex(fp.min_prob_bits),
        fp.min_len,
        fp.max_len,
        fp.bound_prune as u8,
        fp.one_ext_prune as u8,
        fp.num_trajectories,
        fp.total_snapshots,
        fp.grid_cells,
    ));
    out.push_str(&format!("omega {}\n", hex(state.omega)));
    out.push_str(&format!("nm_best {}\n", hex(state.nm_best)));
    out.push_str(&format!("converged {}\n", state.converged as u8));
    out.push_str("stats");
    for v in state.stats.persisted_values() {
        out.push_str(&format!(" {v}"));
    }
    out.push('\n');
    let tracker_values = state.qual_tracker.values();
    out.push_str(&format!("tracker {}", tracker_values.len()));
    for v in &tracker_values {
        out.push(' ');
        out.push_str(&hex(*v));
    }
    out.push('\n');
    out.push_str(&format!("patterns {}\n", state.store.count()));
    for (id, p) in state.store.patterns().iter().enumerate() {
        out.push_str(&format!("p {}", hex(state.store.nm(id as u32))));
        for c in p.cells() {
            out.push_str(&format!(" {}", c.0));
        }
        out.push('\n');
    }
    push_id_section(&mut out, "q", state.q.iter().copied());
    push_id_section(&mut out, "high", state.high.iter().copied());
    push_id_section(
        &mut out,
        "enumerated",
        state.enumerated_high.iter().copied(),
    );
    // `fresh` is ordered — written verbatim, NOT sorted.
    out.push_str(&format!("fresh {}", state.fresh.len()));
    for id in &state.fresh {
        out.push_str(&format!(" {id}"));
    }
    out.push('\n');
    let mut tried: Vec<u64> = state.tried.iter().copied().collect();
    tried.sort_unstable();
    out.push_str(&format!("tried {}", tried.len()));
    for key in &tried {
        out.push_str(&format!(" {key}"));
    }
    out.push('\n');
    out.push_str("end\n");
    out
}

/// Writes one unordered id-set section, sorted for deterministic output.
fn push_id_section(out: &mut String, name: &str, ids: impl Iterator<Item = u32>) {
    let mut v: Vec<u32> = ids.collect();
    v.sort_unstable();
    out.push_str(&format!("{name} {}", v.len()));
    for id in &v {
        out.push_str(&format!(" {id}"));
    }
    out.push('\n');
}

/// Advances the strict cursor, mapping end-of-input to a positional
/// format error (v1 treats blank lines as content, so every line counts).
fn next_line<'a>(cur: &mut trajio::LineCursor<'a>) -> Result<&'a str, CheckpointError> {
    cur.next_line()
        .ok_or_else(|| err(cur.line(), "unexpected end of file"))
}

fn parse_hex_f64(s: &str, line: usize) -> Result<f64, CheckpointError> {
    trajio::f64_from_hex(s).map_err(|e| err(line, e.message()))
}

fn parse_int<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, CheckpointError> {
    trajio::parse_int(s, what).map_err(|e| err(line, e.message()))
}

/// Splits a `name n v1 … vn` section line, verifying the tag and count.
fn section<'a>(text: &'a str, tag: &str, line: usize) -> Result<Vec<&'a str>, CheckpointError> {
    trajio::section(text, tag).map_err(|e| err(line, e.message()))
}

/// Parses and fully validates a v1 checkpoint, rebuilding the growth
/// state. `expected` is the fingerprint of the *current* run; any mismatch
/// is rejected before state is rebuilt.
pub(crate) fn decode(text: &str, expected: &Fingerprint) -> Result<GrowthState, CheckpointError> {
    let mut cur = trajio::LineCursor::strict(text);

    let version = cur.next_line().ok_or(CheckpointError::Version {
        found: String::new(),
    })?;
    if version.trim() != VERSION_LINE {
        return Err(CheckpointError::Version {
            found: version.trim().to_string(),
        });
    }

    // Fingerprint compatibility, field by field for a precise error.
    let fp_line = next_line(&mut cur)?;
    let fline = cur.line();
    let f: Vec<&str> = fp_line.split_whitespace().collect();
    if f.len() != 11 || f[0] != "fingerprint" {
        return Err(err(fline, "malformed fingerprint line"));
    }
    let found = Fingerprint {
        k: parse_int(f[1], fline, "k")?,
        delta_bits: u64::from_str_radix(f[2], 16).map_err(|_| err(fline, "bad delta bits"))?,
        min_prob_bits: u64::from_str_radix(f[3], 16)
            .map_err(|_| err(fline, "bad min_prob bits"))?,
        min_len: parse_int(f[4], fline, "min_len")?,
        max_len: parse_int(f[5], fline, "max_len")?,
        bound_prune: f[6] == "1",
        one_ext_prune: f[7] == "1",
        num_trajectories: parse_int(f[8], fline, "trajectory count")?,
        total_snapshots: parse_int(f[9], fline, "snapshot count")?,
        grid_cells: parse_int(f[10], fline, "grid cell count")?,
    };
    // Render a bit pattern as its f64 value for human-readable errors.
    let bits = |b: u64| format!("{}", f64::from_bits(b));
    let checks: [(&'static str, FingerprintKind, bool, String, String); 10] = [
        (
            "k",
            FingerprintKind::Params,
            found.k == expected.k,
            found.k.to_string(),
            expected.k.to_string(),
        ),
        (
            "delta",
            FingerprintKind::Params,
            found.delta_bits == expected.delta_bits,
            bits(found.delta_bits),
            bits(expected.delta_bits),
        ),
        (
            "min_prob",
            FingerprintKind::Params,
            found.min_prob_bits == expected.min_prob_bits,
            bits(found.min_prob_bits),
            bits(expected.min_prob_bits),
        ),
        (
            "min_len",
            FingerprintKind::Params,
            found.min_len == expected.min_len,
            found.min_len.to_string(),
            expected.min_len.to_string(),
        ),
        (
            "max_len",
            FingerprintKind::Params,
            found.max_len == expected.max_len,
            found.max_len.to_string(),
            expected.max_len.to_string(),
        ),
        (
            "bound pruning",
            FingerprintKind::Params,
            found.bound_prune == expected.bound_prune,
            found.bound_prune.to_string(),
            expected.bound_prune.to_string(),
        ),
        (
            "one-extension pruning",
            FingerprintKind::Params,
            found.one_ext_prune == expected.one_ext_prune,
            found.one_ext_prune.to_string(),
            expected.one_ext_prune.to_string(),
        ),
        (
            "trajectory count",
            FingerprintKind::Data,
            found.num_trajectories == expected.num_trajectories,
            found.num_trajectories.to_string(),
            expected.num_trajectories.to_string(),
        ),
        (
            "snapshot count",
            FingerprintKind::Data,
            found.total_snapshots == expected.total_snapshots,
            found.total_snapshots.to_string(),
            expected.total_snapshots.to_string(),
        ),
        (
            "grid cells",
            FingerprintKind::Data,
            found.grid_cells == expected.grid_cells,
            found.grid_cells.to_string(),
            expected.grid_cells.to_string(),
        ),
    ];
    for (field, kind, matches, checkpoint_value, run_value) in checks {
        if !matches {
            return Err(CheckpointError::Incompatible {
                field,
                kind,
                checkpoint_value,
                run_value,
            });
        }
    }

    let omega_line = next_line(&mut cur)?;
    let omega = match omega_line.split_whitespace().collect::<Vec<_>>()[..] {
        ["omega", bits] => parse_hex_f64(bits, cur.line())?,
        _ => return Err(err(cur.line(), "expected 'omega <hex>'")),
    };
    let nm_best_line = next_line(&mut cur)?;
    let nm_best = match nm_best_line.split_whitespace().collect::<Vec<_>>()[..] {
        ["nm_best", bits] => parse_hex_f64(bits, cur.line())?,
        _ => return Err(err(cur.line(), "expected 'nm_best <hex>'")),
    };
    if nm_best.is_nan() {
        return Err(err(cur.line(), "nm_best is NaN"));
    }
    let converged_line = next_line(&mut cur)?;
    let converged = match converged_line.split_whitespace().collect::<Vec<_>>()[..] {
        ["converged", "0"] => false,
        ["converged", "1"] => true,
        _ => return Err(err(cur.line(), "expected 'converged 0|1'")),
    };

    let stats_line = next_line(&mut cur)?;
    let sline = cur.line();
    let s: Vec<&str> = stats_line.split_whitespace().collect();
    let names = MiningStats::persisted_names();
    if s.len() != names.len() + 1 || s[0] != "stats" {
        return Err(err(sline, "malformed stats line"));
    }
    let mut values = Vec::with_capacity(names.len());
    for (tok, name) in s[1..].iter().zip(&names) {
        values.push(parse_int::<u64>(tok, sline, name)?);
    }
    let stats = MiningStats::from_persisted(&values).expect("length checked above");

    // Threshold tracker: rebuild from the retained values. Each must be
    // finite — `offer` (correctly) panics on NaN, so we reject first.
    let tracker_values = section(next_line(&mut cur)?, "tracker", cur.line())?;
    let tline = cur.line();
    if tracker_values.len() > expected.k {
        return Err(err(tline, "tracker holds more than k values"));
    }
    let mut qual_tracker = ThresholdTracker::new(expected.k);
    for v in tracker_values {
        let value = parse_hex_f64(v, tline)?;
        if !value.is_finite() {
            return Err(err(tline, "non-finite tracker value"));
        }
        qual_tracker.offer(value);
    }
    // ω must be exactly what the tracker reproduces — anything else means
    // the file was edited or corrupted.
    if qual_tracker.omega().to_bits() != omega.to_bits() {
        return Err(err(tline, "omega does not match tracker contents"));
    }

    // Pattern store, in id order.
    let patterns_header = next_line(&mut cur)?;
    let count: usize = match patterns_header.split_whitespace().collect::<Vec<_>>()[..] {
        ["patterns", n] => parse_int(n, cur.line(), "pattern count")?,
        _ => return Err(err(cur.line(), "expected 'patterns <n>'")),
    };
    let mut store = Store::default();
    for _ in 0..count {
        let row = next_line(&mut cur)?;
        let rline = cur.line();
        let mut fields = row.split_whitespace();
        match fields.next() {
            Some("p") => {}
            _ => return Err(err(rline, "expected 'p <nm> <cells…>'")),
        }
        let nm = parse_hex_f64(
            fields.next().ok_or_else(|| err(rline, "missing NM"))?,
            rline,
        )?;
        if !nm.is_finite() {
            return Err(err(rline, "non-finite pattern NM"));
        }
        let mut cells: Vec<CellId> = Vec::new();
        for c in fields {
            let cell: u32 = parse_int(c, rline, "cell id")?;
            if cell >= expected.grid_cells {
                return Err(err(
                    rline,
                    format!("cell {cell} outside grid of {} cells", expected.grid_cells),
                ));
            }
            cells.push(CellId(cell));
        }
        let pattern = Pattern::new(cells).ok_or_else(|| err(rline, "pattern with no positions"))?;
        if store.id_of(&pattern).is_some() {
            return Err(err(rline, "duplicate pattern in store"));
        }
        store.add(pattern, nm);
    }

    let parse_ids = |values: Vec<&str>, line: usize| -> Result<Vec<u32>, CheckpointError> {
        values
            .into_iter()
            .map(|v| {
                let id: u32 = parse_int(v, line, "pattern id")?;
                if id as usize >= count {
                    return Err(err(line, format!("pattern id {id} out of range")));
                }
                Ok(id)
            })
            .collect()
    };

    let q_ids = parse_ids(section(next_line(&mut cur)?, "q", cur.line())?, cur.line())?;
    let high_ids = parse_ids(
        section(next_line(&mut cur)?, "high", cur.line())?,
        cur.line(),
    )?;
    let enum_ids = parse_ids(
        section(next_line(&mut cur)?, "enumerated", cur.line())?,
        cur.line(),
    )?;
    let fresh = parse_ids(
        section(next_line(&mut cur)?, "fresh", cur.line())?,
        cur.line(),
    )?;

    let tried_values = section(next_line(&mut cur)?, "tried", cur.line())?;
    let kline = cur.line();
    let mut tried: FxHashSet<u64> = FxHashSet::default();
    for v in tried_values {
        let key: u64 = parse_int(v, kline, "pair key")?;
        let (a, b) = ((key >> 32) as usize, (key & 0xffff_ffff) as usize);
        if a >= count || b >= count {
            return Err(err(kline, format!("pair key {key} references unknown ids")));
        }
        tried.insert(key);
    }

    match next_line(&mut cur)? {
        l if l.trim() == "end" => {}
        _ => return Err(err(cur.line(), "expected 'end'")),
    }

    Ok(GrowthState {
        store,
        q: q_ids.into_iter().collect(),
        tried,
        qual_tracker,
        omega,
        high: high_ids.into_iter().collect(),
        enumerated_high: enum_ids.into_iter().collect(),
        fresh,
        nm_best,
        stats,
        converged,
    })
}

/// Atomically writes `state` to `path` (via a sibling `.tmp` file and
/// rename, so an interrupted save never leaves a torn checkpoint).
pub(crate) fn save(
    path: &Path,
    state: &GrowthState,
    fp: &Fingerprint,
) -> Result<(), CheckpointError> {
    let text = encode(state, fp);
    trajio::write_atomic(path, &text).map_err(|e| CheckpointError::Io {
        path: e.path,
        message: e.message,
    })
}

/// Reads, validates, and rebuilds a growth state from `path`.
pub(crate) fn load(path: &Path, expected: &Fingerprint) -> Result<GrowthState, CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    decode(&text, expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::init_state;
    use crate::scorer::Scorer;
    use trajdata::Trajectory;
    use trajgeo::{BBox, Point2};

    fn setup() -> (Dataset, Grid, MiningParams) {
        let data: Dataset = (0..6)
            .map(|j| {
                Trajectory::from_exact((0..4).map(move |i| {
                    Point2::new(0.125 + i as f64 * 0.25, 0.375 + (j % 2) as f64 * 0.25)
                }))
            })
            .collect();
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap().with_max_len(3).unwrap();
        (data, grid, params)
    }

    fn state_and_fp() -> (GrowthState, Fingerprint) {
        let (data, grid, params) = setup();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let mut state = init_state(&scorer, &params, &[]).unwrap();
        crate::engine::grow_level(&scorer, &params, &mut state);
        (state, Fingerprint::new(&params, &data, &grid))
    }

    #[test]
    fn round_trip_is_exact() {
        let (state, fp) = state_and_fp();
        let text = encode(&state, &fp);
        let back = decode(&text, &fp).unwrap();
        assert_eq!(back.store.count(), state.store.count());
        for id in 0..state.store.count() as u32 {
            assert_eq!(back.store.get(id), state.store.get(id));
            assert_eq!(back.store.nm(id).to_bits(), state.store.nm(id).to_bits());
        }
        assert_eq!(back.q, state.q);
        assert_eq!(back.high, state.high);
        assert_eq!(back.enumerated_high, state.enumerated_high);
        assert_eq!(back.fresh, state.fresh);
        assert_eq!(back.tried, state.tried);
        assert_eq!(back.omega.to_bits(), state.omega.to_bits());
        assert_eq!(back.nm_best.to_bits(), state.nm_best.to_bits());
        assert_eq!(back.converged, state.converged);
        assert_eq!(back.stats, state.stats);
        assert_eq!(back.qual_tracker.values(), state.qual_tracker.values());
    }

    #[test]
    fn rejects_unknown_version() {
        let (state, fp) = state_and_fp();
        let text = encode(&state, &fp).replace("v1", "v9");
        assert!(matches!(
            decode(&text, &fp),
            Err(CheckpointError::Version { .. })
        ));
        assert!(matches!(
            decode("", &fp),
            Err(CheckpointError::Version { .. })
        ));
    }

    #[test]
    fn rejects_incompatible_fingerprint() {
        let (state, fp) = state_and_fp();
        let text = encode(&state, &fp);
        let mut other = fp.clone();
        other.k += 1;
        let err = decode(&text, &other).map(|_| ()).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Incompatible {
                field: "k",
                kind: FingerprintKind::Params,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("params"), "{msg}");
        assert!(msg.contains(&fp.k.to_string()), "{msg}");
        assert!(msg.contains(&other.k.to_string()), "{msg}");
        let mut other = fp.clone();
        other.grid_cells = 99;
        let err = decode(&text, &other).map(|_| ()).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Incompatible {
                field: "grid cells",
                kind: FingerprintKind::Data,
                ..
            }
        ));
        assert!(err.to_string().contains("data"), "{err}");
    }

    #[test]
    fn rejects_truncated_file() {
        let (state, fp) = state_and_fp();
        let text = encode(&state, &fp);
        let cut = text.len() / 2;
        let truncated = &text[..cut];
        assert!(matches!(
            decode(truncated, &fp),
            Err(CheckpointError::Format { .. })
        ));
    }

    #[test]
    fn rejects_nan_nm_and_bad_cells() {
        let (state, fp) = state_and_fp();
        let text = encode(&state, &fp);
        // Swap one pattern NM for NaN bits.
        let nan_bits = trajio::f64_hex(f64::NAN);
        let poisoned: String = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("p ") {
                    let mut parts = rest.splitn(2, ' ');
                    let (_, cells) = (parts.next().unwrap(), parts.next().unwrap());
                    format!("p {nan_bits} {cells}\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert!(matches!(
            decode(&poisoned, &fp),
            Err(CheckpointError::Format { .. })
        ));
        // A cell id beyond the grid is caught too.
        let bad_cell = text.replacen("p ", "p_broken ", 1);
        assert!(decode(&bad_cell, &fp).is_err());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let (state, fp) = state_and_fp();
        let path =
            std::env::temp_dir().join(format!("trajpattern-ckpt-test-{}.txt", std::process::id()));
        save(&path, &state, &fp).unwrap();
        let back = load(&path, &fp).unwrap();
        assert_eq!(back.q, state.q);
        assert_eq!(back.stats, state.stats);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let (_, fp) = state_and_fp();
        let missing = Path::new("/nonexistent/trajpattern.ckpt");
        assert!(matches!(
            load(missing, &fp),
            Err(CheckpointError::Io { .. })
        ));
    }

    #[test]
    fn error_display_reads_well() {
        let e = CheckpointError::Format {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let v = CheckpointError::Version { found: "x".into() };
        assert!(v.to_string().contains("unsupported"));
        let i = CheckpointError::Incompatible {
            field: "k",
            kind: FingerprintKind::Params,
            checkpoint_value: "3".into(),
            run_value: "5".into(),
        };
        assert!(i.to_string().contains("'k'"));
        assert!(i.to_string().contains("params"));
        assert!(i.to_string().contains('3') && i.to_string().contains('5'));
    }
}
