//! One definition per counter set: composable run statistics.
//!
//! Three counter blocks travel with mining results — [`MiningStats`]
//! (the growing process), [`ScorerStats`] (the scoring engine), and
//! `trajstream`'s `StreamStats` (the sliding window). Each block is
//! rendered three ways:
//!
//! - **JSON**, through the serde derives on the struct (the
//!   `trajmine-snapshot/v1` schema `trajmine mine --json` writes and
//!   `trajmine serve` loads);
//! - **checkpoint lines**, as space-separated integers in field order
//!   (the `stats` line of `trajpattern-checkpoint v1`, the `stats` and
//!   `mstats` lines of `trajstream-checkpoint v2`);
//! - **Prometheus gauges**, via [`prometheus_counters`] on the trajserve
//!   `/metrics` endpoint.
//!
//! Before this module each rendering hand-listed the fields, so adding a
//! counter meant editing four files and hoping the orders stayed aligned.
//! The [`counter_stats!`] macro generates the struct *and* its renderings
//! from one token list: serde field names, checkpoint line order, and
//! Prometheus gauge names cannot drift apart because they are the same
//! list. On-disk formats are frozen by the golden-file tests — the macro
//! reproduces them byte-for-byte because field order *is* line order.
//!
//! Fields are marked `persisted` (written to / read from checkpoint
//! lines) or `derived` (recomputed from other checkpoint sections on
//! load, e.g. `StreamStats::window_len`); both kinds appear in JSON and
//! Prometheus output.

/// Defines a counter-set struct plus its uniform renderings.
///
/// ```
/// trajpattern::counter_stats! {
///     /// Example counters.
///     pub struct DemoStats {
///         /// Widgets seen.
///         persisted widgets: u64,
///         /// Cache entries (rebuilt on load, not persisted).
///         derived cache_entries: usize,
///     }
/// }
/// let s = DemoStats { widgets: 3, cache_entries: 7 };
/// assert_eq!(s.counters(), vec![("widgets", 3), ("cache_entries", 7)]);
/// assert_eq!(DemoStats::persisted_names(), vec!["widgets"]);
/// assert_eq!(s.persisted_values(), vec![3]);
/// let back = DemoStats::from_persisted(&[3]).unwrap();
/// assert_eq!(back.widgets, 3);
/// assert_eq!(back.cache_entries, 0); // derived: defaulted, caller refills
/// ```
///
/// Every field must be an unsigned integer type (`u64` or `usize`) and be
/// prefixed with `persisted` or `derived`. The struct derives `Debug`,
/// `Clone`, `Default`, `PartialEq`, `Eq`, and (behind the defining
/// crate's `serde` feature) `Serialize`/`Deserialize` with the field
/// names as written.
#[macro_export]
macro_rules! counter_stats {
    (
        $(#[$smeta:meta])*
        pub struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $kind:ident $field:ident : $ty:ty
            ),* $(,)?
        }
    ) => {
        $(#[$smeta])*
        #[derive(Debug, Clone, Default, PartialEq, Eq)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name {
            $(
                $(#[$fmeta])*
                pub $field: $ty,
            )*
        }

        impl $name {
            /// Every counter as a `(name, value)` pair, in declaration
            /// order — the single source for Prometheus gauge names and
            /// human-readable dumps.
            pub fn counters(&self) -> ::std::vec::Vec<(&'static str, u64)> {
                ::std::vec![
                    $( (stringify!($field), self.$field as u64) ),*
                ]
            }

            /// Names of the persisted fields, in checkpoint-line order.
            pub fn persisted_names() -> ::std::vec::Vec<&'static str> {
                let mut names = ::std::vec::Vec::new();
                $(
                    if $crate::stats::__field_kind_is_persisted(stringify!($kind)) {
                        names.push(stringify!($field));
                    }
                )*
                names
            }

            /// Values of the persisted fields, in checkpoint-line order.
            pub fn persisted_values(&self) -> ::std::vec::Vec<u64> {
                let mut values = ::std::vec::Vec::new();
                $(
                    if $crate::stats::__field_kind_is_persisted(stringify!($kind)) {
                        values.push(self.$field as u64);
                    }
                )*
                values
            }

            /// Rebuilds the struct from persisted values in
            /// checkpoint-line order; derived fields are defaulted (the
            /// loader recomputes them). `None` if too few values are
            /// given; extras are ignored by the caller's length check.
            pub fn from_persisted(values: &[u64]) -> ::std::option::Option<Self> {
                let mut it = values.iter().copied();
                ::std::option::Option::Some(Self {
                    $(
                        $field: if $crate::stats::__field_kind_is_persisted(stringify!($kind)) {
                            it.next()? as $ty
                        } else {
                            ::std::default::Default::default()
                        },
                    )*
                })
            }
        }
    };
}

/// Implementation detail of [`counter_stats!`]: classifies a field-kind
/// token. Panics on anything but `persisted`/`derived` so a typo fails
/// the defining crate's tests immediately.
#[doc(hidden)]
pub fn __field_kind_is_persisted(kind: &str) -> bool {
    match kind {
        "persisted" => true,
        "derived" => false,
        other => {
            panic!("counter_stats! field kind must be `persisted` or `derived`, got `{other}`")
        }
    }
}

/// Renders counters as Prometheus exposition lines, one
/// `{prefix}_{name} {value}` gauge per counter — the single rendering
/// behind every stats block on trajserve's `/metrics`.
pub fn prometheus_counters(out: &mut String, prefix: &str, counters: &[(&'static str, u64)]) {
    prometheus_labeled_counters(out, prefix, "", counters);
}

/// [`prometheus_counters`] with a fixed label set on every line —
/// `{prefix}_{name}{labels} {value}` — used by trajserve's live mode to
/// emit the same stats blocks once per shard (`labels` like
/// `shard="west"`). Empty `labels` renders the unlabeled form.
pub fn prometheus_labeled_counters(
    out: &mut String,
    prefix: &str,
    labels: &str,
    counters: &[(&'static str, u64)],
) {
    use std::fmt::Write;
    for (name, value) in counters {
        if labels.is_empty() {
            writeln!(out, "{prefix}_{name} {value}").expect("writing to a String cannot fail");
        } else {
            writeln!(out, "{prefix}_{name}{{{labels}}} {value}")
                .expect("writing to a String cannot fail");
        }
    }
}

counter_stats! {
    /// Counters describing one mining run.
    pub struct MiningStats {
        /// Growing iterations executed.
        persisted iterations: usize,
        /// Candidate concatenations considered (distinct ordered pairs).
        persisted candidates_generated: u64,
        /// Candidates whose NM was actually computed against the data.
        persisted candidates_scored: u64,
        /// Candidates skipped by the weighted-mean bound.
        persisted candidates_bound_pruned: u64,
        /// Size of the active set `Q` when mining stopped.
        persisted final_queue_size: usize,
        /// Total pattern scorings performed by the scorer (including the
        /// singular initialization pass counted as one batch of `G`).
        persisted nm_evaluations: u64,
        /// Worker-shard panics absorbed by rescoring the failed shard
        /// sequentially. `0` in a healthy run; a non-zero value means the run
        /// degraded gracefully — results are still bit-identical to a healthy
        /// run, only wall-clock time was lost.
        persisted degraded_shard_rescores: u64,
    }
}

counter_stats! {
    /// Point-in-time snapshot of a [`Scorer`](crate::Scorer)'s counters.
    ///
    /// Unlike [`MiningStats`] these are *engine* counters: they depend on
    /// how much of the cell-row cache a particular scorer instance
    /// happened to build, so a resumed run legitimately reports different
    /// numbers than an uninterrupted one. They are therefore carried on
    /// [`MiningOutcome`](crate::MiningOutcome) beside the stats, never
    /// inside them, and are excluded from checkpoint fingerprints.
    #[derive(Copy)]
    pub struct ScorerStats {
        /// Pattern scorings performed (NM or match evaluations).
        persisted scorings: u64,
        /// Distinct cells whose per-trajectory probability rows are cached.
        persisted cached_cells: u64,
        /// Worker-shard panics absorbed by sequential rescoring.
        persisted degraded_rescores: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    counter_stats! {
        /// Test-only mix of persisted and derived fields.
        pub struct MixedStats {
            /// A persisted counter.
            persisted alpha: u64,
            /// A derived gauge.
            derived beta: usize,
            /// Another persisted counter.
            persisted gamma: u64,
        }
    }

    #[test]
    fn counters_list_every_field_in_order() {
        let s = MixedStats {
            alpha: 1,
            beta: 2,
            gamma: 3,
        };
        assert_eq!(s.counters(), vec![("alpha", 1), ("beta", 2), ("gamma", 3)]);
    }

    #[test]
    fn persistence_skips_derived_fields() {
        let s = MixedStats {
            alpha: 10,
            beta: 20,
            gamma: 30,
        };
        assert_eq!(MixedStats::persisted_names(), vec!["alpha", "gamma"]);
        assert_eq!(s.persisted_values(), vec![10, 30]);
        let back = MixedStats::from_persisted(&[10, 30]).unwrap();
        assert_eq!(back.alpha, 10);
        assert_eq!(back.beta, 0, "derived fields default on load");
        assert_eq!(back.gamma, 30);
        assert!(MixedStats::from_persisted(&[10]).is_none());
    }

    #[test]
    fn mining_stats_line_order_is_frozen() {
        // The checkpoint `stats` / `mstats` line layout — changing this
        // list breaks the v1/v2 formats (and the golden-file tests).
        assert_eq!(
            MiningStats::persisted_names(),
            vec![
                "iterations",
                "candidates_generated",
                "candidates_scored",
                "candidates_bound_pruned",
                "final_queue_size",
                "nm_evaluations",
                "degraded_shard_rescores",
            ]
        );
    }

    #[test]
    fn prometheus_rendering_is_one_gauge_per_line() {
        let s = ScorerStats {
            scorings: 5,
            cached_cells: 2,
            degraded_rescores: 0,
        };
        let mut out = String::new();
        prometheus_counters(&mut out, "demo_scorer", &s.counters());
        assert_eq!(
            out,
            "demo_scorer_scorings 5\ndemo_scorer_cached_cells 2\ndemo_scorer_degraded_rescores 0\n"
        );
    }
}
