//! Session-style mining facade and the crate-wide error type.
//!
//! [`Miner`] owns the scorer lifecycle for one mining session: it borrows
//! the dataset and grid once, lets the caller layer parameters and a
//! thread count on top, and produces a [`MiningOutcome`]. The free
//! function [`crate::mine`] remains as a thin compatibility wrapper.
//!
//! ```
//! use trajdata::{Dataset, Trajectory};
//! use trajgeo::{BBox, Grid, Point2};
//! use trajpattern::{Miner, MiningParams};
//!
//! let data: Dataset = (0..10)
//!     .map(|_| {
//!         Trajectory::from_exact((0..4).map(|i| Point2::new(0.125 + i as f64 * 0.25, 0.625)))
//!     })
//!     .collect();
//! let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
//! let outcome = Miner::new(&data, &grid)
//!     .params(MiningParams::new(3, 0.1)?)
//!     .threads(2)
//!     .mine()?;
//! assert_eq!(outcome.patterns.len(), 3);
//! # Ok::<(), trajpattern::Error>(())
//! ```

use crate::algorithm::MiningOutcome;
use crate::checkpoint::{self, CheckpointError, Fingerprint};
use crate::engine::{empty_outcome, finish, init_state, run_growth};
use crate::params::{MiningParams, ParamsError};
use crate::scorer::Scorer;
use std::fmt;
use std::path::PathBuf;
use trajdata::csv::CsvError;
use trajdata::{Dataset, TrajectoryError};
use trajgeo::{Grid, GridError};

/// Any error reachable from a mining session: invalid parameters, a grid /
/// trajectory construction problem surfaced while preparing input, a CSV
/// ingest failure, or a bad checkpoint file.
///
/// Each variant wraps the originating crate's error and exposes it via
/// [`std::error::Error::source`], so callers (e.g. the CLI) can render the
/// whole chain uniformly — ingest errors carry their 1-based line number
/// through the source chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid [`MiningParams`].
    Params(ParamsError),
    /// Invalid grid construction.
    Grid(GridError),
    /// Invalid trajectory construction or transformation.
    Trajectory(TrajectoryError),
    /// CSV ingest failed (under [`trajdata::IngestPolicy::Strict`] any
    /// defect is fatal; the wrapped error names the offending line).
    Ingest(CsvError),
    /// A checkpoint file could not be written, read, or validated.
    Checkpoint(CheckpointError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Params(_) => write!(f, "invalid mining parameters"),
            Error::Grid(_) => write!(f, "invalid grid"),
            Error::Trajectory(_) => write!(f, "invalid trajectory data"),
            Error::Ingest(_) => write!(f, "trajectory ingest failed"),
            Error::Checkpoint(_) => write!(f, "checkpoint failure"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Params(e) => Some(e),
            Error::Grid(e) => Some(e),
            Error::Trajectory(e) => Some(e),
            Error::Ingest(e) => Some(e),
            Error::Checkpoint(e) => Some(e),
        }
    }
}

impl From<ParamsError> for Error {
    fn from(e: ParamsError) -> Error {
        Error::Params(e)
    }
}

impl From<GridError> for Error {
    fn from(e: GridError) -> Error {
        Error::Grid(e)
    }
}

impl From<TrajectoryError> for Error {
    fn from(e: TrajectoryError) -> Error {
        Error::Trajectory(e)
    }
}

impl From<CsvError> for Error {
    fn from(e: CsvError) -> Error {
        Error::Ingest(e)
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Error {
        Error::Checkpoint(e)
    }
}

/// Builder-style mining session over one dataset and grid.
///
/// Construct with [`Miner::new`], optionally set [`params`](Miner::params)
/// and [`threads`](Miner::threads), then call [`mine`](Miner::mine). When
/// no parameters are supplied, `k = 10` with `δ` equal to half the smaller
/// cell dimension is used — the same default as the CLI.
#[derive(Debug, Clone)]
pub struct Miner<'a> {
    data: &'a Dataset,
    grid: &'a Grid,
    params: Option<MiningParams>,
    threads: Option<usize>,
    checkpoint: Option<PathBuf>,
    resume: Option<PathBuf>,
}

impl<'a> Miner<'a> {
    /// Starts a mining session over `data` and `grid`.
    pub fn new(data: &'a Dataset, grid: &'a Grid) -> Miner<'a> {
        Miner {
            data,
            grid,
            params: None,
            threads: None,
            checkpoint: None,
            resume: None,
        }
    }

    /// Sets the full parameter set for this session.
    pub fn params(mut self, params: MiningParams) -> Miner<'a> {
        self.params = Some(params);
        self
    }

    /// Overrides the scorer worker-thread count (`0` = auto, one per
    /// available core). Takes precedence over [`MiningParams::threads`].
    /// Any value yields bit-identical results (see DESIGN.md §5).
    pub fn threads(mut self, threads: usize) -> Miner<'a> {
        self.threads = Some(threads);
        self
    }

    /// Writes a checkpoint to `path` after every completed growth level
    /// (atomically: a temporary sibling file is renamed into place, so an
    /// interruption mid-save never leaves a torn file). See
    /// [`crate::checkpoint`] for the format.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Miner<'a> {
        self.checkpoint = Some(path.into());
        self
    }

    /// Resumes a previous run from the checkpoint at `path` instead of
    /// starting from the singular patterns. The checkpoint must have been
    /// written under the same parameters, dataset, and grid (`max_iters`
    /// excepted — raise it freely when resuming an interrupted run);
    /// anything else is rejected with [`Error::Checkpoint`]. A resumed run
    /// produces bit-identical patterns to an uninterrupted one.
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Miner<'a> {
        self.resume = Some(path.into());
        self
    }

    /// The effective parameters this session would mine with.
    pub fn effective_params(&self) -> Result<MiningParams, Error> {
        let mut params = match &self.params {
            Some(p) => p.clone(),
            None => MiningParams::new(10, default_delta(self.grid))?,
        };
        if let Some(t) = self.threads {
            params.threads = t;
        }
        params.validate()?;
        Ok(params)
    }

    /// Runs the mining session.
    ///
    /// Builds a [`Scorer`] sharded across the configured number of worker
    /// threads and drives the growing process with batch scoring. Results
    /// are bit-identical for every thread count.
    pub fn mine(&self) -> Result<MiningOutcome, Error> {
        let params = self.effective_params()?;
        if self.data.is_empty() || self.grid.num_cells() == 0 {
            return Ok(empty_outcome());
        }
        let scorer = Scorer::with_threads(
            self.data,
            self.grid,
            params.delta,
            params.min_prob,
            params.threads,
        );
        let fingerprint = Fingerprint::new(&params, self.data, self.grid);
        let mut state = match &self.resume {
            Some(path) => checkpoint::load(path, &fingerprint)?,
            None => init_state(&scorer, &params, &[]).expect("an empty seed is always valid"),
        };
        run_growth(&scorer, &params, &mut state, |s| -> Result<(), Error> {
            if let Some(path) = &self.checkpoint {
                checkpoint::save(path, s, &fingerprint)?;
            }
            Ok(())
        })?;
        Ok(finish(&scorer, &params, state))
    }
}

/// Default indifference distance: half the smaller cell dimension, so a
/// location "matches" a cell center only from well inside the cell.
fn default_delta(grid: &Grid) -> f64 {
    0.5 * grid.cell_width().min(grid.cell_height())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine;
    use trajdata::Trajectory;
    use trajgeo::{BBox, Point2};

    fn sample_data() -> Dataset {
        (0..12)
            .map(|j| {
                Trajectory::from_exact((0..5).map(|i| {
                    Point2::new(
                        0.1 + i as f64 * 0.2,
                        0.3 + (j % 3) as f64 * 0.2 + i as f64 * 0.01,
                    )
                }))
            })
            .collect()
    }

    #[test]
    fn miner_matches_legacy_mine() {
        let data = sample_data();
        let grid = Grid::new(BBox::unit(), 5, 5).unwrap();
        let params = MiningParams::new(4, 0.05)
            .unwrap()
            .with_min_len(2)
            .unwrap()
            .with_gamma(0.3)
            .unwrap();

        let legacy = mine(&data, &grid, &params).unwrap();
        let session = Miner::new(&data, &grid).params(params).mine().unwrap();

        assert_eq!(legacy.patterns, session.patterns);
        assert_eq!(legacy.groups, session.groups);
        assert_eq!(legacy.stats, session.stats);
        for (a, b) in legacy.patterns.iter().zip(&session.patterns) {
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
    }

    #[test]
    fn miner_parallel_matches_sequential() {
        let data = sample_data();
        let grid = Grid::new(BBox::unit(), 5, 5).unwrap();
        let params = MiningParams::new(5, 0.05).unwrap();

        let seq = Miner::new(&data, &grid)
            .params(params.clone())
            .threads(1)
            .mine()
            .unwrap();
        for threads in [2usize, 4] {
            let par = Miner::new(&data, &grid)
                .params(params.clone())
                .threads(threads)
                .mine()
                .unwrap();
            assert_eq!(seq.patterns, par.patterns);
            assert_eq!(seq.stats, par.stats);
            for (a, b) in seq.patterns.iter().zip(&par.patterns) {
                assert_eq!(a.nm.to_bits(), b.nm.to_bits());
            }
        }
    }

    #[test]
    fn default_params_mirror_cli() {
        let data = sample_data();
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let p = Miner::new(&data, &grid).effective_params().unwrap();
        assert_eq!(p.k, 10);
        assert!((p.delta - 0.125).abs() < 1e-12);
    }

    #[test]
    fn threads_override_wins_over_params() {
        let data = sample_data();
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(2, 0.05).unwrap().with_threads(3).unwrap();
        let p = Miner::new(&data, &grid)
            .params(params)
            .threads(1)
            .effective_params()
            .unwrap();
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn error_chain_renders() {
        let err = Error::from(ParamsError::ZeroK);
        assert_eq!(err.to_string(), "invalid mining parameters");
        let source = std::error::Error::source(&err).unwrap();
        assert_eq!(source.to_string(), "k must be at least 1");
        let g: Error = GridError::ZeroCells.into();
        assert!(std::error::Error::source(&g).is_some());
        let t: Error = TrajectoryError::TooShort {
            required: 2,
            actual: 1,
        }
        .into();
        assert!(matches!(t, Error::Trajectory(_)));
    }
}
