//! Seeded re-growth: exact top-k mining that starts from a set of
//! *already-scored* patterns instead of from scratch.
//!
//! This is the repair/certification primitive behind the `trajstream`
//! sliding-window miner. The streaming layer maintains a per-pattern
//! contribution ledger whose folded sums are exact NM values for the
//! current window; [`mine_seeded`] rebuilds a growth state from those
//! values (via [`crate::engine::init_state`], the same level-0 code the
//! batch miner runs) and re-runs the shared growing process with an
//! *empty* pair memo:
//!
//! - every candidate pair is re-enumerated against the current thresholds,
//!   so no pruning decision from a previous window is trusted;
//! - a candidate that already has a ledger score is a hash-map hit (no
//!   data touched);
//! - a candidate that passes the weighted-mean bound but has *no* ledger
//!   score is evidence that the maintained set can no longer certify the
//!   top-k — it is scored against the data on the spot. The number of such
//!   scorings is returned as [`SeededOutcome::newly_scored`]; zero means
//!   the event was absorbed as a pure delta update.
//!
//! # Exactness
//!
//! The batch algorithm's exactness argument carries over verbatim:
//!
//! - the seed ω (k-th best qualifying NM over the seed set) is a valid
//!   lower bound of the final ω, because seed patterns are a subset of all
//!   patterns and their NMs are exact — so bound-pruning against it never
//!   loses a final top-k pattern, and τ is monotone in ω;
//! - `nm_best` is the maximum singular NM, which by the min-max property
//!   is the global maximum — the seed must contain *every* singular;
//! - all singulars start in `Q` and everything starts *fresh*, so level 1
//!   enumerates a superset of the batch level-1 pairs and the Lemma-1
//!   reachability induction applies unchanged.
//!
//! Both batch and seeded growth therefore score every pattern whose NM
//! reaches the final ω, and [`finish`](crate::engine) selects the top-k
//! by `(NM desc, pattern content)` — so the two produce *bit-identical*
//! pattern lists even though their candidate stores differ. The one
//! alignment rule: seed patterns longer than the effective maximum length
//! (`min(max_len, longest trajectory)`) are dropped before growth, because
//! the batch miner never generates them (they only ever score the floor
//! and could otherwise steal tie-broken top-k slots).
//!
//! Since the refactor onto [`crate::engine`], batch and seeded growth are
//! not merely *provably* aligned — they are the same code: one
//! `init_state`, one `grow_level`, one `finish`. The seeded entry differs
//! only in passing a non-empty seed and wrapping the scorer in a
//! [`SeededSource`].

use crate::engine::{empty_outcome, finish, init_state, run_growth, tau, SeededSource};
use crate::groups::discover_groups;
use crate::minmax::weighted_mean_bound;
use crate::params::MiningParams;
use crate::pattern::{MinedPattern, Pattern};
use crate::scorer::Scorer;
use crate::MiningOutcome;
use trajgeo::fxhash::FxHashSet;
use trajgeo::{CellId, Grid};

pub use crate::engine::{NmSource, SeedError};

/// The result of a seeded re-growth run.
#[derive(Debug, Clone)]
pub struct SeededOutcome {
    /// The top-k answer over the current data — bit-identical to what
    /// [`crate::Miner::mine`] produces on the same dataset and grid.
    pub outcome: MiningOutcome,
    /// Every pattern the run holds an exact NM for (the final candidate
    /// store, in id order): the seeds that survived the length filter plus
    /// everything newly scored. This is what a streaming caller feeds back
    /// as the next seed.
    pub store: Vec<MinedPattern>,
    /// The surviving active set `Q` (ascending store id order): high
    /// patterns plus 1-extension building blocks. Always a superset of the
    /// top-k patterns.
    pub survivors: Vec<MinedPattern>,
    /// Growth levels executed by this call (repair depth).
    pub levels: usize,
    /// Patterns scored against the data by this call. `0` means the seed
    /// certified the top-k by itself — a pure delta update.
    pub newly_scored: u64,
}

/// Mines the top-k patterns over `scorer`'s data, seeded with patterns
/// whose NMs are already exact for that data.
///
/// `seed` must contain one entry per grid cell (every singular pattern)
/// and may contain any number of longer patterns; each NM must be exactly
/// what [`Scorer::score_batch`] would produce for that pattern on this
/// data — the caller (normally the `trajstream` ledger) is responsible for
/// that invariant, and exactness of the result depends on it. An empty
/// seed falls back to a full from-scratch mine.
///
/// The returned [`SeededOutcome::outcome`] is bit-identical to a batch
/// mine; see the module docs for the argument.
pub fn mine_seeded(
    scorer: &Scorer<'_>,
    params: &MiningParams,
    seed: &[MinedPattern],
) -> Result<SeededOutcome, SeedError> {
    params.validate()?;
    if scorer.data().is_empty() || scorer.grid().num_cells() == 0 {
        return Ok(SeededOutcome {
            outcome: empty_outcome(),
            store: Vec::new(),
            survivors: Vec::new(),
            levels: 0,
            newly_scored: 0,
        });
    }

    let source = SeededSource::new(scorer, seed);
    let evals_before = NmSource::evaluations(&source);
    let mut state = init_state(&source, params, seed)?;
    let levels_before = state.stats.iterations;
    match run_growth::<_, std::convert::Infallible>(&source, params, &mut state, |_| Ok(())) {
        Ok(()) => {}
        Err(e) => match e {},
    }
    let levels = state.stats.iterations - levels_before;
    let newly_scored = NmSource::evaluations(&source) - evals_before;

    let store: Vec<MinedPattern> = (0..state.store.count() as u32)
        .map(|id| MinedPattern::new(state.store.get(id).clone(), state.store.nm(id)))
        .collect();
    let mut survivor_ids: Vec<u32> = state.q.iter().copied().collect();
    survivor_ids.sort_unstable();
    let survivors: Vec<MinedPattern> = survivor_ids
        .into_iter()
        .map(|id| MinedPattern::new(state.store.get(id).clone(), state.store.nm(id)))
        .collect();

    let outcome = finish(&source, params, state);
    Ok(SeededOutcome {
        outcome,
        store,
        survivors,
        levels,
        newly_scored,
    })
}

/// Allocation-free pure-delta certification for a seed set.
///
/// [`mine_seeded`] is exact but pays full state construction and pair
/// re-enumeration (pattern interning, pair-memo hashing, candidate
/// allocation) even when the seed certifies the top-k by itself — which
/// in a steady stream is almost every event. `SeedCertifier` answers
/// "*would* [`mine_seeded`] score anything against the data?" without
/// building a growth state: it simulates the single growth level such a
/// run performs. Seeded growth starts with everything fresh, so level 1
/// enumerates exactly the ordered pairs with a high member; each pair is
/// bound-checked against ω (or the composability threshold τ for the
/// high·singular / singular·high one-extension shapes), and every
/// survivor must already be a seed member. If all survivors are members,
/// nothing gets scored, ω cannot move, and the level converges — so
/// [`certify`](SeedCertifier::certify) returning `true` guarantees
/// `mine_seeded` on the same seed would report `newly_scored == 0` and
/// return the seed's own best k (see [`certified_topk`]).
///
/// The membership index is built once per seed *set* ([`SeedCertifier::new`])
/// and reused across events: set membership only changes when a repair
/// scores something new, while the NM values (which change every event)
/// are passed to each [`certify`](SeedCertifier::certify) call. Per-pair
/// work is a handful of float ops; member lookups happen only for pairs
/// whose bound survives, and each length class is scanned best-NM-first
/// so a scan stops at the first bound failure (the weighted-mean bound is
/// monotone in each constituent NM). `certify` is conservative: `false`
/// never means the top-k is wrong, only that it cannot be certified
/// without touching the data — the caller falls back to [`mine_seeded`].
pub struct SeedCertifier {
    /// Cell sequences of every member, for allocation-free candidate
    /// lookups (a concatenation is probed as a borrowed slice).
    members: FxHashSet<Vec<CellId>>,
    /// Each member's cells, indexed like the seed (owned copies so
    /// `certify` needs only the per-event NM values).
    cells: Vec<Vec<CellId>>,
    /// Member indices grouped by pattern length (`by_len[l-1]` holds the
    /// indices of all length-`l` members, in seed order).
    by_len: Vec<Vec<u32>>,
}

impl SeedCertifier {
    /// Builds the membership index for a seed set. The later `certify`
    /// calls must pass NMs aligned with exactly these patterns, in this
    /// order.
    pub fn new(patterns: &[Pattern]) -> SeedCertifier {
        let mut members = FxHashSet::default();
        let mut cells = Vec::with_capacity(patterns.len());
        let mut by_len: Vec<Vec<u32>> = Vec::new();
        for (i, p) in patterns.iter().enumerate() {
            members.insert(p.cells().to_vec());
            cells.push(p.cells().to_vec());
            let l = p.len();
            if by_len.len() < l {
                by_len.resize(l, Vec::new());
            }
            by_len[l - 1].push(i as u32);
        }
        SeedCertifier {
            members,
            cells,
            by_len,
        }
    }

    /// Whether this index's patterns with *current* exact NMs (`nms[i]`
    /// belongs to the `i`-th pattern passed to [`SeedCertifier::new`])
    /// already certify the top-k: a [`mine_seeded`] call on the same seed
    /// would score nothing. `eff_max_len` must be the effective maximum
    /// pattern length of the data the NMs were folded over (see
    /// [`crate::algorithm::effective_max_len_from`]).
    ///
    /// Conservatively `false` when the growth would not prune at all
    /// (bound pruning disabled, fewer than `k` qualifying seeds) or when
    /// a `min_len > 1` run would bootstrap ω from the data.
    pub fn certify(&self, params: &MiningParams, eff_max_len: usize, nms: &[f64]) -> bool {
        if nms.len() != self.cells.len() || !params.use_bound_prune || params.min_len > 1 {
            return false;
        }
        let m = eff_max_len;
        // ω exactly as the engine's seeded `init_state` computes it: k-th
        // best qualifying NM (min_len ≤ 1, so every seed of effective
        // length qualifies; over-long seeds are dropped before growth and
        // never offered).
        let mut qual: Vec<f64> = self
            .cells
            .iter()
            .zip(nms)
            .filter(|(c, _)| c.len() <= m)
            .map(|(_, &nm)| nm)
            .collect();
        if qual.len() < params.k {
            return false; // ω = −∞: nothing would be pruned
        }
        qual.sort_unstable_by(|a, b| b.partial_cmp(a).expect("seed NMs are finite"));
        let omega = qual[params.k - 1];
        let nm_best = match self.by_len.first() {
            Some(singulars) if !singulars.is_empty() => singulars
                .iter()
                .map(|&i| nms[i as usize])
                .fold(f64::NEG_INFINITY, f64::max),
            _ => return false,
        };

        // Length classes split high (NM ≥ ω) / low, each sorted best-NM
        // first for the monotone early exit.
        let classes = m.min(self.by_len.len());
        let mut high: Vec<Vec<u32>> = vec![Vec::new(); classes];
        let mut low: Vec<Vec<u32>> = vec![Vec::new(); classes];
        for (l, ids) in self.by_len.iter().take(classes).enumerate() {
            for &i in ids {
                if nms[i as usize] >= omega {
                    high[l].push(i);
                } else {
                    low[l].push(i);
                }
            }
            let by_nm_desc = |&a: &u32, &b: &u32| {
                nms[b as usize]
                    .partial_cmp(&nms[a as usize])
                    .expect("seed NMs are finite")
            };
            high[l].sort_unstable_by(by_nm_desc);
            low[l].sort_unstable_by(by_nm_desc);
        }

        // Enumerate every ordered pair shape growth level 1 would try:
        // at least one side high, total length within bounds. The
        // one-extension shapes (high·singular, singular·high) are held
        // to τ, everything else to ω — mirroring `grow_level`.
        let mut buf: Vec<CellId> = Vec::with_capacity(m);
        for la in 1..=classes {
            if la >= m {
                break;
            }
            for lb in 1..=classes.min(m - la) {
                let t = tau(la + lb, omega, nm_best, m);
                let hh = if la == 1 || lb == 1 { t } else { omega };
                let hl = if lb == 1 { t } else { omega };
                let lh = if la == 1 { t } else { omega };
                if !self.scan((&high[la - 1], la), (&high[lb - 1], lb), hh, nms, &mut buf)
                    || !self.scan((&high[la - 1], la), (&low[lb - 1], lb), hl, nms, &mut buf)
                    || !self.scan((&low[la - 1], la), (&high[lb - 1], lb), lh, nms, &mut buf)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Scans ordered pairs `a×b` (both lists best-NM-first) under one
    /// threshold; `false` as soon as a pair's weighted-mean bound clears
    /// the threshold but its concatenation is not a member. Monotonicity
    /// of the bound in either NM justifies both early exits.
    fn scan(
        &self,
        (a_ids, la): (&[u32], usize),
        (b_ids, lb): (&[u32], usize),
        threshold: f64,
        nms: &[f64],
        buf: &mut Vec<CellId>,
    ) -> bool {
        for &ai in a_ids {
            let nm_a = nms[ai as usize];
            let mut hit = false;
            for &bi in b_ids {
                if weighted_mean_bound(nm_a, la, nms[bi as usize], lb) < threshold {
                    break; // every later b has a smaller NM, hence a smaller bound
                }
                hit = true;
                buf.clear();
                buf.extend_from_slice(&self.cells[ai as usize]);
                buf.extend_from_slice(&self.cells[bi as usize]);
                if !self.members.contains(&buf[..]) {
                    return false;
                }
            }
            if !hit {
                break; // even the best b failed; every later a is worse
            }
        }
        true
    }
}

/// The top-k outcome a certified seed implies: the best `k` qualifying
/// seed patterns by `(NM desc, pattern content)` — exactly the batch
/// `finish` selection — plus groups when `params.gamma` is set. The seed
/// is passed as parallel slices (`nms[i]` scores `patterns[i]`) so the
/// caller never materializes owned seed entries; only the `k` winners are
/// cloned. Seeds longer than `eff_max_len` are excluded, matching the
/// seeded growth's over-long drop. Only meaningful when
/// [`SeedCertifier::certify`] returned `true` for the same seed; the
/// returned stats are zeroed (the caller owns counter bookkeeping on the
/// fast path).
pub fn certified_topk(
    patterns: &[Pattern],
    nms: &[f64],
    params: &MiningParams,
    eff_max_len: usize,
    grid: &Grid,
) -> MiningOutcome {
    debug_assert_eq!(patterns.len(), nms.len());
    let mut order: Vec<usize> = (0..patterns.len())
        .filter(|&i| {
            let l = patterns[i].len();
            l >= params.min_len && l <= eff_max_len
        })
        .collect();
    let by_rank = |&a: &usize, &b: &usize| {
        nms[b]
            .partial_cmp(&nms[a])
            .expect("NM values are finite")
            .then_with(|| patterns[a].cmp(&patterns[b]))
    };
    // Select the top k first so the full sort only touches k entries; the
    // comparator is a total order (distinct patterns), so the selected set
    // and final order equal the full-sort-then-truncate result.
    if order.len() > params.k {
        order.select_nth_unstable_by(params.k - 1, by_rank);
        order.truncate(params.k);
    }
    order.sort_unstable_by(by_rank);
    let qualifying: Vec<MinedPattern> = order
        .into_iter()
        .map(|i| MinedPattern {
            pattern: patterns[i].clone(),
            nm: nms[i],
        })
        .collect();
    let groups = match params.gamma {
        Some(gamma) => discover_groups(&qualifying, grid, gamma),
        None => Vec::new(),
    };
    MiningOutcome {
        patterns: qualifying,
        groups,
        stats: crate::MiningStats::default(),
        scorer: crate::ScorerStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::effective_max_len;
    use crate::pattern::Pattern;
    use trajdata::{Dataset, SnapshotPoint, Trajectory};
    use trajgeo::{BBox, CellId, Grid, Point2};

    fn sweep_data(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    fn batch(
        data: &Dataset,
        grid: &Grid,
        params: &MiningParams,
    ) -> (MiningOutcome, Vec<MinedPattern>) {
        let scorer = Scorer::new(data, grid, params.delta, params.min_prob);
        let out = mine_seeded(&scorer, params, &[]).unwrap();
        (out.outcome, out.store)
    }

    fn assert_same_patterns(a: &MiningOutcome, b: &MiningOutcome) {
        let pa: Vec<_> = a.patterns.iter().map(|m| (&m.pattern, m.nm)).collect();
        let pb: Vec<_> = b.patterns.iter().map(|m| (&m.pattern, m.nm)).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn empty_seed_matches_batch_mine() {
        let (data, grid) = sweep_data(6, 0.05);
        let params = MiningParams::new(5, 0.1).unwrap().with_max_len(3).unwrap();
        let a = crate::mine(&data, &grid, &params).unwrap();
        let (b, _) = batch(&data, &grid, &params);
        assert_same_patterns(&a, &b);
    }

    #[test]
    fn reseeding_with_own_store_is_a_pure_delta() {
        let (data, grid) = sweep_data(6, 0.05);
        let params = MiningParams::new(5, 0.1).unwrap().with_max_len(3).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let first = mine_seeded(&scorer, &params, &[]).unwrap();
        let second = mine_seeded(&scorer, &params, &first.store).unwrap();
        assert_eq!(second.newly_scored, 0, "same data + full store = no work");
        assert_same_patterns(&first.outcome, &second.outcome);
        assert!(second
            .survivors
            .iter()
            .map(|m| &m.pattern)
            .collect::<std::collections::BTreeSet<_>>()
            .is_superset(&second.outcome.patterns.iter().map(|m| &m.pattern).collect()));
    }

    #[test]
    fn seeding_with_singulars_only_matches_batch() {
        let (data, grid) = sweep_data(8, 0.04);
        let params = MiningParams::new(6, 0.1).unwrap().with_max_len(4).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let singular_nms = scorer.nm_all_singulars();
        let seed: Vec<MinedPattern> = grid
            .cells()
            .map(|c| MinedPattern::new(Pattern::singular(c), singular_nms[c.index()]))
            .collect();
        let seeded = mine_seeded(&scorer, &params, &seed).unwrap();
        let a = crate::mine(&data, &grid, &params).unwrap();
        assert_same_patterns(&a, &seeded.outcome);
        assert!(seeded.newly_scored > 0, "growth had to score candidates");
    }

    #[test]
    fn stale_overlong_seeds_are_ignored() {
        let (data, grid) = sweep_data(5, 0.05);
        // max_len 6 but trajectories have 4 points: effective max len is 4.
        let params = MiningParams::new(4, 0.1).unwrap().with_max_len(6).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let first = mine_seeded(&scorer, &params, &[]).unwrap();
        let mut seed = first.store.clone();
        let long = Pattern::new(vec![CellId(0); 5]).unwrap();
        let nm = scorer.score_batch(std::slice::from_ref(&long))[0];
        seed.push(MinedPattern::new(long.clone(), nm));
        let second = mine_seeded(&scorer, &params, &seed).unwrap();
        assert_same_patterns(&first.outcome, &second.outcome);
        assert!(second.store.iter().all(|m| m.pattern != long));
    }

    #[test]
    fn rejects_bad_seeds() {
        let (data, grid) = sweep_data(4, 0.05);
        let params = MiningParams::new(3, 0.1).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let one = vec![MinedPattern::new(Pattern::singular(CellId(0)), -1.0)];
        assert!(matches!(
            mine_seeded(&scorer, &params, &one),
            Err(SeedError::MissingSingulars { have: 1, need: 16 })
        ));

        let full = mine_seeded(&scorer, &params, &[]).unwrap().store;
        let mut dup = full.clone();
        dup.push(dup[0].clone());
        assert!(matches!(
            mine_seeded(&scorer, &params, &dup),
            Err(SeedError::Duplicate(_))
        ));

        let mut nan = full.clone();
        nan[0].nm = f64::NAN;
        assert!(matches!(
            mine_seeded(&scorer, &params, &nan),
            Err(SeedError::NonFinite(_))
        ));

        let mut oob = full;
        oob.push(MinedPattern::new(
            Pattern::new(vec![CellId(999), CellId(0)]).unwrap(),
            -1.0,
        ));
        assert!(matches!(
            mine_seeded(&scorer, &params, &oob),
            Err(SeedError::CellOutOfRange(_))
        ));
    }

    #[test]
    fn certifier_agrees_with_seeded_regrowth() {
        let (data, grid) = sweep_data(6, 0.05);
        let params = MiningParams::new(5, 0.1).unwrap().with_max_len(3).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let eff = effective_max_len(&scorer, &params);
        let first = mine_seeded(&scorer, &params, &[]).unwrap();

        // The full store certifies itself (same data ⇒ nothing to score),
        // and the certified top-k matches the mined one bit-for-bit.
        let patterns: Vec<Pattern> = first.store.iter().map(|m| m.pattern.clone()).collect();
        let store_nms: Vec<f64> = first.store.iter().map(|m| m.nm).collect();
        let cert = SeedCertifier::new(&patterns);
        assert!(cert.certify(&params, eff, &store_nms));
        let out = certified_topk(&patterns, &store_nms, &params, eff, &grid);
        assert_eq!(out.patterns.len(), first.outcome.patterns.len());
        for (a, b) in out.patterns.iter().zip(&first.outcome.patterns) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }

        // A singulars-only seed is not certifiable: growth must score.
        let singular_nms = scorer.nm_all_singulars();
        let singular_patterns: Vec<Pattern> = grid.cells().map(Pattern::singular).collect();
        let cert2 = SeedCertifier::new(&singular_patterns);
        assert!(!cert2.certify(&params, eff, &singular_nms));

        // Misaligned seed sizes and min_len > 1 are rejected outright.
        assert!(!cert.certify(&params, eff, &singular_nms));
        let strict = params.clone().with_min_len(2).unwrap();
        assert!(!cert.certify(&strict, eff, &store_nms));
    }

    #[test]
    fn min_len_seeded_matches_batch() {
        let (data, grid) = sweep_data(7, 0.04);
        let params = MiningParams::new(3, 0.1)
            .unwrap()
            .with_min_len(2)
            .unwrap()
            .with_max_len(3)
            .unwrap();
        let a = crate::mine(&data, &grid, &params).unwrap();
        let scorer = Scorer::new(&data, &grid, params.delta, params.min_prob);
        let first = mine_seeded(&scorer, &params, &[]).unwrap();
        assert_same_patterns(&a, &first.outcome);
        let second = mine_seeded(&scorer, &params, &first.store).unwrap();
        assert_same_patterns(&a, &second.outcome);
        assert_eq!(second.newly_scored, 0);
    }
}
