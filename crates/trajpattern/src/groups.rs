//! Pattern-group discovery (§3.4 definition, §4.2 procedure).
//!
//! Imprecise data makes many near-identical patterns surface together; the
//! paper compacts the top-k answer into *pattern groups*: sets of patterns
//! of the same length that are pairwise within γ of each other at every
//! snapshot (Definitions 1–2).
//!
//! The discovery procedure follows §4.2: patterns are first clustered *per
//! snapshot* into "snapshot groups" (we use greedy complete-linkage so the
//! pairwise-γ guarantee holds inside each snapshot group), then groups are
//! refined: repeatedly take the smallest remaining snapshot group; if its
//! members sit in a single snapshot group at *every* snapshot they form a
//! pattern group, otherwise shrink to the smallest fragment and retry.
//! Singletons always qualify, so the procedure terminates with a partition
//! of the input patterns.

use crate::pattern::MinedPattern;
use std::collections::BTreeSet;
use trajgeo::{Grid, Point2};

/// A group of same-length patterns pairwise within γ at every snapshot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PatternGroup {
    /// Member patterns, best NM first.
    pub patterns: Vec<MinedPattern>,
}

impl PatternGroup {
    /// The highest-NM member — the group's representative.
    pub fn representative(&self) -> &MinedPattern {
        &self.patterns[0]
    }

    /// Number of member patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Groups are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Discovers pattern groups among `patterns` under similarity distance
/// `gamma` (Euclidean, per snapshot). Patterns of different lengths never
/// share a group. Returns groups ordered by their representative's NM
/// (best first); the union of all groups is exactly the input.
pub fn discover_groups(patterns: &[MinedPattern], grid: &Grid, gamma: f64) -> Vec<PatternGroup> {
    let mut groups: Vec<PatternGroup> = Vec::new();
    // Partition by pattern length, preserving deterministic order.
    let mut lengths: Vec<usize> = patterns.iter().map(|m| m.pattern.len()).collect();
    lengths.sort_unstable();
    lengths.dedup();
    for len in lengths {
        let class: Vec<&MinedPattern> =
            patterns.iter().filter(|m| m.pattern.len() == len).collect();
        groups.extend(group_same_length(&class, grid, gamma, len));
    }
    groups.sort_by(|a, b| {
        b.representative()
            .nm
            .partial_cmp(&a.representative().nm)
            .expect("NM values are finite")
            .then_with(|| a.representative().pattern.cmp(&b.representative().pattern))
    });
    groups
}

fn group_same_length(
    class: &[&MinedPattern],
    grid: &Grid,
    gamma: f64,
    len: usize,
) -> Vec<PatternGroup> {
    let n = class.len();
    if n == 0 {
        return Vec::new();
    }
    // Cell-center coordinates of each pattern at each snapshot.
    let coords: Vec<Vec<Point2>> = class.iter().map(|m| m.pattern.centers(grid)).collect();

    // Snapshot groups: for each snapshot, a complete-linkage clustering of
    // the patterns by their position at that snapshot. `membership[s][i]`
    // is the cluster index of pattern i at snapshot s.
    let mut membership: Vec<Vec<usize>> = Vec::with_capacity(len);
    #[allow(clippy::needless_range_loop)] // `s` indexes into every pattern's coords
    for s in 0..len {
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        let mut member = vec![usize::MAX; n];
        for i in 0..n {
            let mut placed = false;
            for (ci, cluster) in clusters.iter_mut().enumerate() {
                if cluster
                    .iter()
                    .all(|&j| coords[i][s].distance(coords[j][s]) <= gamma)
                {
                    cluster.push(i);
                    member[i] = ci;
                    placed = true;
                    break;
                }
            }
            if !placed {
                member[i] = clusters.len();
                clusters.push(vec![i]);
            }
        }
        membership.push(member);
    }

    // Refinement (§4.2). Work with index sets; `remaining` tracks
    // ungrouped patterns.
    let mut remaining: BTreeSet<usize> = (0..n).collect();
    let mut out = Vec::new();
    while !remaining.is_empty() {
        // Current snapshot groups restricted to remaining patterns; pick
        // the smallest (ties: lowest snapshot, then lowest cluster id).
        let mut smallest: Option<BTreeSet<usize>> = None;
        for member in membership.iter() {
            let mut per_cluster: std::collections::BTreeMap<usize, BTreeSet<usize>> =
                std::collections::BTreeMap::new();
            for &i in &remaining {
                per_cluster.entry(member[i]).or_default().insert(i);
            }
            for set in per_cluster.values() {
                if smallest.as_ref().is_none_or(|s| set.len() < s.len()) {
                    smallest = Some(set.clone());
                }
            }
        }
        let mut candidate = smallest.expect("remaining is non-empty");

        // Shrink until the candidate lies inside one snapshot group at
        // every snapshot. Singletons always do.
        loop {
            let mut split_piece: Option<BTreeSet<usize>> = None;
            for member in membership.iter() {
                let mut per_cluster: std::collections::BTreeMap<usize, BTreeSet<usize>> =
                    std::collections::BTreeMap::new();
                for &i in &candidate {
                    per_cluster.entry(member[i]).or_default().insert(i);
                }
                if per_cluster.len() > 1 {
                    // Candidate splits here: keep the smallest fragment
                    // (the paper's minimal-intersection rule).
                    let piece = per_cluster
                        .values()
                        .min_by_key(|s| (s.len(), s.iter().next().copied()))
                        .expect("non-empty")
                        .clone();
                    split_piece = Some(piece);
                    break;
                }
            }
            match split_piece {
                Some(piece) => candidate = piece,
                None => break,
            }
        }

        let mut members: Vec<MinedPattern> = candidate.iter().map(|&i| class[i].clone()).collect();
        members.sort_by(|a, b| {
            b.nm.partial_cmp(&a.nm)
                .expect("NM values are finite")
                .then_with(|| a.pattern.cmp(&b.pattern))
        });
        out.push(PatternGroup { patterns: members });
        for i in candidate {
            remaining.remove(&i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use trajgeo::{BBox, CellId};

    /// A 320×1 grid over [0,32]×[0,1]: cells of width 0.1, centers at
    /// 0.05 + 0.1·i — lets tests place patterns at precise x positions.
    fn line_grid() -> Grid {
        Grid::new(
            BBox::new(Point2::new(0.0, 0.0), Point2::new(32.0, 1.0)).unwrap(),
            320,
            1,
        )
        .unwrap()
    }

    fn mined(cells: &[u32], nm: f64) -> MinedPattern {
        MinedPattern::new(
            Pattern::new(cells.iter().map(|&c| CellId(c)).collect()).unwrap(),
            nm,
        )
    }

    #[test]
    fn reproduces_the_papers_section_4_2_example() {
        // Six length-2 patterns engineered so that with γ = 1.0 the
        // snapshot groups match the paper's example:
        //   snapshot 1: (p1,p3,p4,p5), (p2,p6)
        //   snapshot 2: (p1',p3',p6'), (p2',p4'), (p5')
        // Expected pattern groups: (P5),(P2),(P6),(P4),(P1,P3).
        let patterns = vec![
            mined(&[0, 0], -1.0),   // P1: x=0.05 / 0.05
            mined(&[50, 50], -2.0), // P2: x=5.05 / 5.05
            mined(&[3, 3], -3.0),   // P3: x=0.35 / 0.35
            mined(&[6, 52], -4.0),  // P4: x=0.65 / 5.25
            mined(&[9, 100], -5.0), // P5: x=0.95 / 10.05
            mined(&[55, 6], -6.0),  // P6: x=5.55 / 0.65
        ];
        let groups = discover_groups(&patterns, &line_grid(), 1.0);
        assert_eq!(groups.len(), 5);
        // Collect the member multisets.
        let mut sets: Vec<Vec<&MinedPattern>> =
            groups.iter().map(|g| g.patterns.iter().collect()).collect();
        sets.sort_by_key(|s| s.len());
        // Four singletons and one pair {P1, P3}.
        assert_eq!(sets[0].len(), 1);
        assert_eq!(sets[4].len(), 2);
        let pair = &groups
            .iter()
            .find(|g| g.len() == 2)
            .expect("one pair group")
            .patterns;
        assert_eq!(pair[0].nm, -1.0); // P1 (representative, higher NM)
        assert_eq!(pair[1].nm, -3.0); // P3
    }

    #[test]
    fn all_input_patterns_appear_exactly_once() {
        let patterns = vec![
            mined(&[0, 0], -1.0),
            mined(&[1, 1], -2.0),
            mined(&[100, 100], -3.0),
            mined(&[101, 100], -4.0),
        ];
        let groups = discover_groups(&patterns, &line_grid(), 0.25);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, patterns.len());
    }

    #[test]
    fn grouped_patterns_are_pairwise_similar_at_every_snapshot() {
        let grid = line_grid();
        let patterns: Vec<MinedPattern> = (0..8).map(|i| mined(&[i, i + 2], -(i as f64))).collect();
        let gamma = 0.35;
        for g in discover_groups(&patterns, &grid, gamma) {
            for a in &g.patterns {
                for b in &g.patterns {
                    let ca = a.pattern.centers(&grid);
                    let cb = b.pattern.centers(&grid);
                    for (pa, pb) in ca.iter().zip(&cb) {
                        assert!(
                            pa.distance(*pb) <= gamma + 1e-9,
                            "group violates pairwise γ"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn different_lengths_never_share_groups() {
        let patterns = vec![mined(&[0], -1.0), mined(&[0, 0], -2.0)];
        let groups = discover_groups(&patterns, &line_grid(), 10.0);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn larger_gamma_yields_no_more_groups() {
        // Fig. 4(e)'s qualitative behaviour at the grouping level: growing
        // the similarity distance can only merge, never split.
        let patterns: Vec<MinedPattern> = (0..10)
            .map(|i| mined(&[i * 3, i * 3], -(i as f64)))
            .collect();
        let grid = line_grid();
        let mut prev = usize::MAX;
        for gamma in [0.1, 0.35, 0.7, 1.5, 3.0] {
            let n = discover_groups(&patterns, &grid, gamma).len();
            assert!(n <= prev, "groups grew from {prev} to {n} at γ={gamma}");
            prev = n;
        }
    }

    #[test]
    fn groups_sorted_by_representative_nm() {
        let patterns = vec![
            mined(&[0, 0], -5.0),
            mined(&[100, 100], -1.0),
            mined(&[200, 200], -3.0),
        ];
        let groups = discover_groups(&patterns, &line_grid(), 0.2);
        let nms: Vec<f64> = groups.iter().map(|g| g.representative().nm).collect();
        assert_eq!(nms, vec![-1.0, -3.0, -5.0]);
    }

    #[test]
    fn empty_input_gives_no_groups() {
        assert!(discover_groups(&[], &line_grid(), 1.0).is_empty());
    }
}
