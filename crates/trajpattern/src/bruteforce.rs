//! Exhaustive reference miner, for correctness testing.
//!
//! Enumerates *every* pattern up to `max_len` over the grid and ranks by
//! NM. Exponential in pattern length (`G^len` candidates) — usable only on
//! tiny instances, which is exactly its job: the integration tests compare
//! [`crate::mine`] and the baseline miners against this ground truth.

use crate::params::MiningParams;
use crate::pattern::{MinedPattern, Pattern};
use crate::scorer::Scorer;
use trajdata::Dataset;
use trajgeo::{CellId, Grid};

/// Upper bound on the number of patterns the brute-force enumeration will
/// evaluate before refusing (protects tests from accidental explosions).
pub const MAX_ENUMERATION: u64 = 5_000_000;

/// Exhaustively mines the top-k patterns by NM. Returns `None` if the
/// enumeration would exceed [`MAX_ENUMERATION`] patterns.
///
/// Honors `params.k`, `params.delta`, `params.min_prob`, `params.min_len`
/// and `params.max_len`; pruning flags are irrelevant here.
pub fn brute_force_top_k(
    data: &Dataset,
    grid: &Grid,
    params: &MiningParams,
) -> Option<Vec<MinedPattern>> {
    let g = grid.num_cells() as u64;
    if g == 0 || data.is_empty() {
        return Some(Vec::new());
    }
    let data_max_len = data.iter().map(|t| t.len()).max().unwrap_or(0);
    let max_len = params.max_len.min(data_max_len.max(1));

    // Count the enumeration size: Σ_{len=min..=max} G^len.
    let mut total: u64 = 0;
    let mut pow: u64 = 1;
    for len in 1..=max_len {
        pow = pow.checked_mul(g)?;
        if len >= params.min_len {
            total = total.checked_add(pow)?;
        }
        if total > MAX_ENUMERATION {
            return None;
        }
    }

    let scorer = Scorer::new(data, grid, params.delta, params.min_prob);
    let mut all: Vec<MinedPattern> = Vec::new();
    let mut cells: Vec<CellId> = Vec::new();
    for len in params.min_len..=max_len {
        enumerate(grid, len, &mut cells, &scorer, &mut all);
    }
    all.sort_unstable_by(|a, b| {
        b.nm.partial_cmp(&a.nm)
            .expect("NM values are finite")
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
    all.truncate(params.k);
    Some(all)
}

fn enumerate(
    grid: &Grid,
    remaining: usize,
    cells: &mut Vec<CellId>,
    scorer: &Scorer<'_>,
    out: &mut Vec<MinedPattern>,
) {
    if remaining == 0 {
        let p = Pattern::new(cells.clone()).expect("non-empty by construction");
        let nm = scorer.nm(&p);
        out.push(MinedPattern::new(p, nm));
        return;
    }
    for cell in grid.cells() {
        cells.push(cell);
        enumerate(grid, remaining - 1, cells, scorer, out);
        cells.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{SnapshotPoint, Trajectory};
    use trajgeo::{BBox, Point2};

    fn tiny() -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 3, 1).unwrap();
        let data: Dataset = (0..4)
            .map(|_| {
                Trajectory::new(
                    (0..3)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(1.0 / 6.0 + i as f64 / 3.0, 0.5), 0.05)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    #[test]
    fn top_pattern_on_clean_sweep_is_the_path() {
        let (data, grid) = tiny();
        let params = MiningParams::new(1, 0.15)
            .unwrap()
            .with_min_len(3)
            .unwrap()
            .with_max_len(3)
            .unwrap();
        let top = brute_force_top_k(&data, &grid, &params).unwrap();
        assert_eq!(top.len(), 1);
        let cells: Vec<u32> = top[0].pattern.cells().iter().map(|c| c.0).collect();
        assert_eq!(cells, vec![0, 1, 2]);
    }

    #[test]
    fn refuses_oversized_enumeration() {
        let grid = Grid::new(BBox::unit(), 100, 100).unwrap();
        let (data, _) = tiny();
        let params = MiningParams::new(1, 0.1).unwrap().with_max_len(4).unwrap();
        assert!(brute_force_top_k(&data, &grid, &params).is_none());
    }

    #[test]
    fn result_is_sorted_and_respects_k() {
        let (data, grid) = tiny();
        let params = MiningParams::new(5, 0.15).unwrap().with_max_len(2).unwrap();
        let top = brute_force_top_k(&data, &grid, &params).unwrap();
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].nm >= w[1].nm);
        }
    }

    #[test]
    fn empty_dataset_is_empty() {
        let grid = Grid::new(BBox::unit(), 2, 2).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap();
        assert_eq!(
            brute_force_top_k(&Dataset::new(), &grid, &params),
            Some(Vec::new())
        );
    }
}
