//! Trajectory patterns: ordered lists of grid-cell positions (§3.3).

use std::fmt;
use trajgeo::{CellId, Grid, Point2};

/// A trajectory pattern `P = (p₁, …, p_m)`: the object visits the centers
/// of these grid cells at `m` consecutive snapshots. A pattern of length 1
/// is a *singular pattern*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pattern {
    cells: Vec<CellId>,
}

impl Pattern {
    /// Builds a pattern from cell ids. Empty patterns are not meaningful;
    /// `None` is returned for an empty list.
    pub fn new(cells: Vec<CellId>) -> Option<Pattern> {
        if cells.is_empty() {
            None
        } else {
            Some(Pattern { cells })
        }
    }

    /// A singular (length-1) pattern.
    pub fn singular(cell: CellId) -> Pattern {
        Pattern { cells: vec![cell] }
    }

    /// Number of positions (the paper's pattern *length* `m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false — patterns have at least one position.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The positions as cell ids.
    #[inline]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Whether this is a singular (length-1) pattern.
    #[inline]
    pub fn is_singular(&self) -> bool {
        self.cells.len() == 1
    }

    /// Concatenation `self · other` (Definition of the min-max property:
    /// "the trajectory pattern by appending P'' to the end of P'").
    pub fn concat(&self, other: &Pattern) -> Pattern {
        let mut cells = Vec::with_capacity(self.cells.len() + other.cells.len());
        cells.extend_from_slice(&self.cells);
        cells.extend_from_slice(&other.cells);
        Pattern { cells }
    }

    /// The pattern with the first position removed, or `None` if singular.
    pub fn drop_first(&self) -> Option<Pattern> {
        if self.cells.len() <= 1 {
            None
        } else {
            Some(Pattern {
                cells: self.cells[1..].to_vec(),
            })
        }
    }

    /// The pattern with the last position removed, or `None` if singular.
    pub fn drop_last(&self) -> Option<Pattern> {
        if self.cells.len() <= 1 {
            None
        } else {
            Some(Pattern {
                cells: self.cells[..self.cells.len() - 1].to_vec(),
            })
        }
    }

    /// Whether `self` is a **super-pattern** of `other` (Definition 3):
    /// `other` occurs as a contiguous sub-sequence of `self`.
    pub fn is_super_pattern_of(&self, other: &Pattern) -> bool {
        let (n, m) = (self.cells.len(), other.cells.len());
        if m > n {
            return false;
        }
        (0..=n - m).any(|i| self.cells[i..i + m] == other.cells[..])
    }

    /// Whether `self` is a *proper* super-pattern of `other` (strictly
    /// longer, Definition 3).
    pub fn is_proper_super_pattern_of(&self, other: &Pattern) -> bool {
        self.cells.len() > other.cells.len() && self.is_super_pattern_of(other)
    }

    /// The sequence of cell-center points under `grid`, e.g. for distance
    /// computations in pattern-group discovery.
    pub fn centers(&self, grid: &Grid) -> Vec<Point2> {
        self.cells.iter().map(|&c| grid.center(c)).collect()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A pattern together with its mined NM value.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MinedPattern {
    /// The pattern.
    pub pattern: Pattern,
    /// Its normalized match `NM(P)` over the mined dataset.
    pub nm: f64,
}

impl MinedPattern {
    /// Convenience constructor.
    pub fn new(pattern: Pattern, nm: f64) -> MinedPattern {
        MinedPattern { pattern, nm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    #[test]
    fn construction_rejects_empty() {
        assert!(Pattern::new(vec![]).is_none());
        assert_eq!(Pattern::singular(CellId(3)).len(), 1);
    }

    #[test]
    fn concat_appends() {
        let p = pat(&[1, 2]).concat(&pat(&[3]));
        assert_eq!(p, pat(&[1, 2, 3]));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn super_pattern_relation_matches_definition_3() {
        // Paper's example: P = (p1,p2,p3), P' = (p2,p3).
        let p = pat(&[1, 2, 3]);
        let p2 = pat(&[2, 3]);
        assert!(p.is_super_pattern_of(&p2));
        assert!(p.is_proper_super_pattern_of(&p2));
        // A pattern is a (non-proper) super-pattern of itself.
        assert!(p.is_super_pattern_of(&p));
        assert!(!p.is_proper_super_pattern_of(&p));
        // Non-contiguous subsequences do not count.
        assert!(!p.is_super_pattern_of(&pat(&[1, 3])));
        // Longer patterns are never sub-patterns.
        assert!(!p2.is_super_pattern_of(&p));
    }

    #[test]
    fn drop_first_last() {
        let p = pat(&[7, 8, 9]);
        assert_eq!(p.drop_first().unwrap(), pat(&[8, 9]));
        assert_eq!(p.drop_last().unwrap(), pat(&[7, 8]));
        assert!(Pattern::singular(CellId(0)).drop_first().is_none());
        assert!(Pattern::singular(CellId(0)).drop_last().is_none());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(pat(&[1, 2]).to_string(), "(c1, c2)");
    }

    #[test]
    fn centers_follow_grid() {
        use trajgeo::BBox;
        let grid = Grid::new(BBox::unit(), 2, 2).unwrap();
        let p = pat(&[0, 3]);
        let cs = p.centers(&grid);
        assert_eq!(cs[0], Point2::new(0.25, 0.25));
        assert_eq!(cs[1], Point2::new(0.75, 0.75));
    }
}
