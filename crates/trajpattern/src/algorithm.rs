//! The TrajPattern mining algorithm (§4 of the paper).
//!
//! Mining proceeds by *growing*:
//!
//! 1. Initialize the candidate set `Q` with every singular pattern (one per
//!    grid cell) and set the threshold ω to the k-th best NM seen.
//! 2. Mark patterns with NM ≥ ω *high* (`H`), the rest *low*.
//! 3. For each high pattern `P` and every pattern `P' ∈ Q`, generate the
//!    two concatenations `P·P'` and `P'·P`, score them, and insert them
//!    into `Q`.
//! 4. Update ω, re-mark high/low, and prune: low patterns survive only if
//!    they satisfy the 1-extension property (Lemma 1) — and, in this
//!    implementation, only if their NM clears an *exact composability
//!    threshold* τ derived from the weighted-mean bound (see below).
//! 5. Stop when the high set does not change.
//!
//! # Bound pruning (exact)
//!
//! The min-max proof gives `NM(A·B) ≤ (|A|·NM(A) + |B|·NM(B))/(|A|+|B|)`.
//! Before scoring a candidate we evaluate this bound:
//!
//! - a candidate that cannot reach ω can never become high (ω only rises);
//! - a candidate kept *as a low 1-extension building block* only matters if
//!   some high pattern `F = H'·P` with `|F| ≤ max_len` exists; unrolling
//!   the weighted-mean bound along the Lemma-1 composition chain shows `P`
//!   is useful only if `NM(P) ≥ τ(|P|) = ω + (max_len−|P|)·(ω−NM_best)/|P|`
//!   where `NM_best` is the best NM overall (always attained by a singular,
//!   by min-max). The τ threshold is self-consistent under recursion, so
//!   pruning against it never loses a reachable high pattern.
//!
//! Both prunings can be disabled via [`MiningParams`] for ablation.
//!
//! # Incremental pair enumeration
//!
//! Naively, step 3 re-enumerates `2·|H|·|Q|` pairs every iteration even
//! though almost all of them were already tried. This implementation
//! interns patterns (so pair identity is a cheap `u64`) and enumerates
//! only pairs involving something *new*: newly inserted `Q` members pair
//! with all current highs, and newly promoted highs pair with all of `Q`.
//! This is exact: ω and τ are monotone non-decreasing, so a pair that was
//! bound-pruned stays prunable forever, and a pattern that leaves the high
//! set (ω rose past it) can never return. Pruned-then-needed patterns are
//! regenerated through `(singular × fresh high)` pairs, which is exactly
//! the shape Lemma 1 requires.
//!
//! The loop itself — level initialization, pair enumeration, pruning,
//! convergence — lives in [`crate::engine`], shared with the seeded
//! re-growth and the streaming repair path; this module is the batch
//! entry point plus the outcome/stat types.

use crate::engine::{empty_outcome, finish, init_state, run_growth};
use crate::groups::PatternGroup;
use crate::params::{MiningParams, ParamsError};
use crate::pattern::MinedPattern;
use crate::scorer::Scorer;
use trajdata::Dataset;
use trajgeo::Grid;

pub use crate::engine::{effective_max_len_from, seed_patterns};
pub use crate::stats::MiningStats;

/// The result of a mining run.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The top-k patterns (length ≥ `min_len`), best NM first. Ties are
    /// broken by pattern content for determinism.
    pub patterns: Vec<MinedPattern>,
    /// Pattern groups over `patterns` (§4.2), if `params.gamma` was set;
    /// empty otherwise.
    pub groups: Vec<PatternGroup>,
    /// Run counters.
    pub stats: MiningStats,
    /// Counters of the [`Scorer`] that produced this outcome. Engine
    /// telemetry, not part of the mining result proper: a resumed run
    /// reports different numbers (its scorer rebuilt less cache) while
    /// `patterns`/`groups`/`stats` stay bit-identical.
    pub scorer: crate::ScorerStats,
}

/// Mines the top-k NM patterns from `data` over `grid`.
///
/// This is a thin compatibility wrapper around the [`crate::Miner`]
/// session API; see the crate docs for an example. Returns `Err` only for
/// invalid parameters.
pub fn mine(
    data: &Dataset,
    grid: &Grid,
    params: &MiningParams,
) -> Result<MiningOutcome, ParamsError> {
    params.validate()?;
    let scorer = Scorer::with_threads(data, grid, params.delta, params.min_prob, params.threads);
    mine_with_scorer(&scorer, params)
}

/// Like [`mine`], but reuses an existing [`Scorer`] (and its probability
/// cache) — useful when several mining configurations run over the same
/// data, as in the benchmark sweeps.
pub fn mine_with_scorer(
    scorer: &Scorer<'_>,
    params: &MiningParams,
) -> Result<MiningOutcome, ParamsError> {
    params.validate()?;
    if scorer.data().is_empty() || scorer.grid().num_cells() == 0 {
        return Ok(empty_outcome());
    }
    let mut state = init_state(scorer, params, &[]).expect("an empty seed is always valid");
    match run_growth::<_, std::convert::Infallible>(scorer, params, &mut state, |_| Ok(())) {
        Ok(()) => {}
        Err(e) => match e {},
    }
    Ok(finish(scorer, params, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use trajdata::{SnapshotPoint, Trajectory};
    use trajgeo::fxhash::FxHashSet;
    use trajgeo::{BBox, CellId, Point2};

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    /// Objects sweeping the third row (cells 8..12) of a 4×4 unit grid.
    fn sweep_data(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    #[test]
    fn finds_the_dominant_singulars() {
        let (data, grid) = sweep_data(8, 0.03);
        let params = MiningParams::new(4, 0.1).unwrap().with_max_len(1).unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 4);
        // The four on-path cells dominate all others.
        let found: FxHashSet<Pattern> = out.patterns.iter().map(|m| m.pattern.clone()).collect();
        for c in [8u32, 9, 10, 11] {
            assert!(found.contains(&pat(&[c])), "missing singular c{c}");
        }
    }

    #[test]
    fn grows_long_patterns_on_clean_data() {
        let (data, grid) = sweep_data(10, 0.02);
        let params = MiningParams::new(1, 0.1)
            .unwrap()
            .with_min_len(4)
            .unwrap()
            .with_max_len(4)
            .unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 1);
        assert_eq!(out.patterns[0].pattern, pat(&[8, 9, 10, 11]));
    }

    #[test]
    fn results_are_sorted_and_truncated() {
        let (data, grid) = sweep_data(5, 0.05);
        let params = MiningParams::new(7, 0.1).unwrap().with_max_len(3).unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 7);
        for w in out.patterns.windows(2) {
            assert!(w[0].nm >= w[1].nm);
        }
    }

    #[test]
    fn empty_dataset_returns_empty() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap();
        let out = mine(&Dataset::new(), &grid, &params).unwrap();
        assert!(out.patterns.is_empty());
        assert_eq!(out.stats.iterations, 0);
    }

    #[test]
    fn pruning_does_not_change_results() {
        // Ablation invariant: both prunings are exact, so the mined set is
        // identical with and without them.
        let (data, grid) = sweep_data(6, 0.06);
        let base = MiningParams::new(5, 0.1).unwrap().with_max_len(4).unwrap();
        let mut no_prune = base.clone();
        no_prune.use_bound_prune = false;
        no_prune.use_one_extension_prune = false;
        let a = mine(&data, &grid, &base).unwrap();
        let b = mine(&data, &grid, &no_prune).unwrap();
        let pa: Vec<_> = a.patterns.iter().map(|m| m.pattern.clone()).collect();
        let pb: Vec<_> = b.patterns.iter().map(|m| m.pattern.clone()).collect();
        assert_eq!(pa, pb);
        // And the pruned run does no more scoring work.
        assert!(a.stats.candidates_scored <= b.stats.candidates_scored);
    }

    #[test]
    fn bound_pruning_saves_work() {
        let (data, grid) = sweep_data(6, 0.06);
        let base = MiningParams::new(3, 0.1).unwrap().with_max_len(4).unwrap();
        let out = mine(&data, &grid, &base).unwrap();
        assert!(
            out.stats.candidates_bound_pruned > 0,
            "bound pruning should fire on a 16-cell grid"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (data, grid) = sweep_data(6, 0.05);
        let params = MiningParams::new(6, 0.1).unwrap().with_max_len(3).unwrap();
        let a = mine(&data, &grid, &params).unwrap();
        let b = mine(&data, &grid, &params).unwrap();
        let pa: Vec<_> = a
            .patterns
            .iter()
            .map(|m| (m.pattern.clone(), m.nm))
            .collect();
        let pb: Vec<_> = b
            .patterns
            .iter()
            .map(|m| (m.pattern.clone(), m.nm))
            .collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn min_len_filters_results() {
        let (data, grid) = sweep_data(6, 0.05);
        let params = MiningParams::new(5, 0.1)
            .unwrap()
            .with_min_len(3)
            .unwrap()
            .with_max_len(4)
            .unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert!(!out.patterns.is_empty());
        for m in &out.patterns {
            assert!(m.pattern.len() >= 3, "pattern {} too short", m.pattern);
        }
    }

    #[test]
    fn pair_memoization_does_not_rescore() {
        // Candidates are scored at most once across iterations.
        let (data, grid) = sweep_data(8, 0.05);
        let params = MiningParams::new(8, 0.1).unwrap().with_max_len(4).unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        // generated counts distinct ordered pairs only.
        assert!(out.stats.candidates_scored <= out.stats.candidates_generated);
    }
}
