//! The TrajPattern mining algorithm (§4 of the paper).
//!
//! Mining proceeds by *growing*:
//!
//! 1. Initialize the candidate set `Q` with every singular pattern (one per
//!    grid cell) and set the threshold ω to the k-th best NM seen.
//! 2. Mark patterns with NM ≥ ω *high* (`H`), the rest *low*.
//! 3. For each high pattern `P` and every pattern `P' ∈ Q`, generate the
//!    two concatenations `P·P'` and `P'·P`, score them, and insert them
//!    into `Q`.
//! 4. Update ω, re-mark high/low, and prune: low patterns survive only if
//!    they satisfy the 1-extension property (Lemma 1) — and, in this
//!    implementation, only if their NM clears an *exact composability
//!    threshold* τ derived from the weighted-mean bound (see below).
//! 5. Stop when the high set does not change.
//!
//! # Bound pruning (exact)
//!
//! The min-max proof gives `NM(A·B) ≤ (|A|·NM(A) + |B|·NM(B))/(|A|+|B|)`.
//! Before scoring a candidate we evaluate this bound:
//!
//! - a candidate that cannot reach ω can never become high (ω only rises);
//! - a candidate kept *as a low 1-extension building block* only matters if
//!   some high pattern `F = H'·P` with `|F| ≤ max_len` exists; unrolling
//!   the weighted-mean bound along the Lemma-1 composition chain shows `P`
//!   is useful only if `NM(P) ≥ τ(|P|) = ω + (max_len−|P|)·(ω−NM_best)/|P|`
//!   where `NM_best` is the best NM overall (always attained by a singular,
//!   by min-max). The τ threshold is self-consistent under recursion, so
//!   pruning against it never loses a reachable high pattern.
//!
//! Both prunings can be disabled via [`MiningParams`] for ablation.
//!
//! # Incremental pair enumeration
//!
//! Naively, step 3 re-enumerates `2·|H|·|Q|` pairs every iteration even
//! though almost all of them were already tried. This implementation
//! interns patterns (so pair identity is a cheap `u64`) and enumerates
//! only pairs involving something *new*: newly inserted `Q` members pair
//! with all current highs, and newly promoted highs pair with all of `Q`.
//! This is exact: ω and τ are monotone non-decreasing, so a pair that was
//! bound-pruned stays prunable forever, and a pattern that leaves the high
//! set (ω rose past it) can never return. Pruned-then-needed patterns are
//! regenerated through `(singular × fresh high)` pairs, which is exactly
//! the shape Lemma 1 requires.

use crate::groups::{discover_groups, PatternGroup};
use crate::minmax::weighted_mean_bound;
use crate::params::{MiningParams, ParamsError};
use crate::pattern::{MinedPattern, Pattern};
use crate::prune::is_one_extension;
use crate::scorer::Scorer;
use crate::topk::ThresholdTracker;
use trajdata::Dataset;
use trajgeo::fxhash::{FxHashMap, FxHashSet};
use trajgeo::Grid;

/// Counters describing one mining run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MiningStats {
    /// Growing iterations executed.
    pub iterations: usize,
    /// Candidate concatenations considered (distinct ordered pairs).
    pub candidates_generated: u64,
    /// Candidates whose NM was actually computed against the data.
    pub candidates_scored: u64,
    /// Candidates skipped by the weighted-mean bound.
    pub candidates_bound_pruned: u64,
    /// Size of the active set `Q` when mining stopped.
    pub final_queue_size: usize,
    /// Total pattern scorings performed by the scorer (including the
    /// singular initialization pass counted as one batch of `G`).
    pub nm_evaluations: u64,
    /// Worker-shard panics absorbed by rescoring the failed shard
    /// sequentially. `0` in a healthy run; a non-zero value means the run
    /// degraded gracefully — results are still bit-identical to a healthy
    /// run, only wall-clock time was lost.
    pub degraded_shard_rescores: u64,
}

/// The result of a mining run.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The top-k patterns (length ≥ `min_len`), best NM first. Ties are
    /// broken by pattern content for determinism.
    pub patterns: Vec<MinedPattern>,
    /// Pattern groups over `patterns` (§4.2), if `params.gamma` was set;
    /// empty otherwise.
    pub groups: Vec<PatternGroup>,
    /// Run counters.
    pub stats: MiningStats,
    /// Counters of the [`Scorer`] that produced this outcome. Engine
    /// telemetry, not part of the mining result proper: a resumed run
    /// reports different numbers (its scorer rebuilt less cache) while
    /// `patterns`/`groups`/`stats` stay bit-identical.
    pub scorer: crate::ScorerStats,
}

/// Mines the top-k NM patterns from `data` over `grid`.
///
/// This is a thin compatibility wrapper around the [`crate::Miner`]
/// session API; see the crate docs for an example. Returns `Err` only for
/// invalid parameters.
pub fn mine(
    data: &Dataset,
    grid: &Grid,
    params: &MiningParams,
) -> Result<MiningOutcome, ParamsError> {
    params.validate()?;
    let scorer = Scorer::with_threads(data, grid, params.delta, params.min_prob, params.threads);
    mine_with_scorer(&scorer, params)
}

/// Pattern interner: dense u32 ids for cheap pair bookkeeping.
#[derive(Default)]
pub(crate) struct Store {
    patterns: Vec<Pattern>,
    ids: FxHashMap<Pattern, u32>,
    nms: Vec<f64>,
    lens: Vec<u32>,
}

impl Store {
    pub(crate) fn add(&mut self, p: Pattern, nm: f64) -> u32 {
        debug_assert!(!self.ids.contains_key(&p));
        let id = self.patterns.len() as u32;
        self.lens.push(p.len() as u32);
        self.nms.push(nm);
        self.ids.insert(p.clone(), id);
        self.patterns.push(p);
        id
    }

    #[inline]
    pub(crate) fn id_of(&self, p: &Pattern) -> Option<u32> {
        self.ids.get(p).copied()
    }

    #[inline]
    pub(crate) fn get(&self, id: u32) -> &Pattern {
        &self.patterns[id as usize]
    }

    #[inline]
    pub(crate) fn nm(&self, id: u32) -> f64 {
        self.nms[id as usize]
    }

    #[inline]
    pub(crate) fn len(&self, id: u32) -> u32 {
        self.lens[id as usize]
    }

    /// Number of interned patterns (ids are `0..count`).
    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.patterns.len()
    }

    /// Patterns in id order — the checkpoint codec serializes (and
    /// re-adds) them in exactly this order so ids survive a round-trip.
    #[inline]
    pub(crate) fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }
}

/// Everything the growing process carries between levels. A checkpoint is
/// a serialization of this struct; [`run_growth`] advances it one level at
/// a time so mining can stop and resume at any level boundary with
/// bit-identical results.
pub(crate) struct GrowthState {
    /// Every pattern ever scored (dense ids, with NM and length).
    pub(crate) store: Store,
    /// The active candidate set Q (ids into the store).
    pub(crate) q: FxHashSet<u32>,
    /// Ordered pairs already attempted: `(a << 32) | b`.
    pub(crate) tried: FxHashSet<u64>,
    /// ω over qualifying patterns (length ≥ min_len).
    pub(crate) qual_tracker: ThresholdTracker,
    /// Cached `qual_tracker.omega()` as of the last level boundary.
    pub(crate) omega: f64,
    /// Current high set `H` (NM ≥ ω).
    pub(crate) high: FxHashSet<u32>,
    /// Highs whose (h × Q) pairs have been fully enumerated.
    pub(crate) enumerated_high: FxHashSet<u32>,
    /// Q members not yet enumerated as the "any" side of a pair, in
    /// insertion order.
    pub(crate) fresh: Vec<u32>,
    /// Best NM overall (attained by a singular, by min-max).
    pub(crate) nm_best: f64,
    /// Counters so far (`stats.iterations` is the level number).
    pub(crate) stats: MiningStats,
    /// Whether the high set reached a fixpoint.
    pub(crate) converged: bool,
}

/// Like [`mine`], but reuses an existing [`Scorer`] (and its probability
/// cache) — useful when several mining configurations run over the same
/// data, as in the benchmark sweeps.
pub fn mine_with_scorer(
    scorer: &Scorer<'_>,
    params: &MiningParams,
) -> Result<MiningOutcome, ParamsError> {
    params.validate()?;
    if scorer.data().is_empty() || scorer.grid().num_cells() == 0 {
        return Ok(empty_outcome());
    }
    let mut state = init_state(scorer, params);
    match run_growth::<std::convert::Infallible>(scorer, params, &mut state, |_| Ok(())) {
        Ok(()) => {}
        Err(e) => match e {},
    }
    Ok(finish(scorer, params, state))
}

/// The outcome of mining nothing (empty dataset or empty grid).
pub(crate) fn empty_outcome() -> MiningOutcome {
    MiningOutcome {
        patterns: Vec::new(),
        groups: Vec::new(),
        stats: MiningStats::default(),
        scorer: crate::ScorerStats::default(),
    }
}

/// The effective maximum pattern length: patterns longer than the longest
/// trajectory only ever score the floor, so growing past it is wasted.
pub(crate) fn effective_max_len(scorer: &Scorer<'_>, params: &MiningParams) -> usize {
    let data_max_len = scorer.data().iter().map(|t| t.len()).max().unwrap_or(0);
    effective_max_len_from(params, data_max_len)
}

/// [`effective_max_len`] for callers that already know the longest
/// trajectory length (e.g. a streaming window) and don't want to build a
/// scorer just to ask: `min(params.max_len, longest.max(1))`.
pub fn effective_max_len_from(params: &MiningParams, longest: usize) -> usize {
    params.max_len.min(longest.max(1))
}

/// Level 0 of the growing process: score every singular pattern, seed ω
/// (with genuine length-`min_len` windows when `min_len > 1`), and mark
/// the initial high set.
pub(crate) fn init_state(scorer: &Scorer<'_>, params: &MiningParams) -> GrowthState {
    let grid = scorer.grid();
    let mut stats = MiningStats::default();
    let degraded_base = scorer.degraded_rescores();

    let mut store = Store::default();
    let mut q: FxHashSet<u32> = FxHashSet::default();

    // ω over *qualifying* patterns (length ≥ min_len). §5: "The NM
    // threshold ω is set to the minimum NM of the set of k patterns with
    // the most NM of length at least d."
    let mut qual_tracker = ThresholdTracker::new(params.k);

    // Initialization: all singular patterns.
    let singular_nms = scorer.nm_all_singulars();
    stats.nm_evaluations += grid.num_cells() as u64;
    let mut nm_best = f64::NEG_INFINITY;
    for cell in grid.cells() {
        let nm = singular_nms[cell.index()];
        let id = store.add(Pattern::singular(cell), nm);
        q.insert(id);
        if params.min_len <= 1 {
            qual_tracker.offer(nm);
        }
        nm_best = nm_best.max(nm);
    }

    // min_len > 1 bootstrap: until k qualifying patterns exist, ω is -∞
    // and nothing can be pruned, which explodes on large grids. Seed the
    // tracker with genuine length-min_len patterns read directly off the
    // data (most frequent discretized windows) — their true NMs are valid
    // lower-bound evidence for ω, so pruning stays exact.
    if params.min_len > 1 {
        let seeds: Vec<Pattern> = seed_patterns(scorer, params.min_len, params.k)
            .into_iter()
            .filter(|p| store.id_of(p).is_none())
            .collect();
        let nms = scorer.score_batch(&seeds);
        stats.candidates_scored += seeds.len() as u64;
        stats.nm_evaluations += seeds.len() as u64;
        for (p, nm) in seeds.into_iter().zip(nms) {
            let id = store.add(p, nm);
            q.insert(id);
            qual_tracker.offer(nm);
        }
    }
    stats.degraded_shard_rescores += scorer.degraded_rescores() - degraded_base;

    let omega = qual_tracker.omega();
    let high: FxHashSet<u32> = q
        .iter()
        .copied()
        .filter(|&id| store.nm(id) >= omega)
        .collect();
    let fresh: Vec<u32> = {
        let mut v: Vec<u32> = q.iter().copied().collect();
        v.sort_unstable();
        v
    };

    GrowthState {
        store,
        q,
        tried: FxHashSet::default(),
        qual_tracker,
        omega,
        high,
        enumerated_high: FxHashSet::default(),
        fresh,
        nm_best,
        stats,
        converged: false,
    }
}

/// Runs growth levels until the high set converges or `max_iters` is
/// reached, calling `on_level` after every completed level (this is the
/// checkpoint hook). `state.stats.iterations` counts completed levels, so
/// resuming a restored state continues exactly where it stopped.
pub(crate) fn run_growth<E>(
    scorer: &Scorer<'_>,
    params: &MiningParams,
    state: &mut GrowthState,
    mut on_level: impl FnMut(&GrowthState) -> Result<(), E>,
) -> Result<(), E> {
    while !state.converged && state.stats.iterations < params.max_iters {
        grow_level(scorer, params, state);
        on_level(state)?;
    }
    Ok(())
}

/// One growing level: enumerate new pairs, bound-prune, batch-score,
/// re-threshold, re-mark, and prune Q.
pub(crate) fn grow_level(scorer: &Scorer<'_>, params: &MiningParams, state: &mut GrowthState) {
    let max_len = effective_max_len(scorer, params);
    let degraded_base = scorer.degraded_rescores();
    state.stats.iterations += 1;

    let fresh_vec: Vec<u32> = {
        let mut v: Vec<u32> = state
            .fresh
            .iter()
            .copied()
            .filter(|id| state.q.contains(id))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut fresh_high_vec: Vec<u32> = state
        .high
        .iter()
        .copied()
        .filter(|id| !state.enumerated_high.contains(id))
        .collect();
    fresh_high_vec.sort_unstable();
    let mut high_vec: Vec<u32> = state.high.iter().copied().collect();
    high_vec.sort_unstable();
    let mut q_vec: Vec<u32> = state.q.iter().copied().collect();
    q_vec.sort_unstable();

    let mut next_fresh: Vec<u32> = Vec::new();

    // Candidates surviving the bound check are *collected* here and
    // scored in one batch after pair enumeration. This is exact: ω and
    // τ are deliberately read once per iteration (the seed code also
    // refreshed them only after enumeration), so no pruning decision
    // inside the loop can depend on a score produced within it.
    let mut pending: Vec<Pattern> = Vec::new();
    let mut pending_ids: FxHashMap<Pattern, usize> = FxHashMap::default();

    // One candidate pair (ordered): bound-check, dedupe, enqueue.
    macro_rules! try_pair {
        ($a:expr, $b:expr) => {{
            let a: u32 = $a;
            let b: u32 = $b;
            let la = state.store.len(a);
            let lb = state.store.len(b);
            let total_len = (la + lb) as usize;
            if total_len <= max_len {
                let key = ((a as u64) << 32) | b as u64;
                if state.tried.insert(key) {
                    state.stats.candidates_generated += 1;
                    // Candidate shapes high·singular / singular·high
                    // are the Lemma-1 building blocks: prune them
                    // against the composability threshold τ, others
                    // against ω.
                    let one_ext_shape = (lb == 1 && state.high.contains(&a))
                        || (la == 1 && state.high.contains(&b));
                    let mut pruned = false;
                    if params.use_bound_prune {
                        let bound = weighted_mean_bound(
                            state.store.nm(a),
                            la as usize,
                            state.store.nm(b),
                            lb as usize,
                        );
                        let threshold = if one_ext_shape {
                            tau(total_len, state.omega, state.nm_best, max_len)
                        } else {
                            state.omega
                        };
                        if bound < threshold {
                            state.stats.candidates_bound_pruned += 1;
                            pruned = true;
                        }
                    }
                    if !pruned {
                        let cand = state.store.get(a).concat(state.store.get(b));
                        match state.store.id_of(&cand) {
                            Some(id) => {
                                if state.q.insert(id) {
                                    next_fresh.push(id);
                                }
                            }
                            None => {
                                // Defer scoring to the per-iteration
                                // batch; dedupe within the batch so a
                                // candidate reachable through several
                                // pairs is scored once.
                                if !pending_ids.contains_key(&cand) {
                                    pending_ids.insert(cand.clone(), pending.len());
                                    pending.push(cand);
                                }
                            }
                        }
                    }
                }
            }
        }};
    }

    // New Q members × current highs, both orders.
    for &h in &high_vec {
        for &x in &fresh_vec {
            try_pair!(h, x);
            try_pair!(x, h);
        }
    }
    // Newly promoted highs × all of Q, both orders.
    for &h in &fresh_high_vec {
        for &x in &q_vec {
            try_pair!(h, x);
            try_pair!(x, h);
        }
    }
    state.enumerated_high.extend(fresh_high_vec);

    // Batch-score everything enqueued this iteration (in enumeration
    // order, so store ids — and therefore the whole run — are
    // identical to one-at-a-time scoring).
    let nms = scorer.score_batch(&pending);
    state.stats.candidates_scored += pending.len() as u64;
    state.stats.nm_evaluations += pending.len() as u64;
    for (cand, nm) in pending.into_iter().zip(nms) {
        let total_len = cand.len();
        let id = state.store.add(cand, nm);
        if total_len >= params.min_len {
            state.qual_tracker.offer(nm);
        }
        state.q.insert(id);
        next_fresh.push(id);
    }

    // Re-threshold and re-mark.
    state.omega = state.qual_tracker.omega();
    let high_new: FxHashSet<u32> = state
        .q
        .iter()
        .copied()
        .filter(|&id| state.store.nm(id) >= state.omega)
        .collect();

    // Prune low patterns: keep only 1-extension lows above τ.
    if params.use_one_extension_prune {
        let high_patterns: FxHashSet<Pattern> = high_new
            .iter()
            .map(|&id| state.store.get(id).clone())
            .collect();
        let omega_snapshot = state.omega;
        let nm_best = state.nm_best;
        let store = &state.store;
        state.q.retain(|&id| {
            if high_new.contains(&id) {
                return true;
            }
            if !is_one_extension(store.get(id), &high_patterns) {
                return false;
            }
            !params.use_bound_prune
                || store.nm(id) >= tau(store.len(id) as usize, omega_snapshot, nm_best, max_len)
        });
    }

    state.converged = high_new == state.high;
    state.high = high_new;
    state.fresh = next_fresh;
    state.stats.degraded_shard_rescores += scorer.degraded_rescores() - degraded_base;
}

/// Extracts the final top-k answer (and groups) from a finished — or
/// deliberately interrupted — growth state.
pub(crate) fn finish(
    scorer: &Scorer<'_>,
    params: &MiningParams,
    mut state: GrowthState,
) -> MiningOutcome {
    state.stats.final_queue_size = state.q.len();
    state.stats.nm_evaluations = scorer.evaluations().max(state.stats.nm_evaluations);
    let store = &state.store;

    // Final answer: best k qualifying patterns over everything scored.
    let mut order: Vec<u32> = (0..store.count() as u32)
        .filter(|&id| store.len(id) as usize >= params.min_len)
        .collect();
    order.sort_unstable_by(|&a, &b| {
        store
            .nm(b)
            .partial_cmp(&store.nm(a))
            .expect("NM values are finite")
            .then_with(|| store.get(a).cmp(store.get(b)))
    });
    order.truncate(params.k);
    let qualifying: Vec<MinedPattern> = order
        .into_iter()
        .map(|id| MinedPattern::new(store.get(id).clone(), store.nm(id)))
        .collect();

    let groups = match params.gamma {
        Some(gamma) => discover_groups(&qualifying, scorer.grid(), gamma),
        None => Vec::new(),
    };

    MiningOutcome {
        patterns: qualifying,
        groups,
        stats: state.stats,
        scorer: scorer.stats(),
    }
}

/// Harvests up to `k` seed patterns of exactly `min_len` positions from
/// the data itself: each trajectory's snapshot means are discretized to
/// cells and every contiguous window becomes a candidate; the most
/// frequent distinct windows are returned (deterministic order).
///
/// Used to bootstrap the qualifying threshold ω when mining with a
/// minimum-length constraint (§5) — the seeds are genuine patterns, so the
/// ω they establish is a valid (exact) pruning threshold. The baseline
/// miners share this bootstrap for a fair comparison.
pub fn seed_patterns(scorer: &Scorer<'_>, min_len: usize, k: usize) -> Vec<Pattern> {
    let grid = scorer.grid();
    let mut counts: FxHashMap<Vec<trajgeo::CellId>, u32> = FxHashMap::default();
    for traj in scorer.data().iter() {
        if traj.len() < min_len {
            continue;
        }
        let cells: Vec<trajgeo::CellId> = traj
            .points()
            .iter()
            .map(|sp| grid.locate(sp.mean))
            .collect();
        for w in cells.windows(min_len) {
            *counts.entry(w.to_vec()).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(Vec<trajgeo::CellId>, u32)> = counts.into_iter().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked
        .into_iter()
        .take(k)
        .map(|(cells, _)| Pattern::new(cells).expect("windows are non-empty"))
        .collect()
}

/// The composability threshold τ for a (potential) low building block of
/// length `len`: a pattern below τ cannot participate in any high pattern
/// of length ≤ `max_len` (see the module docs). `-∞` while ω is unset.
pub(crate) fn tau(len: usize, omega: f64, nm_best: f64, max_len: usize) -> f64 {
    if !omega.is_finite() {
        return f64::NEG_INFINITY;
    }
    let slack = max_len.saturating_sub(len) as f64;
    omega + slack * (omega - nm_best) / len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::{SnapshotPoint, Trajectory};
    use trajgeo::{BBox, CellId, Point2};

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| CellId(i)).collect()).unwrap()
    }

    /// Objects sweeping the third row (cells 8..12) of a 4×4 unit grid.
    fn sweep_data(n: usize, sigma: f64) -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let data: Dataset = (0..n)
            .map(|_| {
                Trajectory::new(
                    (0..4)
                        .map(|i| {
                            SnapshotPoint::new(Point2::new(0.125 + i as f64 * 0.25, 0.625), sigma)
                                .unwrap()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        (data, grid)
    }

    #[test]
    fn finds_the_dominant_singulars() {
        let (data, grid) = sweep_data(8, 0.03);
        let params = MiningParams::new(4, 0.1).unwrap().with_max_len(1).unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 4);
        // The four on-path cells dominate all others.
        let found: FxHashSet<Pattern> = out.patterns.iter().map(|m| m.pattern.clone()).collect();
        for c in [8u32, 9, 10, 11] {
            assert!(found.contains(&pat(&[c])), "missing singular c{c}");
        }
    }

    #[test]
    fn grows_long_patterns_on_clean_data() {
        let (data, grid) = sweep_data(10, 0.02);
        let params = MiningParams::new(1, 0.1)
            .unwrap()
            .with_min_len(4)
            .unwrap()
            .with_max_len(4)
            .unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 1);
        assert_eq!(out.patterns[0].pattern, pat(&[8, 9, 10, 11]));
    }

    #[test]
    fn results_are_sorted_and_truncated() {
        let (data, grid) = sweep_data(5, 0.05);
        let params = MiningParams::new(7, 0.1).unwrap().with_max_len(3).unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert_eq!(out.patterns.len(), 7);
        for w in out.patterns.windows(2) {
            assert!(w[0].nm >= w[1].nm);
        }
    }

    #[test]
    fn empty_dataset_returns_empty() {
        let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
        let params = MiningParams::new(3, 0.1).unwrap();
        let out = mine(&Dataset::new(), &grid, &params).unwrap();
        assert!(out.patterns.is_empty());
        assert_eq!(out.stats.iterations, 0);
    }

    #[test]
    fn pruning_does_not_change_results() {
        // Ablation invariant: both prunings are exact, so the mined set is
        // identical with and without them.
        let (data, grid) = sweep_data(6, 0.06);
        let base = MiningParams::new(5, 0.1).unwrap().with_max_len(4).unwrap();
        let mut no_prune = base.clone();
        no_prune.use_bound_prune = false;
        no_prune.use_one_extension_prune = false;
        let a = mine(&data, &grid, &base).unwrap();
        let b = mine(&data, &grid, &no_prune).unwrap();
        let pa: Vec<_> = a.patterns.iter().map(|m| m.pattern.clone()).collect();
        let pb: Vec<_> = b.patterns.iter().map(|m| m.pattern.clone()).collect();
        assert_eq!(pa, pb);
        // And the pruned run does no more scoring work.
        assert!(a.stats.candidates_scored <= b.stats.candidates_scored);
    }

    #[test]
    fn bound_pruning_saves_work() {
        let (data, grid) = sweep_data(6, 0.06);
        let base = MiningParams::new(3, 0.1).unwrap().with_max_len(4).unwrap();
        let out = mine(&data, &grid, &base).unwrap();
        assert!(
            out.stats.candidates_bound_pruned > 0,
            "bound pruning should fire on a 16-cell grid"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (data, grid) = sweep_data(6, 0.05);
        let params = MiningParams::new(6, 0.1).unwrap().with_max_len(3).unwrap();
        let a = mine(&data, &grid, &params).unwrap();
        let b = mine(&data, &grid, &params).unwrap();
        let pa: Vec<_> = a
            .patterns
            .iter()
            .map(|m| (m.pattern.clone(), m.nm))
            .collect();
        let pb: Vec<_> = b
            .patterns
            .iter()
            .map(|m| (m.pattern.clone(), m.nm))
            .collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn min_len_filters_results() {
        let (data, grid) = sweep_data(6, 0.05);
        let params = MiningParams::new(5, 0.1)
            .unwrap()
            .with_min_len(3)
            .unwrap()
            .with_max_len(4)
            .unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        assert!(!out.patterns.is_empty());
        for m in &out.patterns {
            assert!(m.pattern.len() >= 3, "pattern {} too short", m.pattern);
        }
    }

    #[test]
    fn tau_is_no_higher_than_omega() {
        let omega = -2.0;
        let best = -0.5;
        for len in 1..8 {
            let t = tau(len, omega, best, 8);
            assert!(t <= omega + 1e-12, "tau({len}) = {t} > omega");
        }
        // Unset omega disables the threshold.
        assert_eq!(tau(3, f64::NEG_INFINITY, best, 8), f64::NEG_INFINITY);
    }

    #[test]
    fn pair_memoization_does_not_rescore() {
        // Candidates are scored at most once across iterations.
        let (data, grid) = sweep_data(8, 0.05);
        let params = MiningParams::new(8, 0.1).unwrap().with_max_len(4).unwrap();
        let out = mine(&data, &grid, &params).unwrap();
        // generated counts distinct ordered pairs only.
        assert!(out.stats.candidates_scored <= out.stats.candidates_generated);
    }
}
