//! Checkpoint/resume invariants (ISSUE 2 tentpole): a mining run that is
//! interrupted after any growth level and resumed from its checkpoint
//! must produce **bit-identical** output — patterns, NM bit patterns,
//! groups, and statistics — to the same run left uninterrupted. Also
//! covers rejection of incompatible and corrupted checkpoints.

use proptest::prelude::*;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::{CheckpointError, Error, Miner, MiningOutcome, MiningParams};

/// Two interleaved motifs plus stragglers — converges after a few levels,
/// so there are interesting intermediate checkpoints.
fn sample_data() -> Dataset {
    (0..14)
        .map(|j| {
            Trajectory::from_exact((0..6).map(|i| {
                Point2::new(
                    0.08 + i as f64 * 0.15,
                    0.25 + (j % 3) as f64 * 0.22 + i as f64 * 0.012,
                )
            }))
        })
        .collect()
}

fn params() -> MiningParams {
    MiningParams::new(4, 0.05)
        .unwrap()
        .with_max_len(4)
        .unwrap()
        .with_gamma(0.3)
        .unwrap()
}

fn assert_bit_identical(a: &MiningOutcome, b: &MiningOutcome) {
    assert_eq!(a.patterns, b.patterns);
    for (x, y) in a.patterns.iter().zip(&b.patterns) {
        assert_eq!(x.nm.to_bits(), y.nm.to_bits());
    }
    assert_eq!(a.groups, b.groups);
    assert_eq!(a.stats, b.stats);
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("trajpattern-{name}-{}.ckpt", std::process::id()))
}

#[test]
fn resume_after_every_level_is_bit_identical() {
    let data = sample_data();
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let baseline = Miner::new(&data, &grid).params(params()).mine().unwrap();
    assert!(
        baseline.stats.iterations >= 2,
        "workload too easy to exercise resume ({} levels)",
        baseline.stats.iterations
    );

    let path = tmp("levels");
    for interrupt_after in 1..baseline.stats.iterations {
        let mut truncated = params();
        truncated.max_iters = interrupt_after;
        let partial = Miner::new(&data, &grid)
            .params(truncated)
            .checkpoint(&path)
            .mine()
            .unwrap();
        assert_eq!(partial.stats.iterations, interrupt_after);

        let resumed = Miner::new(&data, &grid)
            .params(params())
            .resume(&path)
            .mine()
            .unwrap();
        assert_bit_identical(&baseline, &resumed);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpointing_does_not_perturb_the_run() {
    let data = sample_data();
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let plain = Miner::new(&data, &grid).params(params()).mine().unwrap();
    let path = tmp("perturb");
    let observed = Miner::new(&data, &grid)
        .params(params())
        .checkpoint(&path)
        .mine()
        .unwrap();
    assert_bit_identical(&plain, &observed);
    assert!(path.exists());
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_incompatible_parameters() {
    let data = sample_data();
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let path = tmp("incompat");
    let mut one_level = params();
    one_level.max_iters = 1;
    Miner::new(&data, &grid)
        .params(one_level)
        .checkpoint(&path)
        .mine()
        .unwrap();

    // Different k.
    let err = Miner::new(&data, &grid)
        .params(MiningParams::new(5, 0.05).unwrap().with_max_len(4).unwrap())
        .resume(&path)
        .mine()
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(
            err,
            Error::Checkpoint(CheckpointError::Incompatible { field: "k", .. })
        ),
        "unexpected error: {err:?}"
    );

    // Different dataset (one trajectory fewer).
    let smaller: Dataset = sample_data().iter().skip(1).cloned().collect();
    let err = Miner::new(&smaller, &grid)
        .params(params())
        .resume(&path)
        .mine()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Checkpoint(CheckpointError::Incompatible { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_missing_and_corrupt_files() {
    let data = sample_data();
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    let missing = tmp("missing-never-written");
    let err = Miner::new(&data, &grid)
        .params(params())
        .resume(&missing)
        .mine()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, Error::Checkpoint(CheckpointError::Io { .. })));

    let garbage = tmp("garbage");
    std::fs::write(&garbage, "trajpattern-checkpoint v1\nnot a checkpoint\n").unwrap();
    let err = Miner::new(&data, &grid)
        .params(params())
        .resume(&garbage)
        .mine()
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Checkpoint(CheckpointError::Format { .. })
    ));
    std::fs::remove_file(&garbage).ok();
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.2), 3..8),
        2..14,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|pts| {
                Trajectory::new(
                    pts.into_iter()
                        .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_runs_resume_bit_identically(
        data in arb_dataset(),
        k in 1usize..5,
        interrupt in 1usize..3,
        case in 0u32..u32::MAX,
    ) {
        let grid = Grid::new(BBox::unit(), 5, 5).unwrap();
        let params = MiningParams::new(k, 0.06).unwrap().with_max_len(3).unwrap();
        let baseline = Miner::new(&data, &grid).params(params.clone()).mine().unwrap();
        // Interrupting at or past convergence is a no-op resume; both
        // sides of the comparison still go through checkpoint I/O.
        let path = std::env::temp_dir().join(format!(
            "trajpattern-prop-{}-{case}.ckpt",
            std::process::id()
        ));
        let mut truncated = params.clone();
        truncated.max_iters = interrupt;
        Miner::new(&data, &grid)
            .params(truncated)
            .checkpoint(&path)
            .mine()
            .unwrap();
        if !path.exists() {
            // Converged during init (zero growth levels): nothing to resume.
            return;
        }
        let resumed = Miner::new(&data, &grid)
            .params(params)
            .resume(&path)
            .mine()
            .unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&baseline.patterns, &resumed.patterns);
        for (a, b) in baseline.patterns.iter().zip(&resumed.patterns) {
            prop_assert_eq!(a.nm.to_bits(), b.nm.to_bits());
        }
        prop_assert_eq!(&baseline.stats, &resumed.stats);
    }
}
