//! Exactness of the TrajPattern miner against brute-force enumeration.
//!
//! DESIGN.md notes that the paper's Theorem 1 rests on an informal
//! induction; these tests quantify agreement empirically: on small random
//! instances the miner must return exactly the brute-force top-k (up to NM
//! ties, which are resolved by a deterministic pattern order on both
//! sides).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::{BBox, Grid, Point2};
use trajpattern::bruteforce::brute_force_top_k;
use trajpattern::{mine, MiningParams};

/// Random walk dataset on the unit square.
fn random_dataset(seed: u64, n_traj: usize, len: usize, sigma: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_traj)
        .map(|_| {
            let mut pos = Point2::new(rng.gen::<f64>(), rng.gen::<f64>());
            let pts: Vec<SnapshotPoint> = (0..len)
                .map(|_| {
                    let step = trajgeo::Vec2::new(
                        (rng.gen::<f64>() - 0.5) * 0.3,
                        (rng.gen::<f64>() - 0.5) * 0.3,
                    );
                    pos = BBox::unit().reflect(pos + step);
                    SnapshotPoint::new(pos, sigma).unwrap()
                })
                .collect();
            Trajectory::new(pts).unwrap()
        })
        .collect()
}

/// Compare miner output to brute force on one configuration. NM ties can
/// legitimately reorder patterns at the boundary, so compare the NM value
/// sequences and require every mined NM to match the reference NM.
fn check(seed: u64, k: usize, min_len: usize, max_len: usize, sigma: f64) {
    let data = random_dataset(seed, 6, 8, sigma);
    let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
    let params = MiningParams::new(k, 0.12)
        .unwrap()
        .with_min_len(min_len)
        .unwrap()
        .with_max_len(max_len)
        .unwrap();
    let reference = brute_force_top_k(&data, &grid, &params).expect("instance small enough");
    let mined = mine(&data, &grid, &params).unwrap();
    assert_eq!(
        mined.patterns.len(),
        reference.len(),
        "seed {seed}: result cardinality"
    );
    for (i, (m, r)) in mined.patterns.iter().zip(&reference).enumerate() {
        assert!(
            (m.nm - r.nm).abs() < 1e-9,
            "seed {seed}, rank {i}: mined {} (NM {}) vs brute {} (NM {})",
            m.pattern,
            m.nm,
            r.pattern,
            r.nm
        );
    }
}

#[test]
fn matches_brute_force_basic_topk() {
    for seed in 0..8 {
        check(seed, 5, 1, 3, 0.08);
    }
}

#[test]
fn matches_brute_force_with_larger_k() {
    for seed in 0..4 {
        check(seed, 20, 1, 3, 0.1);
    }
}

#[test]
fn matches_brute_force_with_min_len() {
    for seed in 0..8 {
        check(seed + 100, 4, 2, 3, 0.08);
    }
}

#[test]
fn matches_brute_force_with_min_len_three() {
    for seed in 0..4 {
        check(seed + 200, 3, 3, 3, 0.12);
    }
}

#[test]
fn matches_brute_force_with_tight_uncertainty() {
    // Small sigma concentrates probability, stressing the tail accuracy of
    // the scoring kernel.
    for seed in 0..4 {
        check(seed + 300, 5, 1, 3, 0.02);
    }
}

#[test]
fn matches_brute_force_without_prunes() {
    // The unpruned variant is the paper's literal algorithm; it must agree
    // with brute force too (and with the pruned run, covered in unit
    // tests).
    let data = random_dataset(42, 5, 8, 0.08);
    let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
    let mut params = MiningParams::new(6, 0.12).unwrap().with_max_len(3).unwrap();
    params.use_bound_prune = false;
    params.use_one_extension_prune = false;
    let reference = brute_force_top_k(&data, &grid, &params).unwrap();
    let mined = mine(&data, &grid, &params).unwrap();
    for (m, r) in mined.patterns.iter().zip(&reference) {
        assert!((m.nm - r.nm).abs() < 1e-9);
    }
}

mod property {
    //! Property-test flavor: random datasets and parameters, always equal
    //! to brute force.
    use proptest::prelude::*;
    use trajdata::{Dataset, SnapshotPoint, Trajectory};
    use trajgeo::{BBox, Grid, Point2};
    use trajpattern::bruteforce::brute_force_top_k;
    use trajpattern::{mine, MiningParams};

    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        prop::collection::vec(
            prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.25), 3..8),
            1..5,
        )
        .prop_map(|trajs| {
            trajs
                .into_iter()
                .map(|pts| {
                    Trajectory::new(
                        pts.into_iter()
                            .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                            .collect(),
                    )
                    .unwrap()
                })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn always_matches_brute_force(
            data in arb_dataset(),
            k in 1usize..12,
            min_len in 1usize..3,
            delta in 0.05f64..0.2,
        ) {
            let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
            let params = MiningParams::new(k, delta)
                .unwrap()
                .with_min_len(min_len)
                .unwrap()
                .with_max_len(3)
                .unwrap();
            let reference = brute_force_top_k(&data, &grid, &params)
                .expect("instance small enough");
            let mined = mine(&data, &grid, &params).unwrap();
            prop_assert_eq!(mined.patterns.len(), reference.len());
            for (i, (m, r)) in mined.patterns.iter().zip(&reference).enumerate() {
                prop_assert!(
                    (m.nm - r.nm).abs() < 1e-9,
                    "rank {}: mined {} vs brute {}", i, m.nm, r.nm
                );
            }
        }
    }
}
