//! Property tests for the sharded batch scorer: for random datasets,
//! grids, and pattern batches, scoring with 2 or 4 worker threads must be
//! **bit-identical** to sequential scoring — the fixed-order reduction
//! over trajectory shards (DESIGN.md §5) guarantees it, and this suite
//! enforces it.

use proptest::prelude::*;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::{BBox, CellId, Grid, Point2};
use trajpattern::pattern::Pattern;
use trajpattern::Scorer;

const MIN_PROB: f64 = 1e-12;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.3), 3..9),
        1..24,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|pts| {
                Trajectory::new(
                    pts.into_iter()
                        .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    })
}

fn arb_patterns(num_cells: u32) -> impl Strategy<Value = Vec<Pattern>> {
    prop::collection::vec(prop::collection::vec(0u32..num_cells, 1..5), 1..8).prop_map(|batches| {
        batches
            .into_iter()
            .map(|cells| Pattern::new(cells.into_iter().map(CellId).collect()).unwrap())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_nm_scores_are_bit_identical(
        data in arb_dataset(),
        patterns in arb_patterns(16),
        nx in 2u32..5,
        ny in 2u32..5,
        delta in 0.02f64..0.2,
    ) {
        let grid = Grid::new(BBox::unit(), nx, ny).unwrap();
        let patterns: Vec<Pattern> = patterns
            .into_iter()
            .filter(|p| p.cells().iter().all(|c| c.0 < grid.num_cells()))
            .collect();
        let sequential = Scorer::new(&data, &grid, delta, MIN_PROB);
        let seq_nm = sequential.score_batch(&patterns);
        let seq_match = sequential.score_batch_match(&patterns);
        let seq_singulars = sequential.nm_all_singulars();
        for threads in [2usize, 4] {
            let parallel = Scorer::with_threads(&data, &grid, delta, MIN_PROB, threads);
            let par_nm = parallel.score_batch(&patterns);
            let par_match = parallel.score_batch_match(&patterns);
            for (s, p) in seq_nm.iter().zip(&par_nm) {
                prop_assert_eq!(s.to_bits(), p.to_bits());
            }
            for (s, p) in seq_match.iter().zip(&par_match) {
                prop_assert_eq!(s.to_bits(), p.to_bits());
            }
            let par_singulars = parallel.nm_all_singulars();
            for (s, p) in seq_singulars.iter().zip(&par_singulars) {
                prop_assert_eq!(s.to_bits(), p.to_bits());
            }
        }
    }

    #[test]
    fn parallel_mining_outcomes_are_bit_identical(
        data in arb_dataset(),
        k in 1usize..6,
        delta in 0.05f64..0.2,
    ) {
        let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
        let params = trajpattern::MiningParams::new(k, delta)
            .unwrap()
            .with_max_len(3)
            .unwrap();
        let seq = trajpattern::mine(&data, &grid, &params).unwrap();
        for threads in [2usize, 4] {
            let par_params = params.clone().with_threads(threads).unwrap();
            let par = trajpattern::mine(&data, &grid, &par_params).unwrap();
            prop_assert_eq!(seq.patterns.len(), par.patterns.len());
            for (a, b) in seq.patterns.iter().zip(&par.patterns) {
                prop_assert_eq!(&a.pattern, &b.pattern);
                prop_assert_eq!(a.nm.to_bits(), b.nm.to_bits());
            }
            prop_assert_eq!(&seq.stats, &par.stats);
        }
    }
}
