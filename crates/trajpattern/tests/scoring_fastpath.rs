//! Bit-identity of the scoring fast path against a from-scratch dense
//! reference scorer.
//!
//! The fast path layers two optimizations over the seed implementation:
//! per-(cell, snapshot) corridor log-prob tables built once per shard,
//! and index-pruned batches that skip patterns whose cells every
//! trajectory provably stays far from. Both rest on one invariant — a
//! snapshot contributes above-floor probability only to cells within
//! L∞ distance `δ + 8σ` of its mean — and both replicate the seed's
//! fold order addition by addition. This suite pins that claim with a
//! dense reference that never skips anything: every pattern cell's
//! log-prob row is computed in full for every trajectory, windows are
//! scanned directly, and trajectory contributions fold in dataset
//! order. Random grids, datasets, batches, and σ ranges (including the
//! extremes where the corridor covers the whole grid or almost nothing)
//! must agree bit for bit, with and without the pattern spatial index.

use proptest::prelude::*;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::stats::prob_within_delta;
use trajgeo::{BBox, CellId, Grid, Point2};
use trajpattern::pattern::Pattern;
use trajpattern::{Measure, PatternIndex, Scorer};

const MIN_PROB: f64 = 1e-12;

/// The seed scorer, reimplemented densely: no corridor tables, no
/// floor-row sharing, no index — just Eq. 2–4 evaluated directly in the
/// canonical fold order (windows scanned position by position, per-
/// trajectory contributions reduced ascending).
fn reference_scores(
    data: &Dataset,
    grid: &Grid,
    delta: f64,
    min_prob: f64,
    batch: &[Pattern],
    measure: Measure,
) -> Vec<f64> {
    let floor_log = min_prob.ln();
    batch
        .iter()
        .map(|pattern| {
            let cells = pattern.cells();
            let m = cells.len();
            let mut total = 0.0;
            for traj in data.trajectories() {
                let l = traj.len();
                // Dense per-cell log-prob rows over every snapshot.
                let rows: Vec<Vec<f64>> = cells
                    .iter()
                    .map(|&cell| {
                        traj.points()
                            .iter()
                            .map(|sp| {
                                prob_within_delta(sp.mean, sp.sigma, grid.center(cell), delta)
                                    .max(min_prob)
                                    .ln()
                            })
                            .collect()
                    })
                    .collect();
                let mean = if l < m {
                    floor_log
                } else {
                    let mut best = f64::NEG_INFINITY;
                    for start in 0..=(l - m) {
                        let mut sum = 0.0;
                        for (j, row) in rows.iter().enumerate() {
                            sum += row[start + j];
                        }
                        if sum > best {
                            best = sum;
                        }
                    }
                    best / m as f64
                };
                total += match measure {
                    Measure::Nm => mean,
                    Measure::Match => (mean * m as f64).exp(),
                };
            }
            total
        })
        .collect()
}

fn dataset_from(points: Vec<Vec<(f64, f64, f64)>>) -> Dataset {
    points
        .into_iter()
        .map(|pts| {
            Trajectory::new(
                pts.into_iter()
                    .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

fn patterns_from(cells: Vec<Vec<u32>>, num_cells: u32) -> Vec<Pattern> {
    cells
        .into_iter()
        .map(|c| Pattern::new(c.into_iter().map(|i| CellId(i % num_cells)).collect()).unwrap())
        .collect()
}

fn assert_all_paths_match(data: &Dataset, grid: &Grid, delta: f64, batch: &[Pattern]) {
    for measure in [Measure::Nm, Measure::Match] {
        let want = reference_scores(data, grid, delta, MIN_PROB, batch, measure);

        // Corridor-table path (the default for every batch).
        let scorer = Scorer::new(data, grid, delta, MIN_PROB);
        let got = scorer.query(batch).measure(measure).run();
        assert_eq!(want.len(), got.len());
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "corridor path: pattern {i}: reference {w} != fast {g}"
            );
        }

        // Index-pruned path over the same batch.
        let index = PatternIndex::build(batch, grid);
        let indexed = Scorer::new(data, grid, delta, MIN_PROB);
        let got_indexed = indexed
            .query(batch)
            .measure(measure)
            .with_index(&index)
            .run();
        for (i, (w, g)) in want.iter().zip(&got_indexed).enumerate() {
            assert_eq!(
                w.to_bits(),
                g.to_bits(),
                "indexed path: pattern {i}: reference {w} != indexed {g}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random grids/datasets/batches over the whole σ range, from
    /// pinpoint (corridor of a cell or two) to diffuse (corridor spans
    /// the grid): table-driven and index-pruned scoring both equal the
    /// dense reference, bit for bit.
    #[test]
    fn fast_paths_equal_dense_reference(
        points in prop::collection::vec(
            prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.002f64..0.6), 2..8),
            1..10,
        ),
        cells in prop::collection::vec(prop::collection::vec(0u32..64, 1..5), 1..7),
        nx in 2u32..7,
        ny in 2u32..7,
        delta in 0.01f64..0.25,
    ) {
        let data = dataset_from(points);
        let grid = Grid::new(BBox::unit(), nx, ny).unwrap();
        let batch = patterns_from(cells, grid.num_cells());
        assert_all_paths_match(&data, &grid, delta, &batch);
    }
}

/// σ extremes, deterministically: a near-zero σ makes the corridor
/// degenerate (nearly every cell is floor), a huge σ makes it cover the
/// grid many times over (no cell is skippable). Both ends must still
/// be bit-identical to the dense reference.
#[test]
fn sigma_extremes_stay_bit_identical() {
    let grid = Grid::new(BBox::unit(), 6, 6).unwrap();
    for sigma in [1e-6, 0.01, 0.49, 5.0] {
        let data = dataset_from(vec![
            (0..5).map(|i| (0.1 + 0.2 * i as f64, 0.3, sigma)).collect(),
            (0..4).map(|i| (0.9 - 0.2 * i as f64, 0.7, sigma)).collect(),
        ]);
        let batch = patterns_from(
            vec![vec![0, 1, 2], vec![35], vec![7, 8], vec![30, 31, 32, 33]],
            grid.num_cells(),
        );
        assert_all_paths_match(&data, &grid, 0.05, &batch);
    }
}

/// Patterns longer than every trajectory take the `l < m` floor path in
/// both implementations.
#[test]
fn too_long_patterns_agree_on_the_floor() {
    let grid = Grid::new(BBox::unit(), 4, 4).unwrap();
    let data = dataset_from(vec![vec![(0.2, 0.2, 0.05), (0.4, 0.4, 0.05)]]);
    let batch = patterns_from(vec![vec![0, 1, 2, 3], vec![5, 6, 7]], grid.num_cells());
    assert_all_paths_match(&data, &grid, 0.1, &batch);
}
