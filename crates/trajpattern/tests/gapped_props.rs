//! Property tests for the §5 gapped-pattern dynamic program: the DP must
//! agree with brute-force alignment enumeration, and fixed-gap patterns
//! must agree with explicitly padded scoring.

use proptest::prelude::*;
use trajdata::{Dataset, SnapshotPoint, Trajectory};
use trajgeo::stats::prob_within_delta;
use trajgeo::{BBox, CellId, Grid, Point2};
use trajpattern::gapped::GappedPattern;

const DELTA: f64 = 0.1;
const MIN_PROB: f64 = 1e-12;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.01f64..0.3), 3..9),
        1..4,
    )
    .prop_map(|trajs| {
        trajs
            .into_iter()
            .map(|pts| {
                Trajectory::new(
                    pts.into_iter()
                        .map(|(x, y, s)| SnapshotPoint::new(Point2::new(x, y), s).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    })
}

/// Brute-force NM of a gapped pattern: enumerate every admissible
/// assignment of snapshot indices to positions.
fn brute_force_nm(gp: &GappedPattern, data: &Dataset, grid: &Grid) -> f64 {
    let floor = MIN_PROB.ln();
    let centers: Vec<Point2> = gp.positions().iter().map(|&c| grid.center(c)).collect();
    let m = centers.len();
    let mut total = 0.0;
    for traj in data.iter() {
        let l = traj.len();
        let mut best = f64::NEG_INFINITY;
        // Recursive enumeration of index assignments.
        fn rec(
            pos: usize,
            last_idx: usize,
            sum: f64,
            traj: &Trajectory,
            centers: &[Point2],
            gaps: &[(u8, u8)],
            best: &mut f64,
        ) {
            if pos == centers.len() {
                if sum > *best {
                    *best = sum;
                }
                return;
            }
            let (lo, hi) = gaps[pos - 1];
            for g in lo..=hi {
                let idx = last_idx + 1 + g as usize;
                if idx >= traj.len() {
                    continue;
                }
                let sp = &traj[idx];
                let lp = prob_within_delta(sp.mean, sp.sigma, centers[pos], DELTA)
                    .max(MIN_PROB)
                    .ln();
                rec(pos + 1, idx, sum + lp, traj, centers, gaps, best);
            }
        }
        for start in 0..l {
            let sp = &traj[start];
            let lp = prob_within_delta(sp.mean, sp.sigma, centers[0], DELTA)
                .max(MIN_PROB)
                .ln();
            if m == 1 {
                best = best.max(lp);
            } else {
                rec(1, start, lp, traj, &centers, gp.gaps(), &mut best);
            }
        }
        total += if best.is_finite() {
            best / m as f64
        } else {
            floor
        };
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_matches_brute_force(
        data in arb_dataset(),
        cells in prop::collection::vec(0u32..9, 1..4),
        gaps_raw in prop::collection::vec((0u8..3, 0u8..3), 3),
    ) {
        let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
        let gaps: Vec<(u8, u8)> = gaps_raw
            .iter()
            .take(cells.len().saturating_sub(1))
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        let gp = GappedPattern::new(
            cells.into_iter().map(CellId).collect(),
            gaps,
        ).unwrap();
        let dp = gp.nm(&data, &grid, DELTA, MIN_PROB);
        let brute = brute_force_nm(&gp, &data, &grid);
        prop_assert!((dp - brute).abs() < 1e-9,
            "DP {dp} != brute {brute} for {gp}");
    }

    #[test]
    fn widening_gaps_never_hurts(
        data in arb_dataset(),
        a in 0u32..9,
        b in 0u32..9,
        lo in 0u8..2,
    ) {
        let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
        let narrow = GappedPattern::new(
            vec![CellId(a), CellId(b)], vec![(lo, lo)]).unwrap();
        let wide = GappedPattern::new(
            vec![CellId(a), CellId(b)], vec![(0, lo + 2)]).unwrap();
        let nm_narrow = narrow.nm(&data, &grid, DELTA, MIN_PROB);
        let nm_wide = wide.nm(&data, &grid, DELTA, MIN_PROB);
        prop_assert!(nm_wide >= nm_narrow - 1e-9,
            "widening the gap lowered NM: {nm_wide} < {nm_narrow}");
    }
}
