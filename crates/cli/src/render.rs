//! ASCII rendering of datasets and patterns, for terminal inspection.
//!
//! `trajmine mine --map true` prints the snapshot-density map of the
//! dataset with the top pattern's positions overlaid in sequence order —
//! enough to eyeball whether a mined motif follows the data.

use trajdata::Dataset;
use trajgeo::Grid;
use trajpattern::{MiningOutcome, MiningParams, Pattern};
use trajserve::Snapshot;
use trajstream::StreamMiner;

/// Renders an error and its full `source` chain, one cause per indented
/// line — the uniform error format for all `trajmine` failures. Errors
/// funneled through [`trajpattern::Error`] show the originating crate's
/// message as the cause.
pub fn render_error(e: &(dyn std::error::Error + 'static)) -> String {
    let mut out = format!("error: {e}");
    let mut source = e.source();
    while let Some(s) = source {
        out.push_str(&format!("\n  caused by: {s}"));
        source = s.source();
    }
    out
}

/// The JSON payload `trajmine mine --json` writes: a versioned
/// [`trajserve::Snapshot`] — patterns, groups, the full
/// [`trajpattern::MiningStats`] counter block (including
/// `degraded_shard_rescores`, so degraded-but-exact runs are visible in
/// machine-readable output, not only on stderr), the scorer's engine
/// counters, and the grid + params needed to re-score the patterns
/// bit-identically. The same schema is what `trajmine serve` loads.
pub fn mining_json(out: &MiningOutcome, grid: &Grid, params: &MiningParams) -> serde_json::Value {
    Snapshot::from_outcome(out, grid, params).to_value()
}

/// One top-k snapshot of a stream miner, as JSON — the same versioned
/// [`trajserve::Snapshot`] schema as [`mining_json`] (the `patterns`,
/// `groups`, and `stats` fields describe the last maintenance pass,
/// bit-identical to batch mining the window), plus the `stream` counter
/// block and `next_seq`.
pub fn stream_json(miner: &StreamMiner) -> serde_json::Value {
    Snapshot::from_stream(miner).to_value()
}

/// Density ramp from empty to dense.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders the per-cell snapshot density of `data` over `grid` as an
/// ASCII map (row 0 of the grid at the bottom, like a plot). Cells
/// covered by `overlay` (if any) are drawn as the 1-based position index
/// (`1`–`9`, then `a`–`z`) of their *first* occurrence in the pattern.
pub fn render_map(data: &Dataset, grid: &Grid, overlay: Option<&Pattern>) -> String {
    let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
    let mut counts = vec![0u64; nx * ny];
    for traj in data.iter() {
        for sp in traj.points() {
            counts[grid.locate(sp.mean).index()] += 1;
        }
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1);

    let mut overlay_chars = vec![None::<char>; nx * ny];
    if let Some(p) = overlay {
        for (i, cell) in p.cells().iter().enumerate() {
            let ch = position_marker(i);
            let slot = &mut overlay_chars[cell.index()];
            if slot.is_none() {
                *slot = Some(ch);
            }
        }
    }

    let mut out = String::with_capacity((nx + 3) * (ny + 2));
    out.push('+');
    out.push_str(&"-".repeat(nx));
    out.push_str("+\n");
    for row in (0..ny).rev() {
        out.push('|');
        for col in 0..nx {
            let idx = row * nx + col;
            match overlay_chars[idx] {
                Some(ch) => out.push(ch),
                None => {
                    // Log-ish scaling keeps sparse cells visible.
                    let c = counts[idx];
                    let level = if c == 0 {
                        0
                    } else {
                        let frac = (c as f64).ln_1p() / (max as f64).ln_1p();
                        1 + (frac * (RAMP.len() - 2) as f64).round() as usize
                    };
                    out.push(RAMP[level.min(RAMP.len() - 1)] as char);
                }
            }
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(nx));
    out.push_str("+\n");
    out
}

/// Marker character for the i-th (0-based) pattern position: `1`–`9`,
/// then `a`–`z`, then `*` for anything beyond.
fn position_marker(i: usize) -> char {
    match i {
        0..=8 => (b'1' + i as u8) as char,
        9..=34 => (b'a' + (i - 9) as u8) as char,
        _ => '*',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajdata::Trajectory;
    use trajgeo::{BBox, CellId, Point2};

    fn tiny_data() -> (Dataset, Grid) {
        let grid = Grid::new(BBox::unit(), 4, 2).unwrap();
        // All snapshots in the bottom-left cell, one in the top-right.
        let t = Trajectory::from_exact([
            Point2::new(0.1, 0.1),
            Point2::new(0.1, 0.1),
            Point2::new(0.9, 0.9),
        ]);
        (Dataset::from_trajectories(vec![t]), grid)
    }

    #[test]
    fn map_shape_and_frame() {
        let (data, grid) = tiny_data();
        let map = render_map(&data, &grid, None);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 4); // frame + 2 rows + frame
        assert_eq!(lines[0], "+----+");
        assert_eq!(lines[3], "+----+");
        assert!(lines.iter().all(|l| l.len() == 6));
    }

    #[test]
    fn density_shows_hot_and_cold_cells() {
        let (data, grid) = tiny_data();
        let map = render_map(&data, &grid, None);
        let lines: Vec<&str> = map.lines().collect();
        // Bottom row (printed last before the frame) has the hot cell at
        // column 1 (offset for the frame '|').
        let bottom = lines[2].as_bytes();
        assert_eq!(bottom[1], b'@', "hottest cell uses the densest glyph");
        // Top-right cell is occupied once.
        let top = lines[1].as_bytes();
        assert_ne!(top[4], b' ');
        // An untouched cell stays blank.
        assert_eq!(bottom[3], b' ');
    }

    #[test]
    fn overlay_marks_pattern_positions_in_order() {
        let (data, grid) = tiny_data();
        let p = Pattern::new(vec![CellId(0), CellId(7)]).unwrap();
        let map = render_map(&data, &grid, Some(&p));
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines[2].as_bytes()[1], b'1'); // cell 0 = bottom-left
        assert_eq!(lines[1].as_bytes()[4], b'2'); // cell 7 = top-right
    }

    #[test]
    fn repeated_cells_keep_first_marker() {
        let (data, grid) = tiny_data();
        let p = Pattern::new(vec![CellId(0), CellId(0), CellId(1)]).unwrap();
        let map = render_map(&data, &grid, Some(&p));
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines[2].as_bytes()[1], b'1');
        assert_eq!(lines[2].as_bytes()[2], b'3');
    }

    #[test]
    fn marker_sequence() {
        assert_eq!(position_marker(0), '1');
        assert_eq!(position_marker(8), '9');
        assert_eq!(position_marker(9), 'a');
        assert_eq!(position_marker(34), 'z');
        assert_eq!(position_marker(35), '*');
    }

    #[test]
    fn empty_dataset_renders_blank_map() {
        let grid = Grid::new(BBox::unit(), 3, 3).unwrap();
        let map = render_map(&Dataset::new(), &grid, None);
        assert!(map.lines().skip(1).take(3).all(|l| l == "|   |"));
    }

    #[test]
    fn render_error_walks_source_chain() {
        let e = trajpattern::Error::from(trajpattern::ParamsError::ZeroK);
        let rendered = render_error(&e);
        assert_eq!(
            rendered,
            "error: invalid mining parameters\n  caused by: k must be at least 1"
        );
    }
}
