//! Dataset input shared by every subcommand: format sniffing
//! (CSV / `.events` log / dead-reckoning log / JSON), the fault-tolerant
//! ingest path, and small argument parsers for spatial flags.
//!
//! Every load goes through the [`trajfeed`] spine: file bytes become a
//! [`trajfeed::StaticFeed`] (or a replayed [`trajfeed::DrFeed`] for
//! dead-reckoning logs) and are drained through the same
//! decode → reconstruct → sanitize stages live consumers run, so batch
//! and streaming ingestion cannot diverge.

use crate::args::Args;
use std::error::Error;
use std::sync::atomic::AtomicBool;
use trajdata::{Dataset, IngestPolicy, IngestReport};
use trajfeed::{FeedOptions, SourceSpec, StaticFeed};
use trajgeo::{BBox, Point2};

/// Loads `--input` strictly: the first defect aborts the command.
pub fn load(args: &Args) -> Result<Dataset, Box<dyn Error>> {
    Ok(load_with_policy(args, IngestPolicy::Strict)?.0)
}

/// Loads the dataset under an ingest policy. CSV inputs go through the
/// fault-tolerant [`trajdata::ingest`] path and return a report; JSON
/// inputs are all-or-nothing, but `Repair` still sanitizes the loaded
/// dataset in place. Dead-reckoning logs (`.drlog` / `dr:PATH`) are
/// reconstructed with the `--dr-*` knobs.
pub fn load_with_policy(
    args: &Args,
    policy: IngestPolicy,
) -> Result<(Dataset, Option<IngestReport>), Box<dyn Error>> {
    let input = args.require("input")?;
    let spec = SourceSpec::parse(input);
    if matches!(spec, SourceSpec::Dr(_)) {
        let opts = FeedOptions {
            policy,
            dr: dr_config(args)?,
            ..FeedOptions::default()
        };
        let mut feed = trajfeed::open(&spec, &opts)?;
        let stop = AtomicBool::new(false);
        let data: Dataset = trajfeed::drain(feed.as_mut(), &stop)?.into_iter().collect();
        return Ok((data, None));
    }
    if matches!(spec, SourceSpec::EventsTcp(_) | SourceSpec::DrTcp(_)) {
        return Err(format!("--input {input}: socket sources are stream-only (use `trajmine stream` or `serve --live`)").into());
    }

    let raw = std::fs::read_to_string(input)?;
    let mut feed = if input.ends_with(".csv") {
        StaticFeed::from_csv(&raw, policy)?
    } else if input.ends_with(".events") {
        StaticFeed::from_events(&raw, policy)?
    } else {
        let mut feed = StaticFeed::from_dataset(Dataset::from_json(&raw)?);
        if policy == IngestPolicy::Repair {
            let fixed = feed.repair();
            if !fixed.is_clean() {
                eprintln!("repair: {fixed}");
            }
        }
        feed
    };
    let report = feed.ingest_report().cloned();
    let stop = AtomicBool::new(false);
    let data: Dataset = trajfeed::drain(&mut feed, &stop)?.into_iter().collect();
    Ok((data, report))
}

/// Builds the §3.1/§3.2 dead-reckoning reconstruction parameters from
/// the `--dr-u`, `--dr-c`, `--dr-growth`, and `--dr-dt` flags.
pub fn dr_config(args: &Args) -> Result<trajfeed::DrConfig, Box<dyn Error>> {
    let defaults = trajfeed::DrConfig::default();
    let cfg = trajfeed::DrConfig {
        u: args.get_or("dr-u", defaults.u)?,
        c: args.get_or("dr-c", defaults.c)?,
        growth_rate: args.get_or("dr-growth", defaults.growth_rate)?,
        dt: args.get_or("dr-dt", defaults.dt)?,
    };
    cfg.validate().map_err(|m| format!("dead-reckoning config: {m}"))?;
    Ok(cfg)
}

/// Parses `--on-error strict|skip|repair` (default strict).
pub fn parse_policy(args: &Args) -> Result<IngestPolicy, Box<dyn Error>> {
    match args.get("on-error") {
        Some(s) => Ok(s
            .parse()
            .map_err(|_| format!("invalid --on-error value '{s}' (use strict|skip|repair)"))?),
        None => Ok(IngestPolicy::Strict),
    }
}

/// Parses `--bbox minx,miny,maxx,maxy`.
pub fn parse_bbox(s: &str) -> Result<BBox, Box<dyn Error>> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid --bbox '{s}' (use minx,miny,maxx,maxy)"))?;
    if parts.len() != 4 {
        return Err(format!("invalid --bbox '{s}' (expected 4 comma-separated numbers)").into());
    }
    BBox::new(
        Point2::new(parts[0], parts[1]),
        Point2::new(parts[2], parts[3]),
    )
    .ok_or_else(|| format!("degenerate --bbox '{s}'").into())
}
