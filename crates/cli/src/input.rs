//! Dataset input shared by every subcommand: format sniffing
//! (CSV / `.events` log / JSON), the fault-tolerant ingest path, and
//! small argument parsers for spatial flags.

use crate::args::Args;
use std::error::Error;
use trajdata::{Dataset, IngestPolicy, IngestReport};
use trajgeo::{BBox, Point2};

/// Loads `--input` strictly: the first defect aborts the command.
pub fn load(args: &Args) -> Result<Dataset, Box<dyn Error>> {
    Ok(load_with_policy(args, IngestPolicy::Strict)?.0)
}

/// Loads the dataset under an ingest policy. CSV inputs go through the
/// fault-tolerant [`trajdata::ingest`] path and return a report; JSON
/// inputs are all-or-nothing, but `Repair` still sanitizes the loaded
/// dataset in place.
pub fn load_with_policy(
    args: &Args,
    policy: IngestPolicy,
) -> Result<(Dataset, Option<IngestReport>), Box<dyn Error>> {
    let input = args.require("input")?;
    let raw = std::fs::read_to_string(input)?;
    if input.ends_with(".csv") {
        let (data, report) = trajdata::ingest(&raw, policy).map_err(trajpattern::Error::from)?;
        Ok((data, Some(report)))
    } else if input.ends_with(".events") {
        let mut data: Dataset = trajdata::eventlog::parse_event_log(&raw)?
            .into_iter()
            .collect();
        if policy == IngestPolicy::Repair {
            let fixed = trajdata::sanitize(&mut data);
            if !fixed.is_clean() {
                eprintln!("repair: {fixed}");
            }
        }
        Ok((data, None))
    } else {
        let mut data = Dataset::from_json(&raw)?;
        if policy == IngestPolicy::Repair {
            let fixed = trajdata::sanitize(&mut data);
            if !fixed.is_clean() {
                eprintln!("repair: {fixed}");
            }
        }
        Ok((data, None))
    }
}

/// Parses `--bbox minx,miny,maxx,maxy`.
pub fn parse_bbox(s: &str) -> Result<BBox, Box<dyn Error>> {
    let parts: Vec<f64> = s
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("invalid --bbox '{s}' (use minx,miny,maxx,maxy)"))?;
    if parts.len() != 4 {
        return Err(format!("invalid --bbox '{s}' (expected 4 comma-separated numbers)").into());
    }
    BBox::new(
        Point2::new(parts[0], parts[1]),
        Point2::new(parts[2], parts[3]),
    )
    .ok_or_else(|| format!("degenerate --bbox '{s}'").into())
}
