//! Flag parsing for `trajmine`.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (`generate`, `stats`, `mine`).
    pub command: String,
    options: BTreeMap<String, String>,
}

/// Errors from argument parsing and typed lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A flag without a value, or a bare value without a flag.
    Malformed {
        /// The offending token.
        token: String,
    },
    /// A value failed to parse as the requested type.
    BadValue {
        /// Flag name.
        key: String,
        /// The raw value.
        value: String,
    },
    /// A required flag was absent.
    Missing {
        /// Flag name.
        key: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::Malformed { token } => write!(f, "malformed argument '{token}'"),
            ArgError::BadValue { key, value } => {
                write!(f, "invalid value '{value}' for --{key}")
            }
            ArgError::Missing { key } => write!(f, "missing required flag --{key}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: Vec<String>) -> Result<Args, ArgError> {
        let mut it = argv.into_iter();
        let mut command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(ArgError::Malformed { token: command });
        }
        // `db`, `query`, and `feed` take a second command word
        // (`trajmine db ingest …`, `trajmine query prange …`,
        // `trajmine feed decode …`); every other command treats a bare
        // token as malformed.
        if command == "db" || command == "query" || command == "feed" {
            match it.next() {
                Some(sub) if !sub.starts_with('-') => command = format!("{command} {sub}"),
                _ => return Err(ArgError::MissingCommand),
            }
        }
        let mut options = BTreeMap::new();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| ArgError::Malformed {
                    token: token.clone(),
                })?
                .to_string();
            let value = it.next().ok_or_else(|| ArgError::Malformed {
                token: token.clone(),
            })?;
            options.insert(key, value);
        }
        Ok(Args { command, options })
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or(ArgError::Missing {
            key: key.to_string(),
        })
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(v(&["mine", "--k", "10", "--input", "d.json"])).unwrap();
        assert_eq!(a.command, "mine");
        assert_eq!(a.get("k"), Some("10"));
        assert_eq!(a.get_or("k", 5usize).unwrap(), 10);
        assert_eq!(a.require("input").unwrap(), "d.json");
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = Args::parse(v(&["stats"])).unwrap();
        assert_eq!(a.get_or("k", 7usize).unwrap(), 7);
        assert!(matches!(a.require("input"), Err(ArgError::Missing { .. })));
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(Args::parse(v(&[])), Err(ArgError::MissingCommand)));
        assert!(matches!(
            Args::parse(v(&["--k", "5"])),
            Err(ArgError::Malformed { .. })
        ));
        assert!(matches!(
            Args::parse(v(&["mine", "--k"])),
            Err(ArgError::Malformed { .. })
        ));
        assert!(matches!(
            Args::parse(v(&["mine", "k", "5"])),
            Err(ArgError::Malformed { .. })
        ));
    }

    #[test]
    fn db_takes_a_second_command_word() {
        let a = Args::parse(v(&["db", "ingest", "--db", "store", "--input", "d.json"])).unwrap();
        assert_eq!(a.command, "db ingest");
        assert_eq!(a.require("db").unwrap(), "store");
        assert!(matches!(
            Args::parse(v(&["db"])),
            Err(ArgError::MissingCommand)
        ));
        assert!(matches!(
            Args::parse(v(&["db", "--db", "store"])),
            Err(ArgError::MissingCommand)
        ));
    }

    #[test]
    fn feed_takes_a_second_command_word() {
        let a = Args::parse(v(&["feed", "decode", "--input", "d.drlog", "--out", "d.events"]))
            .unwrap();
        assert_eq!(a.command, "feed decode");
        assert!(matches!(
            Args::parse(v(&["feed"])),
            Err(ArgError::MissingCommand)
        ));
    }

    #[test]
    fn query_takes_a_second_command_word() {
        let a = Args::parse(v(&["query", "prange", "--input", "d.csv"])).unwrap();
        assert_eq!(a.command, "query prange");
        assert_eq!(a.require("input").unwrap(), "d.csv");
        assert!(matches!(
            Args::parse(v(&["query"])),
            Err(ArgError::MissingCommand)
        ));
        assert!(matches!(
            Args::parse(v(&["query", "--p", "0,0"])),
            Err(ArgError::MissingCommand)
        ));
    }

    #[test]
    fn bad_typed_value_is_reported() {
        let a = Args::parse(v(&["mine", "--k", "many"])).unwrap();
        assert!(matches!(
            a.get_or("k", 1usize),
            Err(ArgError::BadValue { .. })
        ));
    }
}
