//! `trajmine`: command-line driver for the TrajPattern reproduction.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(cli::run(argv));
}
