//! `trajmine query {prange,pnn}`: offline probabilistic object queries
//! over a dataset file or a `trajdb` store.
//!
//! Both commands build a [`trajquery::QuerySet`] over the input (object
//! ids are dataset positions — store record order under `--db`) and
//! print one JSON document to stdout. `--brute true` disables the
//! σ-expanded-bbox index; the answer is bit-identical either way, which
//! is exactly what the CI smoke check diffs.

use crate::args::Args;
use std::error::Error;
use trajgeo::Point2;
use trajquery::QuerySet;

/// Parses `--p X,Y` into a query point.
fn parse_point(raw: &str) -> Result<Point2, Box<dyn Error>> {
    let parts: Vec<&str> = raw.split(',').map(str::trim).collect();
    let [x, y] = parts.as_slice() else {
        return Err(format!("--p '{raw}' is not X,Y").into());
    };
    let x: f64 = x
        .parse()
        .map_err(|_| format!("--p x '{x}' is not a number"))?;
    let y: f64 = y
        .parse()
        .map_err(|_| format!("--p y '{y}' is not a number"))?;
    Ok(Point2::new(x, y))
}

/// Loads the queried objects and builds the query set.
fn query_set(args: &Args) -> Result<QuerySet, Box<dyn Error>> {
    let data = match args.get("db") {
        Some(_) => {
            let store = crate::db::open_store(args)?;
            store.read_dataset(&crate::db::read_filter(args)?)?
        }
        None => crate::input::load(args)?,
    };
    let growth_rate: f64 = args.get_or("growth-rate", 0.0f64)?;
    if !growth_rate.is_finite() || growth_rate < 0.0 {
        return Err("--growth-rate must be finite and >= 0".into());
    }
    Ok(QuerySet::from_dataset(&data, growth_rate))
}

fn matches_json(matches: &[trajquery::RangeMatch]) -> serde_json::Value {
    serde_json::Value::Array(
        matches
            .iter()
            .map(|m| serde_json::json!({ "id": m.id, "prob": m.prob }))
            .collect(),
    )
}

/// Builds the `query prange` response document.
fn prange_doc(args: &Args) -> Result<serde_json::Value, Box<dyn Error>> {
    let set = query_set(args)?;
    let p = parse_point(args.require("p")?)?;
    let delta: f64 = args.require("delta")?.parse().map_err(|_| "bad --delta")?;
    let t: f64 = args.require("t")?.parse().map_err(|_| "bad --t")?;
    let tau: f64 = args.get_or("tau", 0.0f64)?;
    let brute: bool = args.get_or("brute", false)?;
    let matches = if brute {
        set.prange_bruteforce(p, delta, t, tau)
    } else {
        set.prange(p, delta, t, tau)
    }
    .map_err(|e| e.to_string())?;
    Ok(serde_json::json!({
        "query": "prange",
        "objects": set.len(),
        "matches": matches_json(&matches),
    }))
}

/// `trajmine query prange --input FILE|--db DIR --p X,Y --delta F --t F
/// [--tau F] [--growth-rate F] [--brute true]`
pub fn prange(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("{}", serde_json::to_string_pretty(&prange_doc(args)?)?);
    Ok(())
}

/// Builds the `query pnn` response document.
fn pnn_doc(args: &Args) -> Result<serde_json::Value, Box<dyn Error>> {
    let set = query_set(args)?;
    let p = parse_point(args.require("p")?)?;
    let t: f64 = args.require("t")?.parse().map_err(|_| "bad --t")?;
    let k: usize = args.require("k")?.parse().map_err(|_| "bad --k")?;
    // The within-δ probability needs a radius; without a mined snapshot
    // to borrow one from, default to 0.1 (10% of the unit extent).
    let delta: f64 = match args.get("delta") {
        Some(raw) => raw.parse().map_err(|_| "bad --delta")?,
        None => 0.1,
    };
    let tau: f64 = args.get_or("tau", 0.0f64)?;
    let brute: bool = args.get_or("brute", false)?;
    let matches = if brute {
        set.pnn_bruteforce(p, t, k, tau, delta)
    } else {
        set.pnn(p, t, k, tau, delta)
    }
    .map_err(|e| e.to_string())?;
    Ok(serde_json::json!({
        "query": "pnn",
        "objects": set.len(),
        "k": k,
        "matches": matches_json(&matches),
    }))
}

/// `trajmine query pnn --input FILE|--db DIR --p X,Y --t F --k N
/// [--delta F] [--tau F] [--growth-rate F] [--brute true]`
pub fn pnn(args: &Args) -> Result<(), Box<dyn Error>> {
    println!("{}", serde_json::to_string_pretty(&pnn_doc(args)?)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string()).collect()).unwrap()
    }

    fn write_dataset(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("trajquery-cli-{}-{name}", std::process::id()));
        // Three objects: near the origin, drifting away, and far off.
        let csv = "traj_id,snapshot,x,y,sigma\n\
                   0,0,0.10,0.10,0.05\n0,1,0.12,0.11,0.05\n0,2,0.14,0.12,0.05\n\
                   1,0,0.20,0.20,0.10\n1,1,0.40,0.40,0.10\n1,2,0.60,0.60,0.10\n\
                   2,0,0.90,0.90,0.02\n2,1,0.92,0.92,0.02\n2,2,0.95,0.95,0.02\n";
        std::fs::write(&path, csv).unwrap();
        path
    }

    #[test]
    fn prange_ranks_and_matches_bruteforce() {
        let data = write_dataset("prange.csv");
        let base = [
            "query",
            "prange",
            "--input",
            data.to_str().unwrap(),
            "--p",
            "0.12,0.11",
            "--delta",
            "0.2",
            "--t",
            "1.5",
            "--tau",
            "0.01",
        ];
        let doc = prange_doc(&args(&base)).unwrap();
        assert_eq!(doc["query"].as_str(), Some("prange"));
        assert_eq!(doc["objects"].as_u64(), Some(3));
        let matches = doc["matches"].as_array().unwrap();
        assert!(!matches.is_empty());
        assert_eq!(matches[0]["id"].as_u64(), Some(0), "object 0 is nearest");
        // --brute true is bit-identical.
        let mut brute = base.to_vec();
        brute.extend(["--brute", "true"]);
        assert_eq!(doc, prange_doc(&args(&brute)).unwrap());
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn pnn_truncates_to_k() {
        let data = write_dataset("pnn.csv");
        let doc = pnn_doc(&args(&[
            "query",
            "pnn",
            "--input",
            data.to_str().unwrap(),
            "--p",
            "0.5,0.5",
            "--t",
            "1.0",
            "--k",
            "2",
            "--delta",
            "0.5",
        ]))
        .unwrap();
        assert_eq!(doc["k"].as_u64(), Some(2));
        assert!(doc["matches"].as_array().unwrap().len() <= 2);
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn bad_query_flags_are_reported() {
        let data = write_dataset("bad.csv");
        let missing_p = prange_doc(&args(&[
            "query",
            "prange",
            "--input",
            data.to_str().unwrap(),
            "--delta",
            "0.1",
            "--t",
            "1.0",
        ]));
        assert!(missing_p.is_err());
        let bad_point = prange_doc(&args(&[
            "query",
            "prange",
            "--input",
            data.to_str().unwrap(),
            "--p",
            "0.5",
            "--delta",
            "0.1",
            "--t",
            "1.0",
        ]));
        assert!(bad_point.unwrap_err().to_string().contains("not X,Y"));
        std::fs::remove_file(&data).ok();
    }
}
