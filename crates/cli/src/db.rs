//! `trajmine db` subcommands: the embedded crash-safe trajectory store.

use crate::args::Args;
use crate::input::load;
use std::error::Error;
use trajdb::store::ReadFilter;
use trajdb::{FsyncPolicy, Store, StoreOptions};

/// Opens the store named by `--db`, honouring `--fsync` and
/// `--segment-max-bytes`.
pub fn open_store(args: &Args) -> Result<Store, Box<dyn Error>> {
    let dir = args.require("db")?;
    let mut opts = StoreOptions::default();
    if let Some(s) = args.get("fsync") {
        opts.fsync = FsyncPolicy::parse(s)?;
    }
    opts.segment_max_bytes = args.get_or("segment-max-bytes", opts.segment_max_bytes)?;
    Ok(Store::open(dir, opts)?)
}

/// Builds the id/time filter from `--from-id/--to-id/--from-t/--to-t`.
pub fn read_filter(args: &Args) -> Result<ReadFilter, Box<dyn Error>> {
    let opt = |key: &str| -> Result<Option<u64>, Box<dyn Error>> {
        Ok(match args.get(key) {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| format!("invalid --{key} value '{raw}'"))?,
            ),
        })
    };
    Ok(ReadFilter {
        min_id: opt("from-id")?,
        max_id: opt("to-id")?,
        min_t: opt("from-t")?,
        max_t: opt("to-t")?,
    })
}

/// `trajmine db ingest`: append a dataset file to the store as batches.
pub fn ingest(args: &Args) -> Result<(), Box<dyn Error>> {
    let data = load(args)?;
    if data.is_empty() {
        return Err("refusing to ingest an empty dataset".into());
    }
    let batch: usize = args.get_or("batch", 64usize)?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let mut store = open_store(args)?;
    // Timestamps continue from wherever the store left off unless the
    // caller pins a (non-regressing) start with --t.
    let t0: u64 = args.get_or("t", store.last_t())?;
    let mut t = t0;
    let mut first = None;
    let mut last = 0;
    for chunk in data.trajectories().chunks(batch) {
        let ids = store.append_batch(t, chunk)?;
        first.get_or_insert(ids.start);
        last = ids.end;
        t += 1;
    }
    store.sync()?;
    let stats = store.stats();
    eprintln!(
        "ingested {} trajectories as ids {}..{} at t {}..{} ({} total records, {} segments)",
        data.len(),
        first.unwrap_or(0),
        last,
        t0,
        t,
        stats.total_records(),
        stats.sealed_segments + 1
    );
    Ok(())
}

/// `trajmine db stat`: print store statistics and the recovery verdict;
/// `--verify true` additionally re-checksums every sealed segment.
pub fn stat(args: &Args) -> Result<(), Box<dyn Error>> {
    let store = open_store(args)?;
    let s = store.stats();
    println!("records        : {} total", s.total_records());
    println!(
        "sealed         : {} segments, {} batches, {} records, {} bytes",
        s.sealed_segments, s.sealed_batches, s.sealed_records, s.sealed_bytes
    );
    println!(
        "active         : {} batches, {} records, {} bytes",
        s.active_batches, s.active_records, s.active_bytes
    );
    println!("next id / seq  : {} / {}", s.next_id, s.next_seq);
    println!("last t         : {}", store.last_t());
    println!("recovery tail  : {}", s.recovery.verdict);
    if s.recovery.orphans_removed > 0 || s.recovery.tmp_removed > 0 {
        println!(
            "recovery sweep : {} orphan segment(s), {} tmp file(s) removed",
            s.recovery.orphans_removed, s.recovery.tmp_removed
        );
    }
    let snapshots = store.list_snapshots()?;
    if !snapshots.is_empty() {
        println!("snapshots      : {}", snapshots.join(", "));
    }
    if args.get_or("verify", false)? {
        store.verify()?;
        println!("verify         : all sealed checksums ok");
    }
    Ok(())
}

/// `trajmine db compact`: fold all sealed segments (plus the active one)
/// into a single sealed segment.
pub fn compact(args: &Args) -> Result<(), Box<dyn Error>> {
    let mut store = open_store(args)?;
    let before = store.stats();
    store.compact()?;
    let after = store.stats();
    eprintln!(
        "compacted {} segments ({} bytes) into {} ({} bytes), {} records",
        before.sealed_segments + usize::from(before.active_bytes > 0),
        before.total_bytes(),
        after.sealed_segments,
        after.total_bytes(),
        after.total_records()
    );
    Ok(())
}

/// `trajmine db export`: write stored records (optionally id/time
/// filtered) to a dataset file; the format follows the extension, like
/// `generate --out`.
pub fn export(args: &Args) -> Result<(), Box<dyn Error>> {
    let out = args.require("out")?.to_string();
    let store = open_store(args)?;
    let data = store.read_dataset(&read_filter(args)?)?;
    let text = if out.ends_with(".csv") {
        trajdata::csv::to_csv(&data)
    } else if out.ends_with(".events") {
        datagen::event_log(&data)
    } else {
        data.to_json()
    };
    trajio::write_atomic(std::path::Path::new(&out), &text)?;
    eprintln!("exported {} trajectories to {out}", data.len());
    Ok(())
}
