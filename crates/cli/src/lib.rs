//! Library backing the `trajmine` command-line tool.
//!
//! Subcommands:
//!
//! - `generate`: produce an imprecise trajectory dataset (JSON) from one
//!   of the built-in workload generators.
//! - `stats`: summarize a dataset file.
//! - `mine`: mine top-k NM patterns (optionally pattern groups) from a
//!   dataset file and print/emit them.
//! - `stream`: replay or tail an append-only `.events` log through the
//!   incremental sliding-window miner ([`trajstream`]), emitting top-k
//!   snapshots that are bit-identical to `mine` over the window.
//! - `serve`: load a pattern snapshot (`mine --json` output or a
//!   `stream` checkpoint) and answer concurrent HTTP pattern queries
//!   over it ([`trajserve`]) until a termination signal drains it;
//!   `serve --live true` instead runs a sharded live fleet
//!   ([`trajfleet`]): one stream miner per shard, fed from per-shard
//!   event logs or store directories, with atomic snapshot swaps and
//!   deterministic cross-shard top-k fan-out.
//! - `db ingest` / `db stat` / `db compact` / `db export`: manage the
//!   embedded crash-safe trajectory store ([`trajdb`]); `mine`,
//!   `stream`, and `serve` can all read from a store via `--db`.
//!
//! Argument parsing is deliberately dependency-free: flags are
//! `--name value` pairs validated into typed options.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod db;
pub mod input;
pub mod live;
pub mod query;
pub mod render;

pub use args::{ArgError, Args};

/// Entry point used by the binary; returns the process exit code.
pub fn run(argv: Vec<String>) -> i32 {
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{}", render::render_error(&e));
            eprintln!("{}", commands::USAGE);
            return 2;
        }
    };
    match commands::dispatch(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("{}", render::render_error(e.as_ref()));
            1
        }
    }
}
